"""Ablation benches for the design choices DESIGN.md calls out.

- FIFO buffer policy: all-hit vs all-miss vs undersized (§3's
  predictability alternatives).
- Set- vs way-partitioning (column caching, the [10]/[8] baseline the
  paper argues against on granularity grounds).
- Allocation granularity sweep (units of 4/8/16 sets).
- Static vs migrating scheduling under partitioning.
- Solver comparison: exact DP vs greedy vs MILP on the measured curves.
- Malloc-order sensitivity (§4.1) under dense bump placement.
"""

from functools import partial

import pytest
from conftest import APP1_FRAMES, SIZE_MENU, write_artifact

from repro.apps import two_jpeg_canny_workload
from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.core import BufferPolicy, solve_mckp_dp, solve_mckp_greedy, solve_mckp_milp
from repro.core.allocation import buffer_units
from repro.core.mckp import items_from_curves
from repro.core.profiling import optimized_item_names
from repro.mem.partition import PartitionMode
from repro.rtos.shmalloc import _default_order

APP1 = partial(two_jpeg_canny_workload, scale="paper", frames=APP1_FRAMES)


def apply_plan_and_run(method, report, fifo_policy):
    """Re-plan with a different FIFO policy and simulate."""
    config = method.platform_config
    network = method.network_builder()
    buffers = buffer_units(network, config.unit_bytes, fifo_policy)
    budget = config.n_allocation_units - sum(buffers.values())
    items = items_from_curves(
        report.profile.curve_list(optimized_item_names(network)),
        report.profile.sizes,
    )
    solution = solve_mckp_dp(items, budget)
    from repro.core import PartitionPlan
    plan = PartitionPlan.from_parts(
        solution.allocation, buffers, config.n_allocation_units
    )
    return method.simulate(plan)


def test_ablation_fifo_policy(benchmark, app1_method, app1_report):
    """All-hit FIFOs (the paper's rule) vs all-miss vs undersized."""
    results = {}
    results[BufferPolicy.ALL_HIT] = app1_report.partitioned_metrics

    def run_other_policies():
        for policy in (BufferPolicy.ALL_MISS, BufferPolicy.UNDERSIZED):
            results[policy] = apply_plan_and_run(
                app1_method, app1_report, policy
            )
        return results

    benchmark.pedantic(run_other_policies, rounds=1, iterations=1)
    fifo_misses = {}
    for policy, metrics in results.items():
        fifo_misses[policy] = sum(
            stats.misses for name, stats in metrics.l2_by_owner.items()
            if name.startswith("fifo:")
        )
    artifact = "\n".join(
        f"{policy.value:12s}: total={metrics.l2_misses:8d} "
        f"fifo-misses={fifo_misses[policy]:8d}"
        for policy, metrics in results.items()
    )
    write_artifact("ablation_fifo_policy.txt",
                   "FIFO buffer policy ablation (app 1)\n" + artifact)
    # The paper's rule: sizing the partition to the FIFO leaves only
    # cold misses; the alternatives miss (predictably) much more.
    assert fifo_misses[BufferPolicy.ALL_HIT] < fifo_misses[BufferPolicy.ALL_MISS]
    assert fifo_misses[BufferPolicy.ALL_HIT] < fifo_misses[BufferPolicy.UNDERSIZED]


def test_ablation_way_partitioning(benchmark, platform_config, app1_report):
    """Column caching: at 4 ways only 4 owners get exclusive columns,
    so interference survives -- the paper's granularity criticism."""

    def run_way_partitioned():
        network = APP1()
        platform = Platform(
            network, platform_config, mode=PartitionMode.WAY_PARTITIONED
        )
        big_four = ("Raster1", "BackEnd1", "Raster2", "LowPass")
        ways = {f"task:{name}": (i,) for i, name in enumerate(big_four)}
        platform.cache_controller.program_way_partitions(ways)
        return platform.run()

    metrics = benchmark.pedantic(run_way_partitioned, rounds=1, iterations=1)
    artifact = "\n".join([
        "way-partitioning (column caching) vs set-partitioning (app 1)",
        f"  shared          : misses={app1_report.shared_metrics.l2_misses:,} "
        f"cross-evictions={app1_report.shared_metrics.l2_cross_evictions:,}",
        f"  way-partitioned : misses={metrics.l2_misses:,} "
        f"cross-evictions={metrics.l2_cross_evictions:,}",
        f"  set-partitioned : misses={app1_report.partitioned_metrics.l2_misses:,} "
        f"cross-evictions={app1_report.partitioned_metrics.l2_cross_evictions:,}",
    ])
    write_artifact("ablation_way_partitioning.txt", artifact)
    # Way partitioning cannot eliminate interference for 15 tasks...
    assert metrics.l2_cross_evictions > 0
    # ...while set partitioning does.
    assert app1_report.partitioned_metrics.l2_cross_evictions == 0


@pytest.mark.parametrize("unit_sets", [4, 8, 16])
def test_ablation_granularity(benchmark, unit_sets):
    """Allocation-unit sweep on a synthetic pipeline: finer units track
    working sets more tightly (less internal fragmentation)."""
    from dataclasses import replace

    config = replace(CakeConfig(), allocation_unit_sets=unit_sets)
    builder = partial(make_pipeline, n_stages=4, n_tokens=48,
                      work_bytes=24 * 1024)

    def run_partitioned():
        network = builder()
        platform = Platform(network, config,
                            mode=PartitionMode.SET_PARTITIONED)
        unit_bytes = config.unit_bytes
        units = {}
        for task, spec in network.tasks.items():
            units[f"task:{task}"] = max(
                1, -(-(spec.heap_bytes + 4096) // unit_bytes)
            )
        for name, fifo in network.fifos.items():
            units[f"fifo:{name}"] = max(1, -(-fifo.buffer_bytes // unit_bytes))
        platform.cache_controller.program_set_partitions(units)
        metrics = platform.run()
        return metrics, sum(units.values()) * unit_bytes

    (metrics, footprint) = benchmark.pedantic(
        run_partitioned, rounds=1, iterations=1
    )
    write_artifact(
        f"ablation_granularity_{unit_sets}sets.txt",
        f"unit={unit_sets} sets: misses={metrics.l2_misses:,} "
        f"allocated={footprint:,} bytes",
    )
    assert metrics.l2_cross_evictions == 0


def test_ablation_scheduling(benchmark, platform_config, app1_report):
    """Static pinning vs migrating round-robin under partitioning:
    compositional miss counts survive the scheduling change (misses
    stay close), demonstrating scheduling-independence of the method."""
    from dataclasses import replace

    def run_static():
        config = replace(platform_config, scheduling="static")
        network = APP1()
        platform = Platform(network, config,
                            mode=PartitionMode.SET_PARTITIONED)
        platform.cache_controller.program_set_partitions(
            app1_report.plan.units_by_owner
        )
        return platform.run()

    static_metrics = benchmark.pedantic(run_static, rounds=1, iterations=1)
    migrate_misses = app1_report.partitioned_metrics.l2_misses
    drift = abs(static_metrics.l2_misses - migrate_misses) / migrate_misses
    write_artifact(
        "ablation_scheduling.txt",
        "\n".join([
            "scheduling ablation under partitioning (app 1)",
            f"  migrate: misses={migrate_misses:,}",
            f"  static : misses={static_metrics.l2_misses:,}",
            f"  drift  : {drift:.2%}",
        ]),
    )
    assert static_metrics.l2_cross_evictions == 0
    assert drift < 0.15


def test_ablation_solvers(benchmark, app1_report, platform_config):
    """Exact DP vs greedy vs MILP on the measured curves."""
    network = APP1()
    buffers = buffer_units(network, platform_config.unit_bytes,
                           BufferPolicy.ALL_HIT)
    budget = platform_config.n_allocation_units - sum(buffers.values())
    items = items_from_curves(
        app1_report.profile.curve_list(optimized_item_names(network)),
        app1_report.profile.sizes,
    )

    def solve_all():
        return {
            "dp": solve_mckp_dp(items, budget),
            "greedy": solve_mckp_greedy(items, budget),
            "milp": solve_mckp_milp(items, budget),
        }

    solutions = benchmark(solve_all)
    artifact = "\n".join(
        f"{name:7s}: predicted misses={solution.total_misses:,.0f} "
        f"units={solution.total_units}"
        for name, solution in solutions.items()
    )
    write_artifact("ablation_solvers.txt",
                   "solver comparison (app 1 curves)\n" + artifact)
    assert solutions["dp"].total_misses == pytest.approx(
        solutions["milp"].total_misses
    )
    assert solutions["greedy"].total_misses <= \
        solutions["dp"].total_misses * 1.2


def test_ablation_malloc_order(benchmark):
    """§4.1: with dense (bump) placement, permuting the init-time
    allocation order changes shared-cache misses but not partitioned
    ones.  A deliberately small L2 (64 KB) keeps the cache contended so
    placement matters."""
    config = CakeConfig().with_l2_size(64 * 1024)
    builder = partial(make_pipeline, n_stages=4, n_tokens=32,
                      work_bytes=16 * 1024)
    orders = [None, list(reversed(_default_order(builder())))]

    def run_all():
        shared, partitioned = [], []
        for order in orders:
            platform = Platform(builder(), config,
                                malloc_order=order, placement="bump")
            shared.append(platform.run().l2_misses)
            platform = Platform(builder(), config,
                                mode=PartitionMode.SET_PARTITIONED,
                                malloc_order=order, placement="bump")
            units = {}
            for task in platform.network.tasks:
                units[f"task:{task}"] = 4
            for name in platform.network.fifos:
                units[f"fifo:{name}"] = 2
            platform.cache_controller.program_set_partitions(units)
            partitioned.append(platform.run().l2_misses)
        return shared, partitioned

    shared, partitioned = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_artifact(
        "ablation_malloc_order.txt",
        "\n".join([
            "malloc-order sensitivity (bump placement)",
            f"  shared      : {shared[0]:,} vs {shared[1]:,} misses",
            f"  partitioned : {partitioned[0]:,} vs {partitioned[1]:,} misses",
        ]),
    )
    assert shared[0] != shared[1]
    assert partitioned[0] == partitioned[1]


def test_ablation_shared_idct_partition(benchmark, platform_config,
                                        app1_report):
    """§4.2 extension: "sharing some cache partitions".  The two IDCT
    instances run the same program with the same tiny working set;
    letting IDCT2 ride on IDCT1's partition frees a unit at (almost) no
    miss cost -- sharing is safe exactly when contents are compatible."""

    def run_shared_idct():
        network = APP1()
        platform = Platform(network, platform_config,
                            mode=PartitionMode.SET_PARTITIONED)
        units = dict(app1_report.plan.units_by_owner)
        # One partition sized for the union of both IDCT footprints,
        # shared by the pair (same total budget as two separate units).
        freed = units.pop("task:IDCT2")
        units["task:IDCT1"] = units["task:IDCT1"] + freed
        platform.cache_controller.program_set_partitions(units)
        platform.cache_controller.share_partition("task:IDCT2", "task:IDCT1")
        return platform.run()

    metrics = benchmark.pedantic(run_shared_idct, rounds=1, iterations=1)
    separate = app1_report.partitioned_metrics
    idct_separate = (separate.misses_of("task:IDCT1")
                     + separate.misses_of("task:IDCT2"))
    idct_shared = (metrics.misses_of("task:IDCT1")
                   + metrics.misses_of("task:IDCT2"))
    write_artifact(
        "ablation_shared_partition.txt",
        "\n".join([
            "the two IDCT instances share one union-sized partition",
            f"  separate partitions: IDCT misses={idct_separate:,}",
            f"  shared partition   : IDCT misses={idct_shared:,}",
            f"  total app misses   : {separate.l2_misses:,} -> "
            f"{metrics.l2_misses:,}",
            "",
            "Sharing is nearly free in capacity terms but not literally "
            "free in misses: the two instances' footprints fold onto the "
            "same sets at different phases, so a few sets overflow their "
            "ways -- the predictability cost of giving up exclusivity, "
            "confined to the consenting pair.",
        ]),
    )
    # Nobody outside the sharing pair is disturbed, and the total stays
    # within a small factor of the fully exclusive plan.
    pair_extra = idct_shared - idct_separate
    assert metrics.l2_misses - separate.l2_misses <= pair_extra * 1.5
    assert metrics.l2_misses <= separate.l2_misses * 1.10
