"""Ablation benches for the design choices DESIGN.md calls out.

- FIFO buffer policy: all-hit vs all-miss vs undersized (§3's
  predictability alternatives).
- Set- vs way-partitioning (column caching, the [10]/[8] baseline the
  paper argues against on granularity grounds).
- Allocation granularity sweep (units of 4/8/16 sets).
- Static vs migrating scheduling under partitioning.
- Solver comparison: exact DP vs greedy vs MILP on the measured curves.
- Malloc-order sensitivity (§4.1) under dense bump placement.

Every multi-scenario ablation is a grid over one axis of the
experiment API (``fifo_policy``, ``allocation_unit_sets``,
``scheduling``, ``solver``, ``partition_mode``); the process-wide memo
tables mean axes that do not change profiling inputs (solver, way
mode) reuse the session's miss curves, and every record lands in the
session result store.
"""

from dataclasses import replace
from functools import partial

from conftest import APP1_SCENARIO, PROFILE_CACHE, write_artifact

from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.core import BufferPolicy, MethodConfig
from repro.exp import ExperimentRunner, Scenario, WorkloadSpec, run_scenario, sweep
from repro.mem.partition import PartitionMode
from repro.rtos.shmalloc import _default_order


def _fifo_misses(record):
    return sum(
        misses
        for owner, misses in record.partitioned["misses_by_owner"].items()
        if owner.startswith("fifo:")
    )


def test_ablation_fifo_policy(benchmark, experiment_store):
    """All-hit FIFOs (the paper's rule) vs all-miss vs undersized."""
    scenarios = sweep(
        replace(APP1_SCENARIO, tag="ablation-fifo"),
        fifo_policy=[
            BufferPolicy.ALL_HIT, BufferPolicy.ALL_MISS,
            BufferPolicy.UNDERSIZED,
        ],
    )

    store = benchmark.pedantic(
        ExperimentRunner(workers=1, cache=PROFILE_CACHE).run,
        args=(scenarios,), kwargs={"store": experiment_store},
        rounds=1, iterations=1,
    )
    records = {
        record.axes["fifo_policy"]: record
        for record in store.filter(tag="ablation-fifo")
    }
    artifact = "\n".join(
        f"{policy:12s}: total={record.partitioned['misses']:8d} "
        f"fifo-misses={_fifo_misses(record):8d}"
        for policy, record in records.items()
    )
    write_artifact("ablation_fifo_policy.txt",
                   "FIFO buffer policy ablation (app 1)\n" + artifact)
    # The paper's rule: sizing the partition to the FIFO leaves only
    # cold misses; the alternatives miss (predictably) much more.
    all_hit = _fifo_misses(records["all-hit"])
    assert all_hit < _fifo_misses(records["all-miss"])
    assert all_hit < _fifo_misses(records["undersized"])


def test_ablation_way_partitioning(benchmark, app1_report, experiment_store):
    """Column caching: at 4 ways only 4 owners get exclusive columns,
    so interference survives -- the paper's granularity criticism.  The
    way scenario shares the session's profile key, so only the
    way-partitioned simulation itself runs here."""
    scenario = replace(
        APP1_SCENARIO,
        partition_mode=PartitionMode.WAY_PARTITIONED,
        tag="ablation-way",
    )
    outcome = benchmark.pedantic(
        run_scenario, args=(scenario,),
        kwargs={"cache": PROFILE_CACHE}, rounds=1, iterations=1
    )
    record = experiment_store.append(outcome.record)
    artifact = "\n".join([
        "way-partitioning (column caching) vs set-partitioning (app 1)",
        f"  shared          : misses={app1_report.shared_metrics.l2_misses:,} "
        f"cross-evictions={app1_report.shared_metrics.l2_cross_evictions:,}",
        f"  way-partitioned : misses={record.partitioned['misses']:,} "
        f"cross-evictions={record.partitioned['cross_evictions']:,} "
        f"columns={sorted(record.payload['way_assignment'])}",
        f"  set-partitioned : misses={app1_report.partitioned_metrics.l2_misses:,} "
        f"cross-evictions={app1_report.partitioned_metrics.l2_cross_evictions:,}",
    ])
    write_artifact("ablation_way_partitioning.txt", artifact)
    # Way partitioning cannot eliminate interference for 15 tasks...
    assert record.partitioned["cross_evictions"] > 0
    # ...while set partitioning does.
    assert app1_report.partitioned_metrics.l2_cross_evictions == 0


def test_ablation_granularity(benchmark, experiment_store):
    """Allocation-unit sweep on a synthetic pipeline: finer units track
    working sets more tightly, and every granularity stays
    interference-free under the full method."""
    base = Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 4, "n_tokens": 48, "work_bytes": 24 * 1024},
        ),
        cake=CakeConfig(),
        method=MethodConfig(sizes=[1, 2, 4, 8, 16]),
        tag="ablation-granularity",
    )

    def granularity(scenario, unit_sets):
        # Scale the size menu with the unit so every granularity offers
        # the same byte range (up to 32 KB per item); a menu fixed in
        # *units* would cap fine-grained scenarios below the working
        # sets and thrash.
        cake = scenario.cake
        unit_bytes = (unit_sets * cake.hierarchy.l2_geometry.ways
                      * cake.hierarchy.l2_geometry.line_size)
        menu, size = [], 1
        while size * unit_bytes <= 32 * 1024:
            menu.append(size)
            size *= 2
        return scenario.with_cake(
            allocation_unit_sets=unit_sets
        ).with_method(sizes=menu)

    from repro.exp import Grid

    scenarios = Grid(base).axis(
        "allocation_unit_sets", [4, 8, 16], apply=granularity
    ).scenarios()
    store = benchmark.pedantic(
        ExperimentRunner(workers=1, cache=PROFILE_CACHE).run,
        args=(scenarios,), kwargs={"store": experiment_store},
        rounds=1, iterations=1,
    )
    records = list(store.filter(tag="ablation-granularity"))
    artifact = "\n".join(
        f"unit={record.axes['allocation_unit_sets']:2d} sets: "
        f"misses={record.partitioned['misses']:,} "
        f"plan-units={sum(record.plan.values()):,}"
        for record in records
    )
    write_artifact("ablation_granularity.txt",
                   "allocation granularity sweep\n" + artifact)
    assert len(records) == 3
    allocated_bytes = []
    for record in records:
        assert record.partitioned["cross_evictions"] == 0
        unit_sets = record.axes["allocation_unit_sets"]
        allocated_bytes.append(sum(record.plan.values()) * unit_sets)
    # Finer units track working sets more tightly: internal
    # fragmentation (allocated capacity) grows with the unit size.
    assert allocated_bytes == sorted(allocated_bytes)


def test_ablation_scheduling(benchmark, app1_report, experiment_store):
    """Static pinning vs migrating round-robin under partitioning:
    compositional miss counts survive the scheduling change (misses
    stay close), demonstrating scheduling-independence of the method."""
    scenario = replace(
        APP1_SCENARIO,
        cake=replace(APP1_SCENARIO.cake, scheduling="static"),
        tag="ablation-scheduling",
    )
    outcome = benchmark.pedantic(
        run_scenario, args=(scenario,),
        kwargs={"cache": PROFILE_CACHE}, rounds=1, iterations=1
    )
    record = experiment_store.append(outcome.record)
    migrate_misses = app1_report.partitioned_metrics.l2_misses
    static_misses = record.partitioned["misses"]
    drift = abs(static_misses - migrate_misses) / migrate_misses
    write_artifact(
        "ablation_scheduling.txt",
        "\n".join([
            "scheduling ablation under partitioning (app 1)",
            f"  migrate: misses={migrate_misses:,}",
            f"  static : misses={static_misses:,}",
            f"  drift  : {drift:.2%}",
        ]),
    )
    assert record.partitioned["cross_evictions"] == 0
    assert drift < 0.15


def test_ablation_solvers(benchmark, experiment_store):
    """Exact DP vs greedy vs MILP, end to end.  All three share one
    profile key (the solver is not a profiling input), so the grid
    costs three optimizations + partitioned simulations."""
    scenarios = sweep(
        replace(APP1_SCENARIO, tag="ablation-solver"),
        solver=["dp", "greedy", "milp"],
    )
    store = benchmark.pedantic(
        ExperimentRunner(workers=1, cache=PROFILE_CACHE).run,
        args=(scenarios,), kwargs={"store": experiment_store},
        rounds=1, iterations=1,
    )
    records = {
        record.axes["solver"]: record
        for record in store.filter(tag="ablation-solver")
    }
    artifact = "\n".join(
        f"{solver:7s}: predicted misses={record.predicted_misses:,.0f} "
        f"simulated={record.partitioned['misses']:,}"
        for solver, record in records.items()
    )
    write_artifact("ablation_solvers.txt",
                   "solver comparison (app 1 curves)\n" + artifact)
    dp, milp = records["dp"], records["milp"]
    assert abs(dp.predicted_misses - milp.predicted_misses) <= \
        1e-6 * max(1.0, dp.predicted_misses)
    assert records["greedy"].predicted_misses <= dp.predicted_misses * 1.2


def test_ablation_malloc_order(benchmark):
    """§4.1: with dense (bump) placement, permuting the init-time
    allocation order changes shared-cache misses but not partitioned
    ones.  A deliberately small L2 (64 KB) keeps the cache contended so
    placement matters.  (Placement policy is a platform-construction
    knob, not a scenario axis, so this drives the platform directly --
    once per order, no sweep.)"""
    config = CakeConfig().with_l2_size(64 * 1024)
    builder = partial(make_pipeline, n_stages=4, n_tokens=32,
                      work_bytes=16 * 1024)

    def run_order(order):
        platform = Platform(builder(), config,
                            malloc_order=order, placement="bump")
        shared = platform.run().l2_misses
        platform = Platform(builder(), config,
                            mode=PartitionMode.SET_PARTITIONED,
                            malloc_order=order, placement="bump")
        units = {}
        for task in platform.network.tasks:
            units[f"task:{task}"] = 4
        for name in platform.network.fifos:
            units[f"fifo:{name}"] = 2
        platform.cache_controller.program_set_partitions(units)
        return shared, platform.run().l2_misses

    def run_both_orders():
        default = run_order(None)
        reversed_ = run_order(list(reversed(_default_order(builder()))))
        return default, reversed_

    (shared_a, part_a), (shared_b, part_b) = benchmark.pedantic(
        run_both_orders, rounds=1, iterations=1
    )
    write_artifact(
        "ablation_malloc_order.txt",
        "\n".join([
            "malloc-order sensitivity (bump placement)",
            f"  shared      : {shared_a:,} vs {shared_b:,} misses",
            f"  partitioned : {part_a:,} vs {part_b:,} misses",
        ]),
    )
    assert shared_a != shared_b
    assert part_a == part_b


def test_ablation_shared_idct_partition(benchmark, platform_config,
                                        app1_report):
    """§4.2 extension: "sharing some cache partitions".  The two IDCT
    instances run the same program with the same tiny working set;
    letting IDCT2 ride on IDCT1's partition frees a unit at (almost) no
    miss cost -- sharing is safe exactly when contents are compatible."""

    def run_shared_idct():
        network = APP1_SCENARIO.workload.build()()
        platform = Platform(network, platform_config,
                            mode=PartitionMode.SET_PARTITIONED)
        units = dict(app1_report.plan.units_by_owner)
        # One partition sized for the union of both IDCT footprints,
        # shared by the pair (same total budget as two separate units).
        freed = units.pop("task:IDCT2")
        units["task:IDCT1"] = units["task:IDCT1"] + freed
        platform.cache_controller.program_set_partitions(units)
        platform.cache_controller.share_partition("task:IDCT2", "task:IDCT1")
        return platform.run()

    metrics = benchmark.pedantic(run_shared_idct, rounds=1, iterations=1)
    separate = app1_report.partitioned_metrics
    idct_separate = (separate.misses_of("task:IDCT1")
                     + separate.misses_of("task:IDCT2"))
    idct_shared = (metrics.misses_of("task:IDCT1")
                   + metrics.misses_of("task:IDCT2"))
    write_artifact(
        "ablation_shared_partition.txt",
        "\n".join([
            "the two IDCT instances share one union-sized partition",
            f"  separate partitions: IDCT misses={idct_separate:,}",
            f"  shared partition   : IDCT misses={idct_shared:,}",
            f"  total app misses   : {separate.l2_misses:,} -> "
            f"{metrics.l2_misses:,}",
            "",
            "Sharing is nearly free in capacity terms but not literally "
            "free in misses: the two instances' footprints fold onto the "
            "same sets at different phases, so a few sets overflow their "
            "ways -- the predictability cost of giving up exclusivity, "
            "confined to the consenting pair.",
        ]),
    )
    # Nobody outside the sharing pair is disturbed, and the total stays
    # within a small factor of the fully exclusive plan.
    pair_extra = idct_shared - idct_separate
    assert metrics.l2_misses - separate.l2_misses <= pair_extra * 1.5
    assert metrics.l2_misses <= separate.l2_misses * 1.10
