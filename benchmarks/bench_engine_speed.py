"""Hierarchy-engine throughput: the 2M-reference uncoalesced microbench.

Uncoalesced traffic is the walker's worst case: 2M uniformly random
references over a 768 KiB footprint produce one cache probe per
reference (no run coalescing), miss the 8 KB L1 almost always and split
the L2 roughly 2:1 between hits and DRAM fetches.  The seed tree
sustained ~0.19 M accesses/s here; the fast engine must stay at least
``GATE_MIN_SPEEDUP`` times above that, and the measured numbers are
persisted to ``benchmarks/results/BENCH_engine.json`` so the perf
trajectory is tracked from PR 1 onward.

Run the gate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_speed.py -m perf_smoke

or standalone (measures every engine tier and writes the artifact)::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.mem import cwalker
from repro.mem.hierarchy import HierarchyConfig, MemorySystem
from repro.mem.trace import AccessBatch

RESULTS_DIR = Path(__file__).parent / "results"

#: The microbench instance (seed tree: ~10.5 s for the 2M references).
N_REFS = 2_000_000
FOOTPRINT_LINES = 12_288  # 768 KiB of 64-byte lines: 1.5x the L2
RNG_SEED = 20050307

#: Throughput of the seed tree's walker on this microbench, the anchor
#: every later PR is compared against (accesses per second).
SEED_BASELINE = 0.19e6
#: The perf_smoke gate fails below this multiple of the seed baseline.
GATE_MIN_SPEEDUP = 2.0


def build_microbench_batch(n_refs: int = N_REFS) -> AccessBatch:
    """The canonical uncoalesced random-reference batch."""
    rng = np.random.default_rng(RNG_SEED)
    addrs = (rng.integers(0, FOOTPRINT_LINES, n_refs) * 64).astype(np.int64)
    return AccessBatch.from_addresses(addrs, instructions=n_refs)


def measure_engine(engine: str, batch: AccessBatch,
                   force_python: bool = False) -> dict:
    """Throughput of one engine tier over ``batch`` (fresh system)."""
    mem = MemorySystem(1, HierarchyConfig(engine=engine))
    if force_python:
        mem.c_walk_threshold = 1 << 62  # keep the compiled walker out
    start = time.perf_counter()
    result = mem.execute_batch(0, 1, batch, now=0.0)
    elapsed = time.perf_counter() - start
    return {
        "engine": engine + ("-python" if force_python else ""),
        "seconds": round(elapsed, 3),
        "accesses_per_sec": round(batch.n_accesses / elapsed, 1),
        "l1_misses": result.l1_misses,
        "l2_misses": result.l2_misses,
        "dram_lines": result.dram_lines,
    }


def write_engine_artifact(measurements: dict) -> Path:
    """Persist ``BENCH_engine.json`` under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(measurements, indent=2) + "\n")
    return path


def _collect(tiers) -> dict:
    batch = build_microbench_batch()
    runs = []
    for engine, force_python in tiers:
        runs.append(measure_engine(engine, batch, force_python=force_python))
    fast = runs[0]["accesses_per_sec"]
    return {
        "bench": "engine_speed_2M_uncoalesced",
        "n_refs": batch.n_accesses,
        "footprint_bytes": FOOTPRINT_LINES * 64,
        "seed_baseline_accesses_per_sec": SEED_BASELINE,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "c_walker_available": cwalker.load() is not None,
        "python": platform.python_version(),
        "runs": runs,
        "fast_speedup_vs_seed": round(fast / SEED_BASELINE, 2),
    }


@pytest.mark.perf_smoke
def test_engine_speed_gate():
    """Fast engine must hold >= 2x the seed baseline on the microbench."""
    report = _collect([("fast", False), ("reference", False)])
    write_engine_artifact(report)
    fast = report["runs"][0]["accesses_per_sec"]
    reference = report["runs"][1]["accesses_per_sec"]
    floor = GATE_MIN_SPEEDUP * SEED_BASELINE
    assert fast >= floor, (
        f"fast engine regressed: {fast:.0f} accesses/s is below the "
        f"{floor:.0f} gate ({GATE_MIN_SPEEDUP}x seed baseline); "
        f"reference tier ran {reference:.0f}"
    )


@pytest.mark.perf_smoke
def test_engine_speed_identical_stats():
    """The microbench itself must see bit-identical engine statistics."""
    batch = build_microbench_batch(n_refs=200_000)
    systems = {}
    for engine in ("fast", "reference"):
        mem = MemorySystem(1, HierarchyConfig(engine=engine))
        systems[engine] = (mem, mem.execute_batch(0, 1, batch, now=0.0))
    fast_mem, fast_result = systems["fast"]
    ref_mem, ref_result = systems["reference"]
    assert fast_result == ref_result
    assert fast_mem.l2_stats.per_owner == ref_mem.l2_stats.per_owner
    assert (fast_mem.l2_stats.eviction_matrix
            == ref_mem.l2_stats.eviction_matrix)
    assert vars(fast_mem.memory.traffic) == vars(ref_mem.memory.traffic)


if __name__ == "__main__":
    tiers = [("fast", False), ("fast", True), ("reference", False)]
    report = _collect(tiers)
    path = write_engine_artifact(report)
    print(json.dumps(report, indent=2))
    print(f"artifact: {path}")
