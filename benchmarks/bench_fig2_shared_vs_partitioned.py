"""Figure 2: per-task and per-buffer misses, shared vs best-partitioned.

The paper's Figure 2 shows, on a log scale, the L2 misses of every task
and communication buffer under the conventional shared cache and under
the best partitioning, for both applications.  The headline totals (5x
and 6.5x fewer misses) derive from the same data.  The benchmark times
the figure assembly; the simulations come from the session fixtures.
"""

from conftest import write_artifact

from repro.analysis import figure2_report


def _series_checks(report):
    shared = report.shared_metrics
    part = report.partitioned_metrics
    # Partitioning must reduce total misses (the Figure 2 outcome)...
    assert part.l2_misses < shared.l2_misses
    # ...by removing interference entirely.
    assert part.l2_cross_evictions == 0
    assert shared.l2_cross_evictions > 0


def test_fig2_app1(benchmark, app1_report):
    artifact = benchmark(figure2_report, app1_report, "Figure 2 (left)")
    write_artifact("fig2_jpeg_canny.txt", artifact)
    benchmark.extra_info["miss_reduction"] = round(
        app1_report.miss_reduction_factor, 2
    )
    _series_checks(app1_report)
    # Paper: 5x fewer misses.  Shape bound: at least 2x.
    assert app1_report.miss_reduction_factor > 2.0


def test_fig2_app2(benchmark, app2_report):
    artifact = benchmark(figure2_report, app2_report, "Figure 2 (right)")
    write_artifact("fig2_mpeg2.txt", artifact)
    benchmark.extra_info["miss_reduction"] = round(
        app2_report.miss_reduction_factor, 2
    )
    _series_checks(app2_report)
    # Paper: 6.5x fewer misses.  Shape bound: at least 2x.
    assert app2_report.miss_reduction_factor > 2.0
