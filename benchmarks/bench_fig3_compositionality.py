"""Figure 3: expected vs simulated misses per task (compositionality).

The paper's acceptance criterion: the largest per-task difference
between the model-expected and the simulated number of misses,
relative to the overall simulated misses, is 2%.  The benchmark times
the validation computation.
"""

from conftest import write_artifact

from repro.analysis import figure3_report
from repro.core import compare_expected_simulated


def test_fig3_app1(benchmark, app1_report):
    report = benchmark(
        compare_expected_simulated,
        app1_report.profile,
        app1_report.plan,
        app1_report.partitioned_metrics,
        app1_report.items,
    )
    write_artifact("fig3_jpeg_canny.txt",
                   figure3_report(app1_report, "Figure 3 (left)"))
    benchmark.extra_info["max_rel_diff"] = round(
        report.max_relative_difference, 4
    )
    assert report.is_compositional(tolerance=0.02)


def test_fig3_app2(benchmark, app2_report):
    report = benchmark(
        compare_expected_simulated,
        app2_report.profile,
        app2_report.plan,
        app2_report.partitioned_metrics,
        app2_report.items,
    )
    write_artifact("fig3_mpeg2.txt",
                   figure3_report(app2_report, "Figure 3 (right)"))
    benchmark.extra_info["max_rel_diff"] = round(
        report.max_relative_difference, 4
    )
    assert report.is_compositional(tolerance=0.02)
