"""The §5 in-text headline numbers.

Paper:  app 1: L2 miss rate 9.46% -> 2.21%, CPI -20%;
        app 2: L2 miss rate 5.1% -> 0.8%, CPI -4%;
        app 2 with 1 MB *shared* L2: 0.6% miss rate.

This bench regenerates all three, including the 1 MB shared-cache
variant -- declared as a SHARED-mode scenario of the experiment API
(one extra simulation, timed by the benchmark).
"""

from dataclasses import replace

from conftest import APP2_SCENARIO, PROFILE_CACHE, write_artifact

from repro.analysis import headline_report
from repro.exp import run_scenario
from repro.mem.partition import PartitionMode

PAPER = """paper reference points:
  app1: miss rate 9.46% -> 2.21%, ~5x fewer misses, CPI 1.4 -> 1.1 (-20%)
  app2: miss rate 5.1% -> 0.8%, ~6.5x fewer misses, CPI 1.7-1.8 -> 1.6-1.7 (-4%)
  app2 @ 1MB shared L2: miss rate 0.6%, CPI 1.7"""


def test_headline_app1(benchmark, app1_report):
    artifact = benchmark(headline_report, app1_report)
    write_artifact("headline_jpeg_canny.txt", f"{artifact}\n\n{PAPER}")
    benchmark.extra_info.update({
        "shared_rate": f"{app1_report.shared_miss_rate:.2%}",
        "part_rate": f"{app1_report.partitioned_miss_rate:.2%}",
        "cpi_gain": f"{app1_report.cpi_improvement:.1%}",
    })
    assert app1_report.partitioned_miss_rate < app1_report.shared_miss_rate
    assert app1_report.cpi_improvement > 0


def test_headline_app2(benchmark, app2_report):
    artifact = benchmark(headline_report, app2_report)
    write_artifact("headline_mpeg2.txt", f"{artifact}\n\n{PAPER}")
    benchmark.extra_info.update({
        "shared_rate": f"{app2_report.shared_miss_rate:.2%}",
        "part_rate": f"{app2_report.partitioned_miss_rate:.2%}",
        "cpi_gain": f"{app2_report.cpi_improvement:.1%}",
    })
    assert app2_report.partitioned_miss_rate < app2_report.shared_miss_rate


def test_headline_mpeg2_with_1mb_shared_l2(benchmark, app2_report,
                                           experiment_store):
    """The paper's closing data point: doubling the shared L2 to 1 MB
    gets close to what partitioning achieves at 512 KB."""
    scenario = replace(
        APP2_SCENARIO,
        cake=APP2_SCENARIO.cake.with_l2_size(1024 * 1024),
        partition_mode=PartitionMode.SHARED,
        tag="headline-1mb",
    )
    outcome = benchmark.pedantic(
        run_scenario, args=(scenario,),
        kwargs={"cache": PROFILE_CACHE}, rounds=1, iterations=1
    )
    record = experiment_store.append(outcome.record)
    rate_1mb = record.shared_miss_rate
    rate_512k_shared = app2_report.shared_miss_rate
    rate_512k_part = app2_report.partitioned_miss_rate
    artifact = "\n".join([
        "MPEG-2 L2 miss rates:",
        f"  512KB shared      : {rate_512k_shared:.2%}",
        f"  512KB partitioned : {rate_512k_part:.2%}",
        f"  1MB   shared      : {rate_1mb:.2%}",
        "",
        "paper: 5.1% / 0.8% / 0.6%",
    ])
    write_artifact("headline_mpeg2_1mb.txt", artifact)
    benchmark.extra_info["rate_1mb_shared"] = f"{rate_1mb:.2%}"
    # The paper's ordering: 1MB shared beats 512KB shared and lands in
    # the neighbourhood of 512KB partitioned.
    assert rate_1mb < rate_512k_shared
    assert rate_1mb < rate_512k_part * 2.5
