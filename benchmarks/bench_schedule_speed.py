"""Schedule-compiled throughput: the multi-CPU companion of the 2M-ref
microbench.

``bench_engine_speed`` measures one giant batch on one CPU -- the shape
the stateless C kernel already served.  This bench measures the case
that kernel could *not* serve: a four-CPU tile running communicating
task chains whose compute ops are a few thousand uncoalesced references
each -- far below the fast engine's 4096-run C threshold, so the fast
tier walks them in Python, op by op, through the event kernel.  The
schedule-compiled tier keeps cache/bank/bus state resident in C and
flushes whole segments of consecutive deterministic ops per call; the
gate requires it to hold ``GATE_MIN_SPEEDUP`` x the fast engine's
throughput on this workload (measured ~3.4x on the reference machine,
recorded in ``BENCH_schedule.json``), with bit-identical RunMetrics.

Run the gate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_schedule_speed.py -m perf_smoke

or standalone (measures every engine tier and writes the artifact)::

    PYTHONPATH=src python benchmarks/bench_schedule_speed.py
"""

import json
import platform as platform_mod
import time
from pathlib import Path

import pytest

from repro.cake.config import CakeConfig
from repro.cake.platform import Platform
from repro.exp.scenario import run_metrics_to_payload
from repro.kpn.graph import FifoSpec, ProcessNetwork, TaskSpec
from repro.apps.synthetic import sink_program, source_program
from repro.mem import cwalker

RESULTS_DIR = Path(__file__).parent / "results"

#: The bench instance: four source -> table-walker -> sink chains on a
#: four-CPU paper tile.  Each walker op performs ``LOOKUPS``
#: data-dependent (uncoalesced) table references -- deliberately below
#: the fast engine's 4096-run C threshold -- and ``BURSTS`` ops run
#: back-to-back between FIFO synchronisations, the segment shape the
#: compiled tier batches into single C calls.
N_CHAINS = 4
N_CPUS = 4
N_TOKENS = 48
BURSTS = 4
LOOKUPS = 3000
TABLE_BYTES = 192 * 1024

#: The perf_smoke gate fails when the compiled tier drops below this
#: multiple of the fast engine (locally ~3.4x; the margin absorbs CI
#: machine noise).
GATE_MIN_SPEEDUP = 2.5


def _walker_program(ctx):
    """Bursts of data-dependent table lookups between FIFO syncs."""
    n_tokens = ctx.params["n_tokens"]
    bursts = ctx.params["bursts"]
    lookups = ctx.params["lookups"]
    table_bytes = min(ctx.params["table_bytes"], ctx.bss.size)
    for _ in range(n_tokens):
        yield ctx.read("in")
        for _ in range(bursts):
            yield ctx.compute(
                ctx.fetch(lookups * 4),
                ctx.table(ctx.bss, lookups, table_bytes=table_bytes,
                          skew=1.1),
                label="vld",
            )
        yield ctx.write("out")


def build_schedule_network(n_tokens: int = N_TOKENS) -> ProcessNetwork:
    """The canonical multi-chain schedule-bench network."""
    network = ProcessNetwork(
        "schedule_bench", rt_data_bytes=8 * 1024, rt_bss_bytes=8 * 1024
    )
    for chain in range(N_CHAINS):
        network.add_task(TaskSpec(
            name=f"src{chain}", program=source_program,
            params={"n_tokens": n_tokens, "work_bytes": 2048,
                    "instr": 500},
            heap_bytes=4096,
        ))
        network.add_task(TaskSpec(
            name=f"walk{chain}", program=_walker_program,
            params={"n_tokens": n_tokens, "bursts": BURSTS,
                    "lookups": LOOKUPS, "table_bytes": TABLE_BYTES},
            bss_bytes=TABLE_BYTES,
        ))
        network.add_task(TaskSpec(
            name=f"sink{chain}", program=sink_program,
            params={"n_tokens": n_tokens, "work_bytes": 2048,
                    "instr": 500},
            heap_bytes=4096,
        ))
        network.add_fifo(FifoSpec(
            name=f"a{chain}", producer=f"src{chain}", producer_port="out",
            consumer=f"walk{chain}", consumer_port="in",
            token_bytes=512, capacity_tokens=4,
        ))
        network.add_fifo(FifoSpec(
            name=f"b{chain}", producer=f"walk{chain}", producer_port="out",
            consumer=f"sink{chain}", consumer_port="in",
            token_bytes=512, capacity_tokens=4,
        ))
    return network


def measure_engine(engine: str, n_tokens: int = N_TOKENS) -> dict:
    """One full platform run on ``engine``; returns rates + metrics."""
    tile = Platform(
        build_schedule_network(n_tokens), CakeConfig(n_cpus=N_CPUS),
        engine=engine,
    )
    start = time.perf_counter()
    metrics = tile.run()
    elapsed = time.perf_counter() - start
    instructions = sum(cpu.instructions for cpu in metrics.cpus)
    return {
        "engine": engine,
        "seconds": round(elapsed, 3),
        "instructions": instructions,
        "instructions_per_sec": round(instructions / elapsed, 1),
        "kernel_events": tile.sim.events_processed,
        "elapsed_cycles": metrics.elapsed_cycles,
        "_payload": run_metrics_to_payload(metrics),
    }


def _collect(engines, n_tokens: int = N_TOKENS) -> dict:
    runs = [measure_engine(engine, n_tokens) for engine in engines]
    payloads = {run["engine"]: run.pop("_payload") for run in runs}
    reference = next(iter(payloads.values()))
    for engine, payload in payloads.items():
        assert payload == reference, (
            f"RunMetrics of engine {engine!r} diverge on the bench "
            f"workload -- differential failure, not a perf question"
        )
    by_engine = {run["engine"]: run for run in runs}
    report = {
        "bench": "schedule_speed_multi_cpu",
        "n_cpus": N_CPUS,
        "n_chains": N_CHAINS,
        "n_tokens": n_tokens,
        "bursts_per_token": BURSTS,
        "lookups_per_op": LOOKUPS,
        "table_bytes": TABLE_BYTES,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "c_walker_available": cwalker.load() is not None,
        "python": platform_mod.python_version(),
        "runs": runs,
    }
    if "fast" in by_engine and "compiled" in by_engine:
        report["compiled_speedup_vs_fast"] = round(
            by_engine["compiled"]["instructions_per_sec"]
            / by_engine["fast"]["instructions_per_sec"], 2,
        )
        report["kernel_events_saved"] = (
            by_engine["fast"]["kernel_events"]
            - by_engine["compiled"]["kernel_events"]
        )
    return report


def write_schedule_artifact(report: dict) -> Path:
    """Persist ``BENCH_schedule.json`` under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_schedule.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


@pytest.mark.perf_smoke
def test_schedule_speed_gate():
    """Compiled tier must hold >= GATE_MIN_SPEEDUP x the fast engine
    on the multi-CPU schedule bench (bit-identical metrics asserted)."""
    if cwalker.load() is None:
        pytest.skip("no C compiler: the compiled tier degrades to fast")
    report = _collect(["fast", "compiled"])
    write_schedule_artifact(report)
    speedup = report["compiled_speedup_vs_fast"]
    assert speedup >= GATE_MIN_SPEEDUP, (
        f"schedule-compiled tier regressed: {speedup}x over the fast "
        f"engine is below the {GATE_MIN_SPEEDUP}x gate "
        f"({json.dumps(report['runs'], indent=2)})"
    )


@pytest.mark.perf_smoke
def test_schedule_engines_identical_metrics():
    """The bench workload itself must see bit-identical engine metrics
    (including the reference oracle, on a reduced token count)."""
    _collect(["reference", "fast", "compiled"], n_tokens=8)


if __name__ == "__main__":
    report = _collect(["reference", "fast", "compiled"])
    path = write_schedule_artifact(report)
    print(json.dumps(report, indent=2))
    print(f"artifact: {path}")
