"""Table 1: L2 set-group allocation for 2x JPEG + Canny.

Reproduces the paper's Table 1: the optimizer's chosen allocation for
each of the 15 tasks and the four shared static regions (one unit = one
allocatable group of 8 sets, directly comparable to the paper's set
counts).  The benchmark times the optimization step itself (buffer
policy + exact MCKP) on the measured miss curves.
"""

from conftest import write_artifact

from repro.analysis import table_report

#: The paper's Table 1, for side-by-side comparison in the artifact.
PAPER_TABLE1 = {
    "FrontEnd1": 4, "IDCT1": 1, "Raster1": 32, "BackEnd1": 16,
    "FrontEnd2": 4, "IDCT2": 1, "Raster2": 16, "BackEnd2": 16,
    "Fr.canny": 4, "LowPass": 16, "HorizSobel": 8, "VertSobel": 16,
    "HorizNMS": 8, "VertNMS": 8, "MaxTreshold": 4,
    "appl.data": 2, "appl.bss": 2, "rt.data": 4, "rt.bss": 4,
}


def test_table1_allocation(benchmark, app1_method, app1_report):
    profile = app1_report.profile
    plan = benchmark(app1_method.optimize, profile).plan

    rows = []
    for task, paper_units in PAPER_TABLE1.items():
        owner = task if "." in task and task.startswith(("appl", "rt")) \
            else f"task:{task}"
        rows.append((task, paper_units, plan.units_of(owner)))
    comparison = "\n".join(
        f"{name:12s} paper={paper:3d}  measured={measured:3d}"
        for name, paper, measured in rows
    )
    matches = sum(1 for _n, p, m in rows if p == m)
    artifact = "\n\n".join([
        table_report(app1_report, "Table 1 (measured)"),
        "paper vs measured (units):\n" + comparison,
        f"exact matches: {matches}/{len(rows)}",
    ])
    write_artifact("table1_jpeg_canny.txt", artifact)

    benchmark.extra_info["exact_matches"] = matches
    benchmark.extra_info["plan_units"] = plan.used_units
    assert plan.used_units <= plan.total_units
    # The big structural calls of the paper's table must hold.
    assert plan.units_of("task:Raster1") > plan.units_of("task:Raster2")
    assert plan.units_of("task:IDCT1") == 1
    assert plan.units_of("task:IDCT2") == 1
    assert matches >= len(rows) // 2
