"""Table 2: L2 set-group allocation for the MPEG-2 decoder.

Same shape as bench_table1: optimizer allocation per task and shared
region, compared against the paper's Table 2.
"""

from conftest import write_artifact

from repro.analysis import table_report

#: The paper's Table 2.
PAPER_TABLE2 = {
    "input": 2, "vld": 4, "hdr": 16, "isiq": 8, "memMan": 1,
    "idct": 4, "add": 4, "decMV": 8, "predict": 16, "predictRD": 2,
    "writeMB": 8, "store": 2, "output": 1,
    "appl.data": 4, "appl.bss": 1, "rt.data": 8, "rt.bss": 1,
}


def test_table2_allocation(benchmark, app2_method, app2_report):
    profile = app2_report.profile
    plan = benchmark(app2_method.optimize, profile).plan

    rows = []
    for task, paper_units in PAPER_TABLE2.items():
        owner = task if task.startswith(("appl", "rt")) else f"task:{task}"
        rows.append((task, paper_units, plan.units_of(owner)))
    comparison = "\n".join(
        f"{name:12s} paper={paper:3d}  measured={measured:3d}"
        for name, paper, measured in rows
    )
    matches = sum(1 for _n, p, m in rows if p == m)
    artifact = "\n\n".join([
        table_report(app2_report, "Table 2 (measured)"),
        "paper vs measured (units):\n" + comparison,
        f"exact matches: {matches}/{len(rows)}",
    ])
    write_artifact("table2_mpeg2.txt", artifact)

    benchmark.extra_info["exact_matches"] = matches
    benchmark.extra_info["plan_units"] = plan.used_units
    assert plan.used_units <= plan.total_units
    # Structural calls: memMan/output tiny, predict/hdr large.
    assert plan.units_of("task:memMan") <= 2
    assert plan.units_of("task:output") <= 2
    assert plan.units_of("task:predict") >= 8
    assert matches >= len(rows) // 2
