"""Online-transition benchmark: MPEG-2 joins a running JPEG+Canny
pipeline, then one JPEG decoder leaves.

The paper's compositionality claim, taken online: because every owner's
misses depend only on its own partition, a task-set change must be
*invisible* to the tasks that survive it.  This bench runs the
transition scenario against a **control** run of the identical platform
(same union network, same initial layout, mark-only transitions at the
same instants) and asserts, per epoch, that every surviving task's
partitioned cycle and instruction counts are bit-identical between the
two -- on all three execution engines -- while the join re-profiles
nothing (the arriving decoder's miss curves come from the warm profile)
and the replan latency is reported.

Cross-task timing coupling is configured away so the invariant is exact
rather than approximate: static scheduling on disjoint CPU sets (the
leaver alone on CPU 0, the survivors on CPU 1, the arriving decoder on
CPUs 2-3), zero context-switch cost, a flat bus (``max_surcharge=0``),
constant-latency DRAM (``bank_penalty_cycles=0``), fully resident
shared-region partitions pre-warmed by a dedicated warmer task, and
exclusive set partitions for every owner.

Run the gate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_transitions.py -m perf_smoke

or standalone (writes ``benchmarks/results/BENCH_transitions.json``)::

    PYTHONPATH=src python benchmarks/bench_transitions.py
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.apps.workloads import mpeg2_workload, two_jpeg_canny_workload
from repro.cake.config import CakeConfig
from repro.core.method import MethodConfig
from repro.core.profiling import profile_miss_curves, profiling_passes
from repro.exp.dynamic import DynamicScenario
from repro.exp.scenario import (
    TransitionSpec,
    WorkloadSpec,
    run_metrics_to_payload,
)
from repro.kpn.graph import TaskSpec
from repro.mem.bus import BusConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.memory import DramConfig

RESULTS_DIR = Path(__file__).parent / "results"

ENGINES = ("reference", "fast", "compiled")

#: Simulated instants of the two transitions (cycles).
T_JOIN = 60_000.0
T_LEAVE = 150_000.0

#: The departing JPEG decoder (chain 1) and the tasks that survive it.
LEAVER_TASKS = ("FrontEnd1", "IDCT1", "Raster1", "BackEnd1")
LEAVER_FIFOS = ("coef1", "pix1", "lines1")
LEAVER_FRAMES = ("jpeg_in1", "jpeg_out1")
SURVIVOR_TASKS = (
    "FrontEnd2", "IDCT2", "Raster2", "BackEnd2",
    "Fr.canny", "HorizSobel", "VertSobel", "LowPass",
    "HorizNMS", "VertNMS", "MaxTreshold",
)

METHOD = MethodConfig(sizes=[1, 2, 4, 8, 16, 32], solver="dp")


def bench_cake() -> CakeConfig:
    """The paper tile with every cross-task timing coupling disabled."""
    return CakeConfig(
        n_cpus=4,
        hierarchy=HierarchyConfig(
            dram=DramConfig(bank_penalty_cycles=0),
            bus=BusConfig(max_surcharge=0.0),
        ),
        switch_cycles=0,
        scheduling="static",
    )


def _warmer_program(ctx):
    """Touch every line of all four shared regions once, at startup:
    afterwards the (fully resident) shared partitions never miss, so
    the arriving decoder cannot warm lines for anyone else."""
    for name in ("appl.data", "appl.bss", "rt.data", "rt.bss"):
        region = ctx.shared(name)
        yield ctx.compute(ctx.stream(region, 0, region.size))


def _pin(network, names, cpu: int) -> None:
    for name in names:
        network.tasks[name] = replace(network.tasks[name], affinity=cpu)


def build_base():
    """JPEG+Canny with the leaver isolated on CPU 0, survivors on CPU 1,
    plus the shared-region warmer."""
    network = two_jpeg_canny_workload(scale="test", frames=1)
    _pin(network, LEAVER_TASKS, 0)
    _pin(network, SURVIVOR_TASKS, 1)
    network.add_task(TaskSpec(
        name="warmer", program=_warmer_program, affinity=0,
    ))
    return network


def build_mpeg2():
    """The arriving decoder, spread over CPUs 2-3 only."""
    network = mpeg2_workload(scale="test", frames=1)
    for i, name in enumerate(sorted(network.tasks)):
        network.tasks[name] = replace(network.tasks[name], affinity=2 + i % 2)
    return network


def _fixed_shared_units(cake: CakeConfig) -> dict:
    """Full-residency partitions for the union's shared regions."""
    base, join = build_base(), build_mpeg2()
    sizes = {
        "appl.data": max(base.appl_data_bytes, join.appl_data_bytes),
        "appl.bss": max(base.appl_bss_bytes, join.appl_bss_bytes),
        "rt.data": max(base.rt_data_bytes, join.rt_data_bytes),
        "rt.bss": max(base.rt_bss_bytes, join.rt_bss_bytes),
    }
    return {
        name: -(-nbytes // cake.unit_bytes) for name, nbytes in sizes.items()
    }


def _measure_profiles(cake: CakeConfig) -> dict:
    """One profiling pass per application -- the warm cache the
    transition runs are handed (and must not add to)."""
    def measure(builder):
        return profile_miss_curves(
            builder, cake, sizes=METHOD.sizes,
            fifo_policy=METHOD.fifo_policy, repeats=METHOD.profile_repeats,
        )
    return {"": measure(build_base), "mpeg2": measure(build_mpeg2)}


def _run(transitions, profiles, cake, engine):
    dynamic = DynamicScenario(
        build_base,
        cake=cake,
        method=METHOD,
        transitions=transitions,
        join_builders={"mpeg2": build_mpeg2},
        engine=engine,
        fixed_units=_fixed_shared_units(cake),
    )
    return dynamic.run(profiles=profiles)


DYNAMIC_TRANSITIONS = (
    TransitionSpec(at=T_JOIN, action="join", group="mpeg2",
                   workload=WorkloadSpec(
                       "mpeg2", {"scale": "test", "frames": 1})),
    TransitionSpec(at=T_LEAVE, action="leave",
                   tasks=LEAVER_TASKS, fifos=LEAVER_FIFOS,
                   frames=LEAVER_FRAMES),
)

CONTROL_TRANSITIONS = (
    TransitionSpec(at=T_JOIN, action="mark"),
    TransitionSpec(at=T_LEAVE, action="mark"),
)


def collect() -> dict:
    """Run dynamic + control on every engine; assert all contracts."""
    cake = bench_cake()
    profiles = _measure_profiles(cake)

    passes_before = profiling_passes()
    runs = {}
    for kind, transitions in (
        ("dynamic", DYNAMIC_TRANSITIONS), ("control", CONTROL_TRANSITIONS)
    ):
        for engine in ENGINES:
            runs[kind, engine] = _run(transitions, profiles, cake, engine)
    reprofiled = profiling_passes() - passes_before
    assert reprofiled == 0, (
        f"warm-cache transitions performed {reprofiled} profiling passes"
    )

    # Engines bit-identical, per variant.
    for kind in ("dynamic", "control"):
        reference = (
            run_metrics_to_payload(runs[kind, "reference"].metrics),
            runs[kind, "reference"].epoch_payloads(),
            runs[kind, "reference"].transition_payloads(),
        )
        for engine in ("fast", "compiled"):
            got = (
                run_metrics_to_payload(runs[kind, engine].metrics),
                runs[kind, engine].epoch_payloads(),
                runs[kind, engine].transition_payloads(),
            )
            assert got == reference, (
                f"{kind} run diverges on engine {engine!r}"
            )

    dynamic, control = runs["dynamic", "fast"], runs["control", "fast"]
    join, leave = dynamic.transitions
    assert join.admitted, f"MPEG-2 arrival rejected: {join.reason!r}"
    assert leave.admitted

    # The paper's invariant, per epoch: the join and the leave are
    # invisible to every surviving task's partitioned execution.
    assert len(dynamic.epochs) == len(control.epochs) == 3
    mismatches = []
    for dyn_epoch, ctl_epoch in zip(dynamic.epochs, control.epochs):
        for name in SURVIVOR_TASKS:
            for counters in ("task_cycles", "task_instructions"):
                dyn = getattr(dyn_epoch, counters)[name]
                ctl = getattr(ctl_epoch, counters)[name]
                if dyn != ctl:
                    mismatches.append(
                        (dyn_epoch.index, name, counters, dyn, ctl)
                    )
    assert not mismatches, (
        f"transitions perturbed surviving tasks: {mismatches}"
    )
    # The leaver itself matches up to its departure...
    for epoch in (0, 1):
        for name in LEAVER_TASKS:
            assert dynamic.epochs[epoch].task_cycles[name] == \
                control.epochs[epoch].task_cycles[name]
    # ... and the arrival did real work.
    assert sum(
        cycles
        for name, cycles in dynamic.epochs[1].task_cycles.items()
        if name.startswith("mpeg2.")
    ) > 0

    return {
        "bench": "online_transitions",
        "workloads": {"base": "two_jpeg_canny[test]",
                      "join": "mpeg2[test]"},
        "t_join": T_JOIN,
        "t_leave": T_LEAVE,
        "total_units": dynamic.total_units,
        "join": join.to_payload(),
        "leave": leave.to_payload(),
        "profiling_passes_during_transitions": reprofiled,
        "replan_wall_s": {
            engine: [round(w, 6) for w in runs["dynamic", engine].replan_wall_s()]
            for engine in ENGINES
        },
        "epochs": dynamic.epoch_payloads(),
        "survivors_checked": len(SURVIVOR_TASKS),
        "engines_identical": True,
    }


def write_artifact(report: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_transitions.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


@pytest.mark.perf_smoke
def test_transition_compositionality_gate():
    """Join/leave must be invisible to survivors, per epoch, on all
    three engines, with zero re-profiling on warm curves."""
    report = collect()
    write_artifact(report)
    assert report["join"]["admitted"]
    assert report["profiling_passes_during_transitions"] == 0


if __name__ == "__main__":
    report = collect()
    path = write_artifact(report)
    print(json.dumps(report, indent=2))
    print(f"artifact: {path}")
