"""Shared fixtures for the benchmark harness.

The expensive artifacts -- the full method pipeline (profiling sweep +
shared + partitioned simulation) for each of the paper's two
applications -- are computed once per session and shared by the
per-table / per-figure benchmarks.  Every benchmark also writes its
textual artifact under ``benchmarks/results/`` so the outputs survive
pytest's output capturing.
"""

from functools import partial
from pathlib import Path

import pytest

from repro.apps import mpeg2_workload, two_jpeg_canny_workload
from repro.cake import CakeConfig
from repro.core import CompositionalMethod, MethodConfig

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_smoke: throughput regression gate for the fast hierarchy "
        "engine (run with: pytest benchmarks/bench_engine_speed.py "
        "-m perf_smoke)",
    )

#: Allocation-size menu (units) used by every profiling sweep.
SIZE_MENU = [1, 2, 4, 8, 16, 32, 64]

#: Frames simulated per application (app 1 strips are heavier).
APP1_FRAMES = 2
APP2_FRAMES = 4


def write_artifact(name: str, text: str) -> Path:
    """Persist one benchmark's textual artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def platform_config():
    """The paper's CAKE instance: 4 CPUs, 512 KB 4-way L2."""
    return CakeConfig()


@pytest.fixture(scope="session")
def app1_method(platform_config):
    """Pipeline object for 2x JPEG + Canny."""
    return CompositionalMethod(
        partial(two_jpeg_canny_workload, scale="paper", frames=APP1_FRAMES),
        platform_config,
        MethodConfig(sizes=SIZE_MENU, solver="dp"),
    )


@pytest.fixture(scope="session")
def app2_method(platform_config):
    """Pipeline object for the MPEG-2 decoder."""
    return CompositionalMethod(
        partial(mpeg2_workload, scale="paper", frames=APP2_FRAMES),
        platform_config,
        MethodConfig(sizes=SIZE_MENU, solver="dp"),
    )


@pytest.fixture(scope="session")
def app1_report(app1_method):
    """Full pipeline result for application 1 (computed once)."""
    return app1_method.run()


@pytest.fixture(scope="session")
def app2_report(app2_method):
    """Full pipeline result for application 2 (computed once)."""
    return app2_method.run()
