"""Shared fixtures for the benchmark harness.

The paper's two applications are declared once as experiment
:class:`~repro.exp.Scenario` specs; :func:`repro.exp.run_scenario`
executes them through the single-scenario engine with process-wide
memoization, so the expensive artifacts (profiling sweep + shared +
partitioned simulation) are computed once per session and shared by
the per-table / per-figure benchmarks *and* the ablation grids --
an ablation that varies only the solver or the FIFO policy reuses the
session's miss curves and baseline run instead of re-measuring them.

Profiling and baselines additionally persist in a
:class:`~repro.exp.ProfileCache` under ``benchmarks/results/``: a
*second* benchmark session re-profiles nothing at all (identical keys
yield identical payloads, so re-runs reproduce the same records).
Delete ``benchmarks/results/profile_cache`` -- or run ``python -m
repro.exp.cache clear --dir benchmarks/results/profile_cache`` -- to
force fresh measurements.

Every scenario's record also streams into a session-wide
:class:`~repro.exp.ResultStore` (``benchmarks/results/experiments.jsonl``)
rendered as a closing sweep report, and each benchmark still writes
its textual artifact under ``benchmarks/results/``.
"""

from pathlib import Path

import pytest

from repro.analysis import report_from_store
from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.exp import ProfileCache, ResultStore, Scenario, WorkloadSpec, run_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Cross-session measurement reuse for the benchmark harness.
PROFILE_CACHE = ProfileCache(RESULTS_DIR / "profile_cache")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_smoke: throughput regression gate for the fast hierarchy "
        "engine (run with: pytest benchmarks/bench_engine_speed.py "
        "-m perf_smoke)",
    )

#: Allocation-size menu (units) used by every profiling sweep.
SIZE_MENU = [1, 2, 4, 8, 16, 32, 64]

#: Frames simulated per application (app 1 strips are heavier).
APP1_FRAMES = 2
APP2_FRAMES = 4

#: The paper's CAKE instance: 4 CPUs, 512 KB 4-way L2.
PAPER_CAKE = CakeConfig()

#: 2x JPEG + Canny (Table 1 / Figure 2-3 left).
APP1_SCENARIO = Scenario(
    workload=WorkloadSpec(
        "two_jpeg_canny", {"scale": "paper", "frames": APP1_FRAMES}
    ),
    cake=PAPER_CAKE,
    method=MethodConfig(sizes=SIZE_MENU, solver="dp"),
)

#: The 13-task MPEG-2 decoder (Table 2 / Figure 2-3 right).
APP2_SCENARIO = Scenario(
    workload=WorkloadSpec(
        "mpeg2", {"scale": "paper", "frames": APP2_FRAMES}
    ),
    cake=PAPER_CAKE,
    method=MethodConfig(sizes=SIZE_MENU, solver="dp"),
)


def write_artifact(name: str, text: str) -> Path:
    """Persist one benchmark's textual artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def platform_config():
    """The paper's CAKE instance: 4 CPUs, 512 KB 4-way L2."""
    return PAPER_CAKE


@pytest.fixture(scope="session")
def app1_method():
    """Single-scenario pipeline engine for 2x JPEG + Canny."""
    return APP1_SCENARIO.build_method()


@pytest.fixture(scope="session")
def app2_method():
    """Single-scenario pipeline engine for the MPEG-2 decoder."""
    return APP2_SCENARIO.build_method()


@pytest.fixture(scope="session")
def experiment_store():
    """The session's result stream (records append as benches run)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return ResultStore(path=RESULTS_DIR / "experiments.jsonl")


@pytest.fixture(scope="session")
def app1_outcome(experiment_store):
    """Record + full report for application 1 (computed once)."""
    outcome = run_scenario(APP1_SCENARIO, cache=PROFILE_CACHE)
    experiment_store.append(outcome.record)
    return outcome


@pytest.fixture(scope="session")
def app2_outcome(experiment_store):
    """Record + full report for application 2 (computed once)."""
    outcome = run_scenario(APP2_SCENARIO, cache=PROFILE_CACHE)
    experiment_store.append(outcome.record)
    return outcome


@pytest.fixture(scope="session")
def app1_report(app1_outcome):
    """Full pipeline MethodReport for application 1."""
    return app1_outcome.report


@pytest.fixture(scope="session")
def app2_report(app2_outcome):
    """Full pipeline MethodReport for application 2."""
    return app2_outcome.report


@pytest.fixture(scope="session", autouse=True)
def render_store_report(request, experiment_store):
    """Close the session with the sweep report over every record."""
    yield
    if len(experiment_store):
        write_artifact(
            "experiments_report.txt",
            report_from_store(
                experiment_store, title="benchmark session sweeps",
                columns=("workload", "mode", "l2_kb", "n_cpus", "solver",
                         "fifo_policy", "scheduling", "tag",
                         "shared_miss_rate", "partitioned_miss_rate",
                         "miss_reduction_factor", "cpi_improvement"),
            ),
        )
