#!/usr/bin/env python
"""Make *your own* application compositional.

Shows the full authoring workflow on a new application (not one of the
paper's): a small software-defined-radio-style chain

    tuner -> demod -> deframe -> audio
              \\-> spectrum (second consumer via its own FIFO)

Each task program is a plain generator over the TaskContext API; memory
behaviour is declared with the pattern kit.  The compositional method
then profiles, optimizes and validates it exactly as it does the paper
workloads.  To sweep a custom application over platform or method
axes, register its builder with
:func:`repro.exp.register_workload` and expand a grid with
:func:`repro.exp.sweep` (see ``examples/design_space_exploration.py``).

Run:  python examples/custom_application.py
"""

from repro.analysis import figure3_report, headline_report, table_report
from repro.cake import CakeConfig
from repro.core import CompositionalMethod, MethodConfig
from repro.kpn import FifoSpec, FrameBufferSpec, ProcessNetwork, TaskSpec

SAMPLES = 48  # tokens processed per run


def tuner(ctx):
    """Streams IF samples from the capture buffer, light filtering."""
    capture = ctx.frame("capture")
    chunk = 4096
    for i in range(SAMPLES):
        offset = (i * chunk) % (capture.size - chunk)
        yield ctx.compute(
            ctx.fetch(3000, loop_bytes=1024),
            ctx.stream(capture, offset, chunk),
            ctx.stream(ctx.heap, 0, min(2048, ctx.heap.size), write=True),
        )
        yield ctx.write("iq_out")
        yield ctx.write("iq_tap")


def demod(ctx):
    """Polyphase demodulator: large coefficient bank, hot reuse."""
    bank = min(12 * 1024, ctx.data.size)
    for _ in range(SAMPLES):
        yield ctx.read("iq_in")
        yield ctx.compute(
            ctx.fetch(8000, loop_bytes=2048),
            ctx.stream(ctx.data, 0, bank),
            ctx.stream(ctx.heap, 0, min(4096, ctx.heap.size), write=True),
        )
        yield ctx.write("sym_out")


def deframe(ctx):
    """Deframer/decoder: data-dependent code-table lookups."""
    for _ in range(SAMPLES):
        yield ctx.read("sym_in")
        yield ctx.compute(
            ctx.fetch(4000, loop_bytes=1536),
            ctx.table(ctx.bss, n=800, entry_bytes=16,
                      table_bytes=min(6 * 1024, ctx.bss.size), skew=1.25),
        )
        yield ctx.write("pcm_out")


def audio(ctx):
    """Audio sink: resampling into the output ring."""
    out = ctx.frame("audio_out")
    chunk = 2048
    for i in range(SAMPLES):
        yield ctx.read("pcm_in")
        offset = (i * chunk) % (out.size - chunk)
        yield ctx.compute(
            ctx.fetch(2500, loop_bytes=1024),
            ctx.stream(out, offset, chunk, write=True),
        )


def spectrum(ctx):
    """FFT-based spectrum display: blocked butterflies over a window."""
    window = min(16 * 1024, ctx.heap.size)
    for _ in range(SAMPLES):
        yield ctx.read("iq_in")
        yield ctx.compute(
            ctx.fetch(6000, loop_bytes=2048),
            ctx.block(ctx.heap, row_stride=1024, x0=0, y0=0,
                      width=1024, height=window // 1024, elem=1, passes=2),
        )


def build_sdr_network() -> ProcessNetwork:
    """The application description (what YAPI calls the Y-chart)."""
    network = ProcessNetwork("sdr", appl_data_bytes=4096,
                             appl_bss_bytes=4096)
    network.add_frame_buffer(FrameBufferSpec("capture", 256 * 1024,
                                             window_bytes=8 * 1024))
    network.add_frame_buffer(FrameBufferSpec("audio_out", 128 * 1024,
                                             window_bytes=4 * 1024))
    network.add_task(TaskSpec("tuner", tuner, heap_bytes=4 * 1024))
    network.add_task(TaskSpec("demod", demod, data_bytes=12 * 1024,
                              heap_bytes=8 * 1024))
    network.add_task(TaskSpec("deframe", deframe, bss_bytes=6 * 1024))
    network.add_task(TaskSpec("audio", audio, heap_bytes=4 * 1024))
    network.add_task(TaskSpec("spectrum", spectrum, heap_bytes=16 * 1024))
    network.add_fifo(FifoSpec("iq", "tuner", "iq_out", "demod", "iq_in",
                              token_bytes=2048, capacity_tokens=2))
    network.add_fifo(FifoSpec("iq2", "tuner", "iq_tap", "spectrum", "iq_in",
                              token_bytes=2048, capacity_tokens=2))
    network.add_fifo(FifoSpec("sym", "demod", "sym_out", "deframe", "sym_in",
                              token_bytes=1024, capacity_tokens=2))
    network.add_fifo(FifoSpec("pcm", "deframe", "pcm_out", "audio", "pcm_in",
                              token_bytes=512, capacity_tokens=4))
    return network


def main():
    method = CompositionalMethod(
        build_sdr_network,
        CakeConfig(n_cpus=2),
        MethodConfig(sizes=[1, 2, 4, 8, 16]),
    )
    report = method.run()
    print(table_report(report, "SDR partition plan"))
    print()
    print(headline_report(report))
    print()
    print(figure3_report(report, "SDR compositionality"))


if __name__ == "__main__":
    main()
