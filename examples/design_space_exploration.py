#!/usr/bin/env python
"""Design-space exploration with the declarative experiment API.

Three sweeps the paper discusses, all expressed as scenario grids and
executed by the :class:`~repro.exp.ExperimentRunner` (no hand-rolled
loops):

1. **L2 capacity** -- how the shared-vs-partitioned gap evolves as the
   cache grows (the paper's closing 1 MB data point generalized).
   Every grid point shares one profiling pass: miss curves are
   measured on a virtual L2, so the capacity axis re-profiles nothing.
   The sweep runs against the *persistent* profile cache, so running
   this example a second time re-profiles nothing at all.
2. **Solver x associativity** -- exact DP vs greedy across 4/8-way
   L2s, executed on the asyncio backend (same records, same
   fingerprints -- backends are interchangeable transports).
3. **Task-to-processor assignment** -- the §3.1 throughput model
   ``1 / max_k Y(P_k)`` comparing naive round-robin pinning with
   LPT + local-search assignment (analytic, no simulation sweep).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import format_table, report_from_store
from repro.cake import CakeConfig
from repro.core import MethodConfig, ThroughputModel, assign_tasks_lpt
from repro.exp import ExperimentRunner, Scenario, WorkloadSpec, run_scenario, sweep

PIPELINE5 = WorkloadSpec(
    "pipeline", {"n_stages": 5, "n_tokens": 48, "work_bytes": 16 * 1024}
)


def l2_size_sweep():
    # Each sweep gets its own runner (= its own record stream); the
    # profiling/baseline memo tables are process-wide, so separate
    # runners still share measurements -- and cache=True persists them
    # on disk ($REPRO_PROFILE_CACHE or ~/.cache/repro/profiles), so
    # separate *sessions* share them too.
    runner = ExperimentRunner(workers=2, cache=True)
    scenarios = sweep(
        Scenario(
            workload=PIPELINE5,
            cake=CakeConfig(),
            method=MethodConfig(sizes=[1, 2, 4, 8, 16]),
        ),
        l2_size_kb=[128, 256, 512, 1024],
    )
    store = runner.run(scenarios)
    print(report_from_store(
        store,
        title="L2 capacity sweep (synthetic 5-stage pipeline)",
        columns=("l2_kb", "shared_miss_rate", "partitioned_miss_rate",
                 "miss_reduction_factor"),
    ))
    print(f"profiling passes for {len(scenarios)} scenarios: "
          f"{runner.last_stats['profiles_computed']} computed, "
          f"{runner.last_stats['profiles_from_disk']} from "
          f"{runner.cache.root} (capacity re-profiles nothing; a second "
          f"run of this example re-profiles nothing at all)")


def solver_ways_sweep():
    # Same sweep machinery, different transport: the asyncio backend
    # runs scenarios concurrently on an event loop and produces the
    # same records as inline or pool execution would.
    runner = ExperimentRunner(workers=4, backend="async", cache=True)
    scenarios = sweep(
        Scenario(
            workload=PIPELINE5,
            cake=CakeConfig().with_l2_size(256 * 1024),
            method=MethodConfig(sizes=[1, 2, 4, 8, 16]),
        ),
        l2_ways=[4, 8],
        solver=["dp", "greedy"],
    )
    store = runner.run(scenarios)
    print(report_from_store(
        store,
        title="solver x associativity sweep",
        columns=("l2_ways", "solver", "predicted_misses",
                 "partitioned_misses", "miss_reduction_factor"),
    ))


def assignment_study():
    def build():
        # Heterogeneous stages: two heavy filters among light ones, so
        # the assignment actually matters.
        network = WorkloadSpec(
            "pipeline", {"n_stages": 6, "n_tokens": 32,
                         "work_bytes": 8 * 1024},
        ).build()()
        network.tasks["stage1"].params["reread"] = 6
        network.tasks["stage1"].params["instr"] = 20_000
        network.tasks["stage3"].params["reread"] = 4
        network.tasks["stage3"].params["instr"] = 12_000
        return network

    from repro.exp import register_workload

    register_workload("heterogeneous_pipeline", build, overwrite=True)
    scenario = Scenario(
        workload=WorkloadSpec("heterogeneous_pipeline"),
        cake=CakeConfig(n_cpus=3),
        method=MethodConfig(sizes=[1, 2, 4, 8]),
    )
    outcome = run_scenario(scenario)
    report = outcome.report
    config, profile, plan = scenario.effective_cake, report.profile, report.plan

    model = ThroughputModel(config, profile)
    allocation = plan.units_by_owner
    task_times = {
        name: model.task_time(name, plan.units_of(f"task:{name}"))
        for name in profile.instructions
    }
    naive = {name: i % config.n_cpus
             for i, name in enumerate(sorted(task_times))}
    optimized = assign_tasks_lpt(task_times, config.n_cpus)

    rows = []
    for label, assignment in (("round-robin", naive), ("LPT+swap", optimized)):
        times = model.processor_times(assignment, allocation)
        rows.append((
            label,
            f"{max(times):,.0f}",
            f"{model.throughput(assignment, allocation) * 1e6:.3f}",
        ))
    print(format_table(
        ("assignment", "max_k Y(P_k) cycles", "runs per Mcycle"),
        rows, title="task-to-processor assignment (throughput model, §3.1)",
    ))


def main():
    l2_size_sweep()
    print()
    solver_ways_sweep()
    print()
    assignment_study()


if __name__ == "__main__":
    main()
