#!/usr/bin/env python
"""Design-space exploration with the analytic models.

Sweeps two axes the paper discusses:

1. **L2 capacity** -- how the shared-vs-partitioned gap evolves as the
   cache grows (the paper's closing 1 MB data point generalized).
2. **Task-to-processor assignment** -- using the §3.1 throughput model
   ``1 / max_k Y(P_k)`` to compare naive round-robin pinning with
   LPT + local-search assignment on the measured execution times.

Run:  python examples/design_space_exploration.py
"""

from functools import partial

from repro.analysis import format_table
from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.core import (
    CompositionalMethod,
    MethodConfig,
    ThroughputModel,
    assign_tasks_lpt,
)
from repro.mem.partition import PartitionMode


def l2_size_sweep():
    builder = partial(make_pipeline, n_stages=5, n_tokens=48,
                      work_bytes=16 * 1024)
    rows = []
    for size_kb in (128, 256, 512, 1024):
        config = CakeConfig().with_l2_size(size_kb * 1024)
        shared = Platform(builder(), config, mode=PartitionMode.SHARED).run()
        method = CompositionalMethod(
            builder, config, MethodConfig(sizes=[1, 2, 4, 8, 16])
        )
        profile = method.profile()
        plan = method.optimize(profile)
        partitioned = method.simulate(plan)
        rows.append((
            f"{size_kb} KB",
            f"{shared.l2_miss_rate:.2%}",
            f"{partitioned.l2_miss_rate:.2%}",
            f"{shared.l2_misses / max(1, partitioned.l2_misses):.2f}x",
        ))
    print(format_table(
        ("L2 size", "shared miss rate", "partitioned", "reduction"),
        rows, title="L2 capacity sweep (synthetic 5-stage pipeline)",
    ))


def assignment_study():
    def builder():
        # Heterogeneous stages: two heavy filters among light ones, so
        # the assignment actually matters.
        network = make_pipeline(n_stages=6, n_tokens=32,
                                work_bytes=8 * 1024)
        network.tasks["stage1"].params["reread"] = 6
        network.tasks["stage1"].params["instr"] = 20_000
        network.tasks["stage3"].params["reread"] = 4
        network.tasks["stage3"].params["instr"] = 12_000
        return network

    config = CakeConfig(n_cpus=3)
    method = CompositionalMethod(
        builder, config, MethodConfig(sizes=[1, 2, 4, 8])
    )
    profile = method.profile()
    plan = method.optimize(profile)
    model = ThroughputModel(config, profile)
    allocation = plan.units_by_owner

    task_times = {
        name: model.task_time(name, plan.units_of(f"task:{name}"))
        for name in profile.instructions
    }
    naive = {name: i % config.n_cpus
             for i, name in enumerate(sorted(task_times))}
    optimized = assign_tasks_lpt(task_times, config.n_cpus)

    rows = []
    for label, assignment in (("round-robin", naive), ("LPT+swap", optimized)):
        times = model.processor_times(assignment, allocation)
        rows.append((
            label,
            f"{max(times):,.0f}",
            f"{model.throughput(assignment, allocation) * 1e6:.3f}",
        ))
    print(format_table(
        ("assignment", "max_k Y(P_k) cycles", "runs per Mcycle"),
        rows, title="task-to-processor assignment (throughput model, §3.1)",
    ))


def main():
    l2_size_sweep()
    print()
    assignment_study()


if __name__ == "__main__":
    main()
