#!/usr/bin/env python
"""The paper's first application: two JPEG decoders + Canny (15 tasks).

Reproduces Table 1 / Figure 2 / Figure 3 for the 2x-JPEG + Canny
workload at the paper's picture formats (about a minute); ``--quick``
exercises the same pipeline on toy pictures in seconds.

This example drives the single-scenario engine
(:class:`~repro.core.CompositionalMethod`) directly; for multi-scenario
studies of the same workload use the declarative experiment layer
(``repro.exp``: the workload is registered as ``"two_jpeg_canny"``) --
see ``examples/design_space_exploration.py``.

Run:  python examples/jpeg_canny_pipeline.py [--quick]
"""

import argparse
from functools import partial

from repro.analysis import (
    figure2_report,
    figure3_report,
    headline_report,
    table_report,
)
from repro.apps import two_jpeg_canny_workload
from repro.cake import CakeConfig
from repro.core import CompositionalMethod, MethodConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="toy-sized pictures; exercises the pipeline "
                             "in seconds but the tiny decoders fit any "
                             "cache, so expect no partitioning win")
    parser.add_argument("--frames", type=int, default=None,
                        help="frames decoded per run")
    parser.add_argument("--solver", default="dp",
                        choices=("dp", "greedy", "milp"))
    args = parser.parse_args()

    scale = "test" if args.quick else "paper"
    frames = args.frames if args.frames is not None else (1 if args.quick else 2)
    sizes = [1, 2, 4, 8] if args.quick else [1, 2, 4, 8, 16, 32, 64]
    builder = partial(two_jpeg_canny_workload, scale=scale, frames=frames)

    method = CompositionalMethod(
        builder, CakeConfig(),
        MethodConfig(sizes=sizes, solver=args.solver),
    )
    report = method.run()

    print(table_report(report, "Table 1"))
    print()
    print(figure2_report(report, "Figure 2 (app 1)"))
    print()
    print(figure3_report(report, "Figure 3 (app 1)"))
    print()
    print(headline_report(report))


if __name__ == "__main__":
    main()
