#!/usr/bin/env python
"""The paper's second application: the 13-task parallel MPEG-2 decoder.

Reproduces Table 2 and the decoder's headline numbers, including the
1 MB shared-L2 comparison point the paper closes with.  Runs at the
paper's CIF scale by default (about a minute); ``--quick`` exercises
the same pipeline on toy pictures in seconds.

This example drives the single-scenario engine
(:class:`~repro.core.CompositionalMethod`) directly; for sweeps over
the decoder (L2 geometry, solver, seeds) use the declarative
experiment layer (``repro.exp``: the workload is registered as
``"mpeg2"``).

Run:  python examples/mpeg2_decoder.py [--quick]
"""

import argparse
from functools import partial

from repro.analysis import figure2_report, headline_report, table_report
from repro.apps import mpeg2_workload
from repro.cake import CakeConfig, Platform
from repro.core import CompositionalMethod, MethodConfig
from repro.mem.partition import PartitionMode


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="toy-sized pictures; exercises the pipeline "
                             "in seconds but the tiny decoder fits any "
                             "cache, so expect no partitioning win")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()

    scale = "test" if args.quick else "paper"
    # Several frames are needed to amortise cold misses (the paper
    # simulates long periodic executions).
    frames = args.frames if args.frames is not None else (1 if args.quick else 4)
    sizes = [1, 2, 4, 8] if args.quick else [1, 2, 4, 8, 16, 32, 64]
    config = CakeConfig()
    builder = partial(mpeg2_workload, scale=scale, frames=frames)

    method = CompositionalMethod(builder, config, MethodConfig(sizes=sizes))
    report = method.run()

    print(table_report(report, "Table 2"))
    print()
    print(figure2_report(report, "Figure 2 (mpeg2)"))
    print()
    print(headline_report(report))

    # The paper's final data point: a twice-as-large *shared* L2.
    doubled = config.with_l2_size(
        2 * config.hierarchy.l2_geometry.size_bytes
    )
    platform = Platform(builder(), doubled, mode=PartitionMode.SHARED)
    metrics = platform.run()
    print()
    print(f"mpeg2 with {doubled.hierarchy.l2_geometry.size_bytes // 1024}KB "
          f"shared L2: miss rate {metrics.l2_miss_rate:.2%}, "
          f"CPI {metrics.mean_cpi:.3f}")
    print(f"(512KB shared: {report.shared_miss_rate:.2%}; "
          f"512KB partitioned: {report.partitioned_miss_rate:.2%})")


if __name__ == "__main__":
    main()
