#!/usr/bin/env python
"""Online transition: a pipeline joins a running platform, then leaves.

A static :class:`~repro.exp.Scenario` fixes its task set up front; a
*dynamic* one lists ``transitions=`` -- scheduled joins, leaves and
measurement marks at simulated instants.  This example starts a
four-stage pipeline, admits a second (smaller) pipeline mid-run under
a cycle budget, lets it finish, and detaches it again, then prints
what the admission controller decided, what each epoch measured, and
what the replan cost.

Because profiling identity excludes transitions, the join group's miss
curves are the *standalone* profile of its workload: against a warm
cache (``cache=True``) the arrival performs zero profiling passes.

Run:  python examples/online_transition.py
"""

from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.exp import Scenario, TransitionSpec, WorkloadSpec, run_scenario


def main():
    base_workload = WorkloadSpec(
        "pipeline",
        {"n_stages": 4, "n_tokens": 64, "token_bytes": 1024,
         "work_bytes": 12 * 1024},
    )
    late_workload = WorkloadSpec(
        "pipeline",
        {"n_stages": 2, "n_tokens": 24, "token_bytes": 512,
         "work_bytes": 6 * 1024},
    )
    scenario = Scenario(
        workload=base_workload,
        cake=CakeConfig(n_cpus=2).with_l2_size(64 * 1024),
        method=MethodConfig(sizes=[1, 2, 4, 8], solver="dp"),
        transitions=(
            # The arrival: admitted only if its MCKP fits the free
            # units contiguously AND its predicted cycle cost (its
            # instructions + predicted misses x DRAM latency) stays
            # under the budget.  On rejection the record carries the
            # reason ("capacity" / "fragmentation" / "budget") and the
            # group never attaches.
            TransitionSpec(at=150_000.0, action="join", group="late",
                           workload=late_workload, budget=5e6),
            # The departure: flushes only the leavers' cache residency
            # (dirty victims are counted as writebacks); every
            # surviving owner keeps its exact unit range.
            TransitionSpec(at=600_000.0, action="leave", group="late"),
        ),
    )
    print(f"scenario {scenario.scenario_id}: {scenario.describe()}")
    print()

    outcome = run_scenario(scenario, cache=True)
    payload = outcome.record.payload

    print("Transitions:")
    for outcome_payload in payload["transitions"]:
        verdict = (
            "admitted" if outcome_payload["admitted"]
            else f"REJECTED ({outcome_payload['reason']})"
        )
        print(f"  t={outcome_payload['at']:>9.0f}  "
              f"{outcome_payload['action']:5s}  {verdict}")
        if outcome_payload["action"] == "join":
            print(f"             predicted cycles "
                  f"{outcome_payload['predicted_cycles']:.0f} "
                  f"(budget {outcome_payload['budget']:.0f}); granted "
                  f"{sum(outcome_payload['granted_units'].values())} units")
        if outcome_payload["action"] == "leave":
            print(f"             freed {outcome_payload['freed_units']} "
                  f"units, {outcome_payload['writebacks']} dirty "
                  f"writebacks")
    print()

    print("Epochs (per-task cycles between transitions):")
    for epoch in payload["epochs"]:
        busy = {name: cycles
                for name, cycles in epoch["task_cycles"].items() if cycles}
        span = f"[{epoch['start']:.0f}, {epoch['end']:.0f})"
        print(f"  epoch {epoch['index']} {span:>22s} "
              f"closed by {epoch['trigger']}: {len(busy)} active tasks")
    print()

    replan = outcome.record.payload["timing"]["replan_wall_s"]
    print(f"Replan latency (host): "
          f"{', '.join(f'{s * 1e3:.2f} ms' for s in replan)}")


if __name__ == "__main__":
    main()
