#!/usr/bin/env python
"""Quickstart: make a small communicating application compositional.

Declares one experiment :class:`~repro.exp.Scenario` -- a four-stage
synthetic pipeline on a CAKE tile with a deliberately small 64 KB L2 --
and executes it with :func:`repro.exp.run_scenario`, which runs the
paper's full method (profile -> optimize -> partition -> validate)
against the conventional shared-cache baseline.  The outcome carries
both the paper-style :class:`~repro.core.MethodReport` and the
JSON-stable :class:`~repro.exp.ScenarioRecord` that a sweep would
stream into a :class:`~repro.exp.ResultStore`.

Run:  python examples/quickstart.py
"""

from repro.analysis import figure3_report, headline_report
from repro.cake import CakeConfig
from repro.core import MethodConfig, format_reduction_factor
from repro.exp import Scenario, WorkloadSpec, run_scenario


def main():
    # A source -> filter -> filter -> sink pipeline; each stage has a
    # 12 KB private working set and the links carry 1 KB tokens.  The
    # tile gets a deliberately small 64 KB L2 so the four stages
    # genuinely contend for it -- the situation the paper's method
    # untangles.
    scenario = Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 4, "n_tokens": 64, "token_bytes": 1024,
             "work_bytes": 12 * 1024},
        ),
        cake=CakeConfig(n_cpus=2).with_l2_size(64 * 1024),
        method=MethodConfig(sizes=[1, 2, 4, 8], solver="dp"),
    )
    print(f"scenario {scenario.scenario_id}: {scenario.describe()}")
    print()

    # cache=True persists the profiling sweep and baseline run under
    # $REPRO_PROFILE_CACHE (default ~/.cache/repro/profiles): re-running
    # this example only re-executes the partitioned simulation.
    outcome = run_scenario(scenario, cache=True)
    record, report = outcome.record, outcome.report

    print(report.summary())
    print()
    print("Chosen partition plan (units of 8 cache sets = 2 KB):")
    for owner, units in sorted(report.plan.units_by_owner.items()):
        print(f"  {owner:20s} {units:3d}")
    print()
    print(headline_report(report))
    print()
    print(figure3_report(report, "Compositionality check"))
    print()
    print("Record for the result store (JSONL line, timing included):")
    print(f"  scenario_id={record.scenario_id}  "
          f"reduction={format_reduction_factor(record.miss_reduction_factor)}  "
          f"axes={record.axes['l2_kb']}KB/{record.axes['solver']}")


if __name__ == "__main__":
    main()
