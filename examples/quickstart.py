#!/usr/bin/env python
"""Quickstart: make a small communicating application compositional.

Builds a four-stage synthetic pipeline, runs it on a CAKE tile with a
conventional shared L2, then runs the paper's full method (profile ->
optimize -> partition -> validate) and compares the two.

Run:  python examples/quickstart.py
"""

from functools import partial

from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig
from repro.core import CompositionalMethod, MethodConfig
from repro.analysis import figure3_report, headline_report


def main():
    # A source -> filter -> filter -> sink pipeline; each stage has a
    # 12 KB private working set and the links carry 1 KB tokens.  The
    # tile gets a deliberately small 64 KB L2 so the four stages
    # genuinely contend for it -- the situation the paper's method
    # untangles.
    builder = partial(make_pipeline, n_stages=4, n_tokens=64,
                      token_bytes=1024, work_bytes=12 * 1024)

    method = CompositionalMethod(
        builder,
        CakeConfig(n_cpus=2).with_l2_size(64 * 1024),
        MethodConfig(sizes=[1, 2, 4, 8], solver="dp"),
    )
    report = method.run()

    print(report.summary())
    print()
    print("Chosen partition plan (units of 8 cache sets = 2 KB):")
    for owner, units in sorted(report.plan.units_by_owner.items()):
        print(f"  {owner:20s} {units:3d}")
    print()
    print(headline_report(report))
    print()
    print(figure3_report(report, "Compositionality check"))


if __name__ == "__main__":
    main()
