"""Distributed sweep in one process: server, fleet, RemoteBackend.

Self-contained demo of ``repro.exp.service``: hosts a sweep server on
an ephemeral port, attaches two worker threads, and runs a small grid
through ``ExperimentRunner(backend=RemoteBackend(...))`` against a
shared profile cache -- then proves the distributed store is
byte-identical to the inline one and that re-submitting the grid
re-executes nothing (content-addressed dedupe).

In real use the three roles are separate processes (likely separate
machines sharing the cache directory over a network filesystem)::

    python -m repro.exp.service serve --port 8642
    REPRO_SWEEP_SERVER=http://HOST:8642 python -m repro.exp.service worker
    REPRO_SWEEP_SERVER=http://HOST:8642 python -m repro.exp.service \
        submit grid.json --cache /shared/cache --store results.jsonl

Run from the repository root::

    PYTHONPATH=src python examples/remote_sweep.py
"""

import tempfile
import threading

from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.exp import (
    ExperimentRunner,
    RemoteBackend,
    Scenario,
    ServiceClient,
    SweepServer,
    WorkloadSpec,
    clear_caches,
    run_worker,
    sweep,
)
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


def build_grid():
    base = Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 4, "n_tokens": 24, "token_bytes": 1024,
             "work_bytes": 12 * 1024},
        ),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(sizes=[1, 2, 4, 8]),
    )
    return sweep(base, l2_size_kb=[64, 128], solver=["dp", "greedy"])


def main():
    scenarios = build_grid()

    # The reference: the same grid, inline in this process.
    inline = ExperimentRunner(workers=1).run(scenarios)
    clear_caches()  # drop the in-process memos; the fleet starts cold

    with tempfile.TemporaryDirectory() as tmp, \
            SweepServer(port=0, lease_ttl=30.0) as server:
        print(f"sweep server on {server.url}")

        # A two-worker fleet (threads here; processes/machines in real
        # use -- `python -m repro.exp.service worker`).  Workers pull
        # {"fn", "task"} pairs and run the same JSON task protocol the
        # in-process backends map.
        stop = threading.Event()
        fleet = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(url=server.url, worker_id=f"worker-{i}",
                            poll_interval=0.05, stop=stop),
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in fleet:
            thread.start()

        # The client side: a normal ExperimentRunner whose transport is
        # the server.  The shared cache directory is the data plane --
        # workers write measurements there, execute tasks reference
        # them by content key.
        runner = ExperimentRunner(
            backend=RemoteBackend(server.url, poll_interval=0.05),
            cache=f"{tmp}/cache",
            store_path=f"{tmp}/remote.jsonl",
        )
        remote = runner.run(scenarios)

        client = ServiceClient(server.url)
        status = client.status()
        print(f"completed {status['counters']['completed']} tasks "
              f"({status['counters']['profiling_passes']} profiling "
              f"passes) across {len(status['workers'])} workers")
        assert remote.fingerprint() == inline.fingerprint(), \
            "distributed and inline stores must be byte-identical"
        print(f"fingerprint matches inline run: {remote.fingerprint()}")

        # Idempotent re-submission: the same grid again is pure dedupe
        # -- every task resolves from the server's done set.
        clear_caches()
        again = ExperimentRunner(
            backend=RemoteBackend(server.url, poll_interval=0.05),
            cache=f"{tmp}/cache",
        ).run(scenarios)
        assert again.fingerprint() == inline.fingerprint()
        deduped = client.status()["counters"]["deduped"]
        print(f"re-submission deduped {deduped} tasks "
              f"(nothing re-executed)")

        client.drain()  # workers exit after their current task
        stop.set()
        for thread in fleet:
            thread.join(timeout=10.0)

    header, rows = remote.to_table(
        ("l2_kb", "solver", "shared_miss_rate", "partitioned_miss_rate",
         "miss_reduction_factor")
    )
    print(" | ".join(header))
    for row in rows:
        print(" | ".join(
            f"{value:.4f}" if isinstance(value, float) else str(value)
            for value in row
        ))


if __name__ == "__main__":
    main()
