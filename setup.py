"""Setup shim.

The sandbox this repository is developed in has no network access and no
``wheel`` package, so PEP 517 editable installs (which need
``bdist_wheel``) fail.  Keeping a classic ``setup.py`` lets
``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Compositional memory systems for multimedia communicating tasks "
        "(DATE 2005) - full reproduction"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
