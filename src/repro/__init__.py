"""repro -- reproduction of "Compositional memory systems for multimedia
communicating tasks" (Molnos et al., DATE 2005).

The package provides:

- a discrete-event simulation kernel (:mod:`repro.sim`),
- a memory-system substrate with the paper's set-index-translation
  cache partitioning (:mod:`repro.mem`),
- the CAKE multiprocessor tile model (:mod:`repro.cake`),
- an RTOS model with cache-allocation syscalls (:mod:`repro.rtos`),
- a YAPI-like Kahn-process-network runtime (:mod:`repro.kpn`),
- the two paper workloads (:mod:`repro.apps`),
- the paper's contribution -- miss-curve profiling, the MCKP/MILP
  partitioning optimizers, throughput/power models and the end-to-end
  compositional method (:mod:`repro.core`),
- declarative experiments -- scenario grids, the parallel sweep runner
  and the JSONL result store (:mod:`repro.exp`), and
- reporting helpers (:mod:`repro.analysis`).

Quickstart::

    from repro.cake import CakeConfig
    from repro.core import CompositionalMethod
    from repro.apps import two_jpeg_canny_workload

    method = CompositionalMethod(two_jpeg_canny_workload, CakeConfig())
    report = method.run()
    print(report.summary())
"""

__version__ = "1.0.0"

from repro.errors import (
    AddressError,
    ConfigurationError,
    MemoryModelError,
    NetworkError,
    OptimizationError,
    PartitionError,
    ReproError,
    SchedulingError,
    SimulationError,
)

__all__ = [
    "AddressError",
    "ConfigurationError",
    "MemoryModelError",
    "NetworkError",
    "OptimizationError",
    "PartitionError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "__version__",
]
