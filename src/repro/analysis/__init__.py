"""Reporting: tables, ASCII charts and experiment artifacts.

- :mod:`repro.analysis.tables` -- plain-text tables (the Tables 1/2
  renderer follows the paper's layout: task rows then data rows).
- :mod:`repro.analysis.charts` -- ASCII bar charts (stand-ins for the
  paper's Figures 2 and 3, log-scale like the originals).
- :mod:`repro.analysis.report` -- experiment artifact assembly used by
  the benchmark harness and EXPERIMENTS.md.
"""

from repro.analysis.charts import ascii_bars, log_bars
from repro.analysis.export import (
    load_plan,
    load_profile,
    miss_curves_to_csv,
    profile_from_payload,
    profile_to_payload,
    save_plan,
    save_profile,
)
from repro.analysis.report import (
    figure2_report,
    figure3_report,
    headline_report,
    report_from_store,
    table_report,
)
from repro.analysis.tables import format_table

__all__ = [
    "ascii_bars",
    "figure2_report",
    "figure3_report",
    "format_table",
    "headline_report",
    "load_plan",
    "load_profile",
    "log_bars",
    "miss_curves_to_csv",
    "profile_from_payload",
    "profile_to_payload",
    "report_from_store",
    "save_plan",
    "save_profile",
    "table_report",
]
