"""ASCII bar charts -- textual stand-ins for the paper's figures."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["ascii_bars", "log_bars"]


def ascii_bars(
    series: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Linear-scale horizontal bars."""
    peak = max((value for _n, value in series), default=0.0)
    out: List[str] = [title] if title else []
    label_width = max((len(name) for name, _v in series), default=0)
    for name, value in series:
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        out.append(f"{name.ljust(label_width)} |{bar} {value:,.0f}")
    return "\n".join(out)


def log_bars(
    series: Sequence[Tuple[str, float, float]],
    width: int = 40,
    title: str = "",
    labels: Tuple[str, str] = ("shared", "partitioned"),
) -> str:
    """Paired log-scale bars (the Figure 2 shape: log miss counts)."""
    floor = 1.0
    peak = max(
        (max(a, b) for _n, a, b in series), default=floor
    )
    span = math.log10(max(peak, 10.0) / floor)
    out: List[str] = [title] if title else []
    label_width = max((len(name) for name, _a, _b in series), default=0)

    def bar(value: float, char: str) -> str:
        if value <= floor:
            return ""
        length = int(round(width * math.log10(value / floor) / span))
        return char * max(1, length)

    for name, shared, part in series:
        out.append(f"{name.ljust(label_width)} {labels[0][:5]:>5} "
                   f"|{bar(shared, '#')} {shared:,.0f}")
        out.append(f"{''.ljust(label_width)} {labels[1][:5]:>5} "
                   f"|{bar(part, '=')} {part:,.0f}")
    return "\n".join(out)
