"""Persistence of profiling results and partition plans.

Profiling sweeps are the expensive step of the method (one simulation
per candidate size).  These helpers serialise a
:class:`~repro.core.profiling.ProfileResult` and a
:class:`~repro.core.allocation.PartitionPlan` to JSON so a profile can
be measured once and re-optimized under many policies/solvers, and
dump miss curves to CSV for external plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.core.allocation import PartitionPlan
from repro.core.misscurve import MissCurve
from repro.core.profiling import ProfileResult

__all__ = [
    "load_plan",
    "load_profile",
    "miss_curves_to_csv",
    "profile_from_payload",
    "profile_to_payload",
    "save_plan",
    "save_profile",
]

_PathLike = Union[str, Path]


def profile_to_payload(profile: ProfileResult) -> dict:
    """The JSON-serialisable form of a profile.

    Repeated samples at one size keep their measurement order (sorted
    by size only, stably), so the round-trip reproduces sample means
    bit-for-bit -- float summation order matters to the persistent
    profile cache's identical-payload guarantee.
    """
    return {
        "sizes": profile.sizes,
        "curves": {
            owner: [
                [units, value]
                for units in curve.sizes
                for value in curve._samples[units]
            ]
            for owner, curve in profile.curves.items()
        },
        "accesses": {
            owner: {str(units): value for units, value in by_size.items()}
            for owner, by_size in profile.accesses.items()
        },
        "instructions": profile.instructions,
    }


def profile_from_payload(payload: dict) -> ProfileResult:
    """Inverse of :func:`profile_to_payload`."""
    profile = ProfileResult(sizes=list(payload["sizes"]))
    for owner, pairs in payload["curves"].items():
        profile.curves[owner] = MissCurve.from_pairs(owner, pairs)
    for owner, by_size in payload["accesses"].items():
        profile.accesses[owner] = {
            int(units): value for units, value in by_size.items()
        }
    profile.instructions = dict(payload["instructions"])
    return profile


def save_profile(profile: ProfileResult, path: _PathLike) -> Path:
    """Serialise a profile (curves, accesses, instructions) to JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(profile_to_payload(profile), indent=1, sort_keys=True)
    )
    return path


def load_profile(path: _PathLike) -> ProfileResult:
    """Inverse of :func:`save_profile`."""
    return profile_from_payload(json.loads(Path(path).read_text()))


def save_plan(plan: PartitionPlan, path: _PathLike) -> Path:
    """Serialise a partition plan to JSON."""
    payload = {
        "units_by_owner": plan.units_by_owner,
        "total_units": plan.total_units,
        "predicted_misses": plan.predicted_misses,
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_plan(path: _PathLike) -> PartitionPlan:
    """Inverse of :func:`save_plan`."""
    payload = json.loads(Path(path).read_text())
    return PartitionPlan(
        units_by_owner=dict(payload["units_by_owner"]),
        total_units=int(payload["total_units"]),
        predicted_misses=payload.get("predicted_misses"),
    )


def miss_curves_to_csv(profile: ProfileResult, path: _PathLike) -> Path:
    """Dump mean miss curves as ``owner,units,misses`` rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("owner", "units", "misses"))
        for owner in sorted(profile.curves):
            for units, misses in profile.curves[owner].monotone_means():
                writer.writerow((owner, units, f"{misses:.1f}"))
    return path
