"""Experiment artifact assembly.

These functions turn a :class:`~repro.core.method.MethodReport` into the
textual equivalents of the paper's evaluation artifacts; the benchmark
harness prints them and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.charts import log_bars
from repro.analysis.tables import format_table
from repro.core.method import MethodReport, format_reduction_factor

__all__ = [
    "figure2_report",
    "figure3_report",
    "headline_report",
    "report_from_store",
    "table_report",
]


def table_report(report: MethodReport, title: str) -> str:
    """The Tables 1/2 shape: allocated units per task, then per region.

    Unit counts are directly comparable to the paper's set counts (one
    unit = one allocatable set group).
    """
    task_rows = report.plan.task_rows()
    data_rows = report.plan.data_rows()
    buffer_rows = sorted(report.plan.buffer_rows())
    sections = [
        format_table(("task", "alloc. L2 units"), task_rows,
                     title=f"{title} -- tasks"),
        format_table(("data region", "alloc. L2 units"), data_rows,
                     title=f"{title} -- shared static data"),
        format_table(("buffer", "alloc. L2 units"), buffer_rows,
                     title=f"{title} -- communication buffers (policy-sized)"),
        (
            f"total allocated: {report.plan.used_units} of "
            f"{report.plan.total_units} units"
        ),
    ]
    return "\n\n".join(sections)


def figure2_report(report: MethodReport, title: str) -> str:
    """Figure 2: per-item misses, shared vs best-partitioned (log)."""
    series: List[Tuple[str, float, float]] = []
    for item in report.items + sorted(
        name for name in report.partitioned_metrics.l2_by_owner
        if name.startswith(("fifo:", "frame:"))
    ):
        shared = report.shared_metrics.misses_of(item)
        part = report.partitioned_metrics.misses_of(item)
        series.append((item, shared, part))
    chart = log_bars(series, title=f"{title}: misses shared(#) vs partitioned(=)")
    totals = (
        f"total: {report.shared_metrics.l2_misses:,} shared vs "
        f"{report.partitioned_metrics.l2_misses:,} partitioned "
        f"({format_reduction_factor(report.miss_reduction_factor)} fewer)"
    )
    return f"{chart}\n{totals}"


def figure3_report(report: MethodReport, title: str) -> str:
    """Figure 3: expected vs simulated misses per optimized item."""
    rows = [
        (
            name,
            int(round(expected)),
            simulated,
            f"{abs(expected - simulated) / max(1, report.compositionality.total_simulated):.2%}",
        )
        for name, expected, simulated in report.compositionality.rows
    ]
    table = format_table(
        ("item", "expected", "simulated", "|diff|/total"),
        rows,
        title=f"{title}: expected vs simulated misses",
    )
    verdict = (
        f"max relative difference: "
        f"{report.compositionality.max_relative_difference:.2%} "
        f"(paper bound: 2%) -> "
        f"{'compositional' if report.compositionality.is_compositional() else 'NOT compositional'}"
    )
    return f"{table}\n{verdict}"


def _store_cell(column: str, value) -> str:
    """Render one result-store table cell for the text report."""
    if value is None:
        return "-"
    if column.endswith("miss_rate") or column in (
        "cpi_improvement", "compositionality"
    ):
        return f"{value:.2%}"
    if column == "miss_reduction_factor":
        return format_reduction_factor(value)
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, list):
        return str(value)
    return str(value)


def report_from_store(
    store,
    title: str = "experiments",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render a :class:`~repro.exp.store.ResultStore` as a text table.

    One row per record, with the sweep axes and headline metrics; the
    tables/figures of the paper-style reports render straight from a
    store instead of per-run report objects.  ``columns`` defaults to
    :attr:`~repro.exp.store.ResultStore.DEFAULT_COLUMNS`.
    """
    header, rows = store.to_table(columns)
    rendered = [
        [_store_cell(column, value) for column, value in zip(header, row)]
        for row in rows
    ]
    table = format_table(tuple(header), rendered,
                         title=f"{title} ({len(rows)} scenarios)")
    set_records = [r for r in store if r.mode == "set"]
    if set_records:
        worst = max(
            (r.compositionality_max_rel_diff or 0.0) for r in set_records
        )
        table += (
            f"\nworst compositionality difference across the sweep: "
            f"{worst:.2%} (paper bound: 2%)"
        )
    return table


def headline_report(report: MethodReport) -> str:
    """The §5 in-text numbers for one application."""
    rows = [
        ("L2 miss rate", f"{report.shared_miss_rate:.2%}",
         f"{report.partitioned_miss_rate:.2%}"),
        ("L2 misses", f"{report.shared_metrics.l2_misses:,}",
         f"{report.partitioned_metrics.l2_misses:,}"),
        ("miss reduction", "1.00x",
         format_reduction_factor(report.miss_reduction_factor)),
        ("mean CPI", f"{report.shared_metrics.mean_cpi:.3f}",
         f"{report.partitioned_metrics.mean_cpi:.3f}"),
        ("CPI improvement", "-", f"{report.cpi_improvement:.1%}"),
        ("cross-owner evictions", f"{report.shared_metrics.l2_cross_evictions:,}",
         f"{report.partitioned_metrics.l2_cross_evictions:,}"),
    ]
    return format_table(
        ("metric", "shared", "partitioned"),
        rows,
        title=f"headline metrics -- {report.app_name}",
    )
