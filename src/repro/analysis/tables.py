"""Plain-text table rendering."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as a boxed monospace table.

    ``aligns`` is a string per column: ``"l"`` or ``"r"`` (default:
    first column left, the rest right).
    """
    columns = len(headers)
    if aligns is None:
        aligns = ["l"] + ["r"] * (columns - 1)
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} != {columns} cells")
        cells.append([_fmt(value) for value in row])
    widths = [max(len(r[c]) for r in cells) for c in range(columns)]

    def line(row: Sequence[str]) -> str:
        parts = []
        for c, value in enumerate(row):
            if aligns[c] == "l":
                parts.append(value.ljust(widths[c]))
            else:
                parts.append(value.rjust(widths[c]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(cells[0]))
    out.append(separator)
    out.extend(line(r) for r in cells[1:])
    out.append(separator)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
