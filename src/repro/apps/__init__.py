"""Workloads.

- :mod:`repro.apps.synthetic` -- parameterised pipelines and traffic
  generators used by tests, examples and ablations.
- :mod:`repro.apps.jpeg` -- the JPEG decoder task graph of [1]
  (FrontEnd, IDCT, Raster, BackEnd).
- :mod:`repro.apps.canny` -- the line-based Canny edge detector
  (FrontEnd, LowPass, HorizSobel, VertSobel, HorizNMS, VertNMS,
  MaxTreshold -- the paper's spelling).
- :mod:`repro.apps.mpeg2` -- the 13-task parallel MPEG-2 decoder of
  [11] (input, vld, hdr, isiq, memMan, idct, add, decMV, predict,
  predictRD, writeMB, store, output).
- :mod:`repro.apps.workloads` -- the paper's two evaluation
  applications assembled: ``two_jpeg_canny_workload()`` (15 tasks) and
  ``mpeg2_workload()`` (13 tasks).
"""

from repro.apps.workloads import (
    mpeg2_workload,
    two_jpeg_canny_workload,
)

__all__ = ["mpeg2_workload", "two_jpeg_canny_workload"]
