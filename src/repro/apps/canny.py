"""Line-based Canny edge detection task graph (7 tasks).

The paper's first application runs one "line based canny edge detection
algorithm" next to the two JPEG decoders.  Its Table 1 names the tasks:

``Fr. canny -> LowPass -> HorizSobel -> VertSobel -> HorizNMS ->
VertNMS -> MaxTreshold``  (the paper's spelling of *Treshold*)

Memory behaviour per stage (all line-based, one strip of rows per
token):

- **Fr.canny** streams the source picture out of its frame buffer into
  line tokens -- a pure streamer with a small private footprint.
- **LowPass** is a 5x5 Gaussian over 4-byte intermediate rows: the
  largest sliding window of the chain, hence the paper's largest canny
  allocation.
- **HorizSobel / VertSobel** are 3x3 gradient operators over 2-byte
  rows; VertSobel additionally maintains the gradient-direction rows
  used later by NMS, doubling its live window.
- **HorizNMS / VertNMS** perform non-maximum suppression reading the
  gradient and direction windows.
- **MaxTreshold** does the final hysteresis thresholding with a
  histogram table, writing the edge map to the output frame buffer.
"""

from __future__ import annotations

from repro.kpn.graph import FifoSpec, FrameBufferSpec, ProcessNetwork, TaskSpec
from repro.kpn.process import TaskContext

__all__ = ["add_canny_detector"]

#: Rows per strip token.
STRIP_ROWS = 8


def _strips(params: dict) -> int:
    return max(1, params["height"] // STRIP_ROWS)


def frontend_program(ctx: TaskContext):
    """Stream the source picture into line-strip tokens."""
    p = ctx.params
    width = p["width"]
    src = ctx.frame(p["input_frame"])
    strip_bytes = width * STRIP_ROWS
    for frame in range(p["frames"]):
        for strip in range(_strips(p)):
            offset = (
                (frame * _strips(p) + strip) * strip_bytes
            ) % max(1, src.size - strip_bytes)
            yield ctx.compute(
                ctx.fetch(width * 4, loop_bytes=1024),
                ctx.stream(src, offset, strip_bytes, elem=4),
                ctx.stream(ctx.stack, 0, 256, write=True),
                label="read-picture",
            )
            yield ctx.write("out")


def lowpass_program(ctx: TaskContext):
    """5x5 Gaussian smoothing over 2-byte intermediate rows."""
    p = ctx.params
    width = p["width"]
    row_stride = width * 2
    for _ in range(p["frames"] * _strips(p)):
        yield ctx.read("in")
        yield ctx.compute(
            ctx.fetch(width * 6, loop_bytes=1536),
            ctx.stencil(src=ctx.heap, dst=ctx.bss, row_stride=row_stride,
                        width=width, rows=STRIP_ROWS, taps_x=5, taps_y=5,
                        elem=2),
            label="gauss5x5",
        )
        yield ctx.write("out")


def sobel_program(ctx: TaskContext):
    """3x3 Sobel gradient; VertSobel keeps direction rows too."""
    p = ctx.params
    width = p["width"]
    row_stride = width
    extra_window = p.get("direction_rows", False)
    for _ in range(p["frames"] * _strips(p)):
        yield ctx.read("in")
        batches = [
            ctx.fetch(width * 5, loop_bytes=1280),
            ctx.stencil(src=ctx.heap, dst=ctx.bss, row_stride=row_stride,
                        width=width, rows=STRIP_ROWS, taps_x=3, taps_y=3,
                        elem=1),
        ]
        if extra_window:
            # Gradient-direction rows: second window of the same shape.
            batches.append(
                ctx.stencil(src=ctx.data, dst=ctx.bss, row_stride=row_stride,
                            width=width, rows=STRIP_ROWS, taps_x=3, taps_y=3,
                            elem=1)
            )
        yield ctx.compute(*batches, label="sobel3x3")
        yield ctx.write("out")


def nms_program(ctx: TaskContext):
    """Non-maximum suppression over gradient + direction windows."""
    p = ctx.params
    width = p["width"]
    row_stride = width
    for _ in range(p["frames"] * _strips(p)):
        yield ctx.read("in")
        yield ctx.compute(
            ctx.fetch(width * 4, loop_bytes=1024),
            ctx.stencil(src=ctx.heap, dst=ctx.bss, row_stride=row_stride,
                        width=width, rows=STRIP_ROWS, taps_x=3, taps_y=1,
                        elem=1),
            ctx.stream(ctx.data, 0, min(width, ctx.data.size)),
            label="nms",
        )
        yield ctx.write("out")


def threshold_program(ctx: TaskContext):
    """Hysteresis thresholding with a histogram; writes the edge map."""
    p = ctx.params
    width = p["width"]
    dst = ctx.frame(p["output_frame"])
    strip_bytes = width * STRIP_ROWS
    hist_bytes = min(2048, ctx.bss.size)
    for frame in range(p["frames"]):
        for strip in range(_strips(p)):
            yield ctx.read("in")
            offset = (strip * strip_bytes) % max(1, dst.size - strip_bytes)
            yield ctx.compute(
                ctx.fetch(width * 4, loop_bytes=1024),
                ctx.table(ctx.bss, n=width, entry_bytes=8,
                          table_bytes=hist_bytes, skew=1.1),
                ctx.stream(dst, offset, strip_bytes, write=True),
                ctx.table(ctx.shared("appl.data"), n=8, entry_bytes=32,
                          table_bytes=512),
                label="threshold",
            )


def add_canny_detector(
    network: ProcessNetwork,
    width: int,
    height: int,
    frames: int = 1,
) -> None:
    """Add the 7-task Canny chain with the paper's task names."""
    params = {"width": width, "height": height, "frames": frames}
    network.add_frame_buffer(FrameBufferSpec(
        "canny_in", max(16 * 1024, width * height),
        window_bytes=width * STRIP_ROWS,
    ))
    network.add_frame_buffer(FrameBufferSpec(
        "canny_out", max(16 * 1024, width * height),
        window_bytes=width * STRIP_ROWS,
    ))

    # Window sizes drive each task's private footprint: the heap holds
    # the live source window, data/bss the secondary rows.  Rows are
    # 2-byte smoothed values for LowPass and 1-byte gradient magnitudes
    # afterwards, which keeps every stage inside its paper allocation.
    gauss_window = (STRIP_ROWS + 5) * width * 2
    sobel_window = (STRIP_ROWS + 3) * width
    nms_window = (STRIP_ROWS + 1) * width

    network.add_task(TaskSpec(
        name="Fr.canny", program=frontend_program,
        params=dict(params, input_frame="canny_in"),
        code_bytes=4 * 1024, data_bytes=1024, bss_bytes=1024,
        stack_bytes=2 * 1024, heap_bytes=2 * 1024,
    ))
    network.add_task(TaskSpec(
        name="LowPass", program=lowpass_program, params=dict(params),
        code_bytes=4 * 1024, data_bytes=1024,
        bss_bytes=STRIP_ROWS * width * 2,
        stack_bytes=2 * 1024, heap_bytes=gauss_window,
    ))
    network.add_task(TaskSpec(
        name="HorizSobel", program=sobel_program, params=dict(params),
        code_bytes=4 * 1024, data_bytes=1024,
        bss_bytes=STRIP_ROWS * width,
        stack_bytes=2 * 1024, heap_bytes=sobel_window,
    ))
    network.add_task(TaskSpec(
        name="VertSobel", program=sobel_program,
        params=dict(params, direction_rows=True),
        code_bytes=4 * 1024, data_bytes=sobel_window,
        bss_bytes=STRIP_ROWS * width,
        stack_bytes=2 * 1024, heap_bytes=sobel_window,
    ))
    network.add_task(TaskSpec(
        name="HorizNMS", program=nms_program, params=dict(params),
        code_bytes=4 * 1024, data_bytes=width,
        bss_bytes=STRIP_ROWS * width,
        stack_bytes=2 * 1024, heap_bytes=nms_window,
    ))
    network.add_task(TaskSpec(
        name="VertNMS", program=nms_program, params=dict(params),
        code_bytes=4 * 1024, data_bytes=width,
        bss_bytes=STRIP_ROWS * width,
        stack_bytes=2 * 1024, heap_bytes=nms_window,
    ))
    network.add_task(TaskSpec(
        name="MaxTreshold", program=threshold_program,
        params=dict(params, output_frame="canny_out"),
        code_bytes=4 * 1024, data_bytes=1024, bss_bytes=2 * 1024,
        stack_bytes=2 * 1024, heap_bytes=2 * 1024,
    ))

    strip_token = width * STRIP_ROWS  # one strip of 1-byte pixels
    chain = [
        ("Fr.canny", "LowPass", "cny_raw"),
        ("LowPass", "HorizSobel", "cny_smooth"),
        ("HorizSobel", "VertSobel", "cny_gx"),
        ("VertSobel", "HorizNMS", "cny_gxy"),
        ("HorizNMS", "VertNMS", "cny_nms1"),
        ("VertNMS", "MaxTreshold", "cny_nms2"),
    ]
    for producer, consumer, fifo_name in chain:
        network.add_fifo(FifoSpec(
            name=fifo_name, producer=producer, producer_port="out",
            consumer=consumer, consumer_port="in",
            token_bytes=strip_token, capacity_tokens=2,
        ))
