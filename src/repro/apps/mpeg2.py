"""Parallel MPEG-2 video decoder task graph (13 tasks).

The paper's second application is the MPEG-2 decoder case study of van
der Wolf et al. (CODES'99 -- reference [11]).  Table 2 names 13 tasks:

``input, vld, hdr, isiq, memMan, idct, add, decMV, predict, predictRD,
writeMB, store, output``

The network wired here follows the natural decoder dataflow:

- **input** streams the bitstream from its buffer into chunks;
- **vld** does variable-length decoding (Zipf table lookups), feeding
  headers to **hdr**, coefficient blocks to **isiq** and motion codes
  to **decMV**;
- **hdr** parses sequence/picture state (quant matrices, GOP state --
  the paper gives it a surprisingly large partition, so the state is
  sizeable) and informs **memMan**, the frame-buffer manager;
- **isiq** (inverse scan + inverse quantisation) and **idct** transform
  coefficient blocks; the spatial path continues to **add**;
- **decMV** reconstructs motion vectors for **predict**, which gathers
  motion-compensated reference blocks from the reference frame buffer
  (the heavy reader of the decoder); **predictRD** coordinates the
  reference reads (light);
- **add** sums residual + prediction, **writeMB** stores macroblocks
  into the reconstruction frame, **store** copies finished pictures to
  the display buffer and **output** streams them out.

Work is expressed per *macroblock row* (16 pixel rows).
"""

from __future__ import annotations

import numpy as np

from repro.kpn.graph import FifoSpec, FrameBufferSpec, ProcessNetwork, TaskSpec
from repro.kpn.process import TaskContext
from repro.mem.trace import AccessBatch

__all__ = ["add_mpeg2_decoder"]

#: Pixel rows per macroblock row.
MB_ROWS = 16


def _mb_rows(params: dict) -> int:
    return max(1, params["height"] // MB_ROWS)


def _mbs_per_row(params: dict) -> int:
    return max(1, params["width"] // 16)


def input_program(ctx: TaskContext):
    """Stream the bitstream buffer into chunk tokens."""
    p = ctx.params
    src = ctx.frame("mpeg_bitstream")
    chunk = p["width"] * MB_ROWS // 6  # ~0.17 byte/pixel compressed
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            offset = (
                (frame * _mb_rows(p) + row) * chunk
            ) % max(1, src.size - chunk)
            yield ctx.compute(
                ctx.fetch(chunk // 2, loop_bytes=768),
                ctx.stream(src, offset, chunk, elem=4),
                label="read-bitstream",
            )
            yield ctx.write("bits_out")


def vld_program(ctx: TaskContext):
    """Variable-length decode: Zipf-hot Huffman tables."""
    p = ctx.params
    table_bytes = min(5 * 1024, ctx.bss.size)
    lookups = p["width"] * 3
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            yield ctx.read("bits_in")
            yield ctx.compute(
                ctx.fetch(lookups * 3, loop_bytes=2048),
                ctx.table(ctx.bss, n=lookups, entry_bytes=16,
                          table_bytes=table_bytes, skew=1.3),
                ctx.stream(ctx.stack, 0, 512, write=True),
                label="vld",
            )
            if row == 0:
                yield ctx.write("hdr_out")
            yield ctx.write("coef_out")
            yield ctx.write("mv_out")


def hdr_program(ctx: TaskContext):
    """Header parsing: sequence/picture state and quant matrices."""
    p = ctx.params
    state_bytes = min(p.get("hdr_state_bytes", 28 * 1024), ctx.heap.size)
    for frame in range(p["frames"]):
        yield ctx.read("hdr_in")
        yield ctx.compute(
            ctx.fetch(4000, loop_bytes=2048),
            ctx.stream(ctx.heap, 0, state_bytes),
            ctx.stream(ctx.heap, 0, state_bytes // 2, write=True),
            ctx.table(ctx.shared("appl.data"), n=64, entry_bytes=32,
                      table_bytes=2048),
            label="parse-headers",
        )
        yield ctx.write("pic_out")


def memman_program(ctx: TaskContext):
    """Frame-buffer manager: tiny control structures."""
    p = ctx.params
    for frame in range(p["frames"]):
        yield ctx.read("pic_in")
        yield ctx.compute(
            ctx.fetch(600, loop_bytes=512),
            ctx.stream(ctx.heap, 0, min(512, ctx.heap.size), write=True),
            label="manage-frames",
        )
        for _ in range(_mb_rows(p)):
            yield ctx.write("fbinfo_out")


def isiq_program(ctx: TaskContext):
    """Inverse scan + inverse quantisation of coefficient blocks."""
    p = ctx.params
    mbs = _mbs_per_row(p)
    matrices = min(p.get("isiq_state_bytes", 12 * 1024), ctx.heap.size)
    for _ in range(p["frames"] * _mb_rows(p)):
        yield ctx.read("coef_in")
        yield ctx.compute(
            ctx.fetch(mbs * 700, loop_bytes=1792),
            ctx.stream(ctx.heap, 0, matrices),
            ctx.table(ctx.heap, n=mbs * 64, entry_bytes=4,
                      table_bytes=matrices // 2),
            label="isiq",
        )
        yield ctx.write("dct_out")


def idct_program(ctx: TaskContext):
    """8x8 IDCT per block, reused block buffer + tables."""
    p = ctx.params
    mbs = _mbs_per_row(p)
    blocks = mbs * 6  # 4:2:0 macroblock = 6 blocks
    const_bytes = min(4 * 1024, ctx.data.size)
    block_buf = min(512, ctx.heap.size)
    for _ in range(p["frames"] * _mb_rows(p)):
        yield ctx.read("dct_in")
        per_block = AccessBatch.concat([
            ctx.stream(ctx.data, 0, const_bytes, elem=16),
            ctx.stream(ctx.heap, 0, block_buf, elem=4),
            ctx.stream(ctx.heap, 0, block_buf, elem=4, write=True),
        ])
        yield ctx.compute(
            ctx.fetch(blocks * 150, loop_bytes=1536),
            AccessBatch(
                addrs=np.tile(per_block.addrs, blocks),
                writes=np.tile(per_block.writes, blocks),
                instructions=blocks * 600,
            ),
            label="idct",
        )
        yield ctx.write("residual_out")


def decmv_program(ctx: TaskContext):
    """Motion-vector reconstruction with per-row predictor arrays."""
    p = ctx.params
    mbs = _mbs_per_row(p)
    mv_state = min(p.get("mv_state_bytes", 11 * 1024), ctx.heap.size)
    for _ in range(p["frames"] * _mb_rows(p)):
        yield ctx.read("mv_in")
        yield ctx.compute(
            ctx.fetch(mbs * 120, loop_bytes=1024),
            ctx.stream(ctx.heap, 0, mv_state),
            ctx.stream(ctx.heap, 0, mv_state // 2, write=True),
            label="decode-mv",
        )
        yield ctx.write("vectors_out")


def predict_program(ctx: TaskContext):
    """Motion compensation: gather reference blocks, interpolate.

    B-frame style bidirectional prediction: every macroblock fetches a
    17x17 block from *both* reference frames, and half-pel
    interpolation makes two passes over each fetched block (horizontal
    + vertical filter).  The motion vectors spread around the current
    macroblock row, so consecutive rows re-read overlapping reference
    rows -- reuse that survives in an adequately sized partition but is
    washed out of a shared cache between rows.
    """
    p = ctx.params
    mbs = _mbs_per_row(p)
    width = p["width"]
    refs = (ctx.frame("mpeg_ref0"), ctx.frame("mpeg_ref1"))
    interp = min(p.get("interp_bytes", 24 * 1024), ctx.heap.size)
    row_stride = width
    max_y = p["ref_height"] - 17
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            yield ctx.read("vectors_in")
            yield ctx.read("refsel_in")
            base_y = min(row * MB_ROWS, max_y)
            spread = 8
            ys = ctx.rng.integers(
                max(0, base_y - spread), min(max_y, base_y + spread) + 1,
                size=mbs,
            )
            xs = ctx.rng.integers(0, max(1, width - 17), size=mbs)
            positions = list(zip(xs, ys))
            fwd = ctx.gather(refs[0], row_stride, positions, 17, 17)
            bwd = ctx.gather(refs[1], row_stride, positions, 17, 17)
            yield ctx.compute(
                ctx.fetch(mbs * 900, loop_bytes=2048),
                # Three filter passes per reference: horizontal,
                # vertical and the bidirectional average.
                fwd, fwd, fwd, bwd, bwd, bwd,
                ctx.stream(ctx.heap, 0, interp, write=True),
                ctx.stream(ctx.heap, 0, interp, elem=16),
                label="motion-comp",
            )
            yield ctx.write("pred_out")


def predictrd_program(ctx: TaskContext):
    """Reference-read coordinator: light bookkeeping."""
    p = ctx.params
    for _ in range(p["frames"] * _mb_rows(p)):
        yield ctx.read("fbinfo_in")
        yield ctx.compute(
            ctx.fetch(300, loop_bytes=512),
            ctx.stream(ctx.heap, 0, min(1024, ctx.heap.size), write=True),
            label="ref-read",
        )
        yield ctx.write("refsel_out")


def add_program(ctx: TaskContext):
    """Residual + prediction summation through line staging."""
    p = ctx.params
    width = p["width"]
    staging = min(2 * width * 4, ctx.heap.size)
    for _ in range(p["frames"] * _mb_rows(p)):
        yield ctx.read("residual_in")
        yield ctx.read("pred_in")
        yield ctx.compute(
            ctx.fetch(width * 8, loop_bytes=1280),
            ctx.stream(ctx.heap, 0, staging),
            ctx.stream(ctx.heap, 0, staging, write=True),
            label="add",
        )
        yield ctx.write("recon_out")


def writemb_program(ctx: TaskContext):
    """Store reconstructed macroblocks into the recon frame."""
    p = ctx.params
    width = p["width"]
    recon = ctx.frame("mpeg_recon")
    staging = min(p.get("writemb_bytes", 11 * 1024), ctx.heap.size)
    mb_row_bytes = width * MB_ROWS
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            yield ctx.read("recon_in")
            offset = (row * mb_row_bytes) % max(1, recon.size - mb_row_bytes)
            yield ctx.compute(
                ctx.fetch(width * 6, loop_bytes=1024),
                ctx.stream(ctx.heap, 0, staging),
                ctx.stream(recon, offset, mb_row_bytes, write=True),
                label="write-mb",
            )
            yield ctx.write("done_out")


def store_program(ctx: TaskContext):
    """Copy the finished picture into the display buffer."""
    p = ctx.params
    width = p["width"]
    recon = ctx.frame("mpeg_recon")
    display = ctx.frame("mpeg_display")
    mb_row_bytes = width * MB_ROWS
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            yield ctx.read("done_in")
            offset = (row * mb_row_bytes) % max(1, recon.size - mb_row_bytes)
            yield ctx.compute(
                ctx.fetch(width * 2, loop_bytes=512),
                ctx.stream(recon, offset, mb_row_bytes),
                ctx.stream(display, offset, mb_row_bytes, write=True),
                label="store",
            )
            yield ctx.write("frame_out")


def output_program(ctx: TaskContext):
    """Stream the display buffer out of the system."""
    p = ctx.params
    width = p["width"]
    display = ctx.frame("mpeg_display")
    mb_row_bytes = width * MB_ROWS
    for frame in range(p["frames"]):
        for row in range(_mb_rows(p)):
            yield ctx.read("frame_in")
            offset = (row * mb_row_bytes) % max(1, display.size - mb_row_bytes)
            yield ctx.compute(
                ctx.fetch(width, loop_bytes=512),
                ctx.stream(display, offset, mb_row_bytes, elem=8),
                label="output",
            )


def add_mpeg2_decoder(
    network: ProcessNetwork,
    width: int = 352,
    height: int = 48,
    ref_height: int = 288,
    frames: int = 1,
) -> None:
    """Add the 13-task MPEG-2 decoder.

    ``height`` is the processed slice per frame (rows actually decoded,
    keeping runs short); ``ref_height`` sizes the reference/display
    frame buffers to the real picture height so motion compensation
    spreads over a realistic address range.
    """
    params = {
        "width": width,
        "height": height,
        "ref_height": ref_height,
        "frames": frames,
    }
    frame_bytes = max(16 * 1024, width * ref_height)
    # Reference frames are re-read by motion compensation across the
    # whole frame (and across frames -- the same references serve many
    # predictions), so their live window is the full frame: at CIF
    # size a reference fits a partition, which is what makes the
    # decoder's partitioned miss rate collapse.  Reconstruction and
    # display are written/copied strip-wise; their window is a strip.
    mc_window = frame_bytes
    strip_window = min(frame_bytes, MB_ROWS * width)
    network.add_frame_buffer(FrameBufferSpec(
        "mpeg_bitstream", max(32 * 1024, width * ref_height // 2),
        window_bytes=4 * 1024))
    network.add_frame_buffer(FrameBufferSpec(
        "mpeg_ref0", frame_bytes, window_bytes=mc_window))
    network.add_frame_buffer(FrameBufferSpec(
        "mpeg_ref1", frame_bytes, window_bytes=mc_window))
    network.add_frame_buffer(FrameBufferSpec(
        "mpeg_recon", frame_bytes, window_bytes=strip_window))
    network.add_frame_buffer(FrameBufferSpec(
        "mpeg_display", frame_bytes, window_bytes=strip_window))

    mbs = max(1, width // 16)
    specs = [
        TaskSpec("input", input_program, params=dict(params),
                 code_bytes=3 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=2 * 1024),
        TaskSpec("vld", vld_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=512, bss_bytes=5 * 1024,
                 stack_bytes=1024, heap_bytes=512),
        TaskSpec("hdr", hdr_program, params=dict(params),
                 code_bytes=3 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=26 * 1024),
        TaskSpec("isiq", isiq_program, params=dict(params),
                 code_bytes=3 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=1024, heap_bytes=11 * 1024),
        TaskSpec("memMan", memman_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=1024),
        TaskSpec("idct", idct_program, params=dict(params),
                 code_bytes=4 * 1024, data_bytes=4 * 1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=1024),
        TaskSpec("add", add_program, params=dict(params),
                 code_bytes=3 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=2 * width * 4),
        TaskSpec("decMV", decmv_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=1024, heap_bytes=11 * 1024),
        TaskSpec("predict", predict_program, params=dict(params),
                 code_bytes=3 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=1024, heap_bytes=24 * 1024),
        TaskSpec("predictRD", predictrd_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=2 * 1024),
        TaskSpec("writeMB", writemb_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=1024, heap_bytes=11 * 1024),
        TaskSpec("store", store_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=2 * 1024),
        TaskSpec("output", output_program, params=dict(params),
                 code_bytes=2 * 1024, data_bytes=1024, bss_bytes=1024,
                 stack_bytes=2 * 1024, heap_bytes=1024),
    ]
    for spec in specs:
        network.add_task(spec)

    mb_rows = max(1, height // MB_ROWS)
    chunk = width * MB_ROWS // 6
    # Coefficient/residual tokens carry only the coded blocks of a
    # macroblock row (~half the blocks of 4:2:0 material are coded).
    coef_token = mbs * 384
    fifos = [
        # name, producer, pport, consumer, cport, token_bytes, capacity
        ("m2_bits", "input", "bits_out", "vld", "bits_in", chunk, 2),
        ("m2_hdr", "vld", "hdr_out", "hdr", "hdr_in", 256, 2),
        ("m2_coef", "vld", "coef_out", "isiq", "coef_in", coef_token, 2),
        ("m2_mv", "vld", "mv_out", "decMV", "mv_in", mbs * 16, 2),
        ("m2_pic", "hdr", "pic_out", "memMan", "pic_in", 128, 2),
        ("m2_fbinfo", "memMan", "fbinfo_out", "predictRD", "fbinfo_in",
         64, max(2, mb_rows)),
        ("m2_dct", "isiq", "dct_out", "idct", "dct_in", coef_token, 2),
        ("m2_vec", "decMV", "vectors_out", "predict", "vectors_in",
         mbs * 16, 2),
        ("m2_refsel", "predictRD", "refsel_out", "predict", "refsel_in",
         64, 2),
        ("m2_res", "idct", "residual_out", "add", "residual_in",
         coef_token, 2),
        ("m2_pred", "predict", "pred_out", "add", "pred_in", mbs * 192, 2),
        ("m2_recon", "add", "recon_out", "writeMB", "recon_in",
         mbs * 192, 2),
        ("m2_done", "writeMB", "done_out", "store", "done_in", 64, 2),
        ("m2_frame", "store", "frame_out", "output", "frame_in", 64, 2),
    ]
    for name, producer, pport, consumer, cport, token, capacity in fifos:
        network.add_fifo(FifoSpec(
            name=name, producer=producer, producer_port=pport,
            consumer=consumer, consumer_port=cport,
            token_bytes=token, capacity_tokens=capacity,
        ))
