"""Parameterised synthetic workloads.

These generic programs cover the archetypes of multimedia tasks --
sources, filters and sinks with tunable working sets, streaming volumes
and table-lookup behaviour.  They are used by unit/integration tests,
the granularity and FIFO-policy ablations, and the custom-application
example.
"""

from __future__ import annotations

from typing import Optional

from repro.kpn.graph import FifoSpec, FrameBufferSpec, ProcessNetwork, TaskSpec
from repro.kpn.process import TaskContext

__all__ = [
    "filter_program",
    "make_pipeline",
    "sink_program",
    "source_program",
    "table_walker_program",
]


def source_program(ctx: TaskContext):
    """Produce ``n_tokens`` tokens, touching a private working set.

    Params: ``n_tokens``, ``work_bytes`` (private working set per
    token), ``instr`` (instructions per token).
    """
    n_tokens = ctx.params["n_tokens"]
    work_bytes = ctx.params.get("work_bytes", 2048)
    instr = ctx.params.get("instr", 2000)
    work_bytes = min(work_bytes, ctx.heap.size)
    for _ in range(n_tokens):
        yield ctx.compute(
            ctx.fetch(instr),
            ctx.stream(ctx.heap, 0, work_bytes, write=True),
            label="generate",
        )
        yield ctx.write("out")


def filter_program(ctx: TaskContext):
    """Consume one token, work on a private working set, produce one.

    Params: ``n_tokens``, ``work_bytes``, ``instr``, optional
    ``reread`` (extra passes over the working set, raising reuse).
    """
    n_tokens = ctx.params["n_tokens"]
    work_bytes = min(ctx.params.get("work_bytes", 4096), ctx.heap.size)
    instr = ctx.params.get("instr", 3000)
    reread = ctx.params.get("reread", 1)
    for _ in range(n_tokens):
        yield ctx.read("in")
        batches = [ctx.fetch(instr)]
        for _ in range(reread):
            batches.append(ctx.stream(ctx.heap, 0, work_bytes))
        batches.append(ctx.stream(ctx.heap, 0, work_bytes, write=True))
        yield ctx.compute(*batches, label="filter")
        yield ctx.write("out")


def sink_program(ctx: TaskContext):
    """Consume ``n_tokens`` tokens into a private working set."""
    n_tokens = ctx.params["n_tokens"]
    work_bytes = min(ctx.params.get("work_bytes", 2048), ctx.heap.size)
    instr = ctx.params.get("instr", 1500)
    for _ in range(n_tokens):
        yield ctx.read("in")
        yield ctx.compute(
            ctx.fetch(instr),
            ctx.stream(ctx.heap, 0, work_bytes, write=True),
            label="consume",
        )


def table_walker_program(ctx: TaskContext):
    """A task dominated by data-dependent table lookups (VLD-like).

    Params: ``n_tokens``, ``lookups`` per token, ``table_bytes``
    (within bss), ``skew``.
    """
    n_tokens = ctx.params["n_tokens"]
    lookups = ctx.params.get("lookups", 500)
    table_bytes = min(ctx.params.get("table_bytes", 8192), ctx.bss.size)
    skew = ctx.params.get("skew", 1.2)
    for _ in range(n_tokens):
        yield ctx.read("in")
        yield ctx.compute(
            ctx.fetch(lookups * 4),
            ctx.table(ctx.bss, lookups, table_bytes=table_bytes, skew=skew),
            label="vld",
        )
        yield ctx.write("out")


def make_pipeline(
    n_stages: int = 3,
    n_tokens: int = 64,
    token_bytes: int = 1024,
    capacity_tokens: int = 4,
    work_bytes: int = 4096,
    name: str = "pipeline",
    frame_bytes: Optional[int] = None,
) -> ProcessNetwork:
    """A source -> (n_stages - 2) filters -> sink chain.

    The smallest non-trivial communicating application; with
    ``frame_bytes`` set, a frame buffer is added for layout tests.
    """
    if n_stages < 2:
        raise ValueError("a pipeline needs at least source and sink")
    network = ProcessNetwork(name)
    params = {"n_tokens": n_tokens, "work_bytes": work_bytes}
    network.add_task(TaskSpec(
        name="stage0", program=source_program, params=dict(params),
        heap_bytes=max(work_bytes, 4096),
    ))
    for index in range(1, n_stages - 1):
        network.add_task(TaskSpec(
            name=f"stage{index}", program=filter_program, params=dict(params),
            heap_bytes=max(work_bytes, 4096),
        ))
    network.add_task(TaskSpec(
        name=f"stage{n_stages - 1}", program=sink_program, params=dict(params),
        heap_bytes=max(work_bytes, 4096),
    ))
    for index in range(n_stages - 1):
        network.add_fifo(FifoSpec(
            name=f"link{index}",
            producer=f"stage{index}", producer_port="out",
            consumer=f"stage{index + 1}", consumer_port="in",
            token_bytes=token_bytes, capacity_tokens=capacity_tokens,
        ))
    if frame_bytes:
        network.add_frame_buffer(FrameBufferSpec("scratch", frame_bytes))
    return network
