"""The paper's two evaluation applications.

- :func:`two_jpeg_canny_workload` -- 15 tasks: two JPEG decoders
  "working on different picture formats" plus one line-based Canny
  edge detector (Table 1 / Figure 2-3 left / first headline result).
- :func:`mpeg2_workload` -- the 13-task parallel MPEG-2 decoder
  (Table 2 / Figure 2-3 right / second headline result).

Both accept a ``scale`` knob: ``"paper"`` uses picture formats in the
range the paper's platform would process (larger working sets, longer
runs -- used by the benchmark harness) and ``"test"`` shrinks pictures
for fast unit/integration testing without changing the task structure.
"""

from __future__ import annotations

from repro.apps.canny import add_canny_detector
from repro.apps.jpeg import add_jpeg_decoder
from repro.apps.mpeg2 import add_mpeg2_decoder
from repro.errors import ConfigurationError
from repro.kpn.graph import ProcessNetwork

__all__ = ["mpeg2_workload", "two_jpeg_canny_workload"]


def two_jpeg_canny_workload(
    scale: str = "paper",
    frames: int = 1,
) -> ProcessNetwork:
    """Two JPEG decoders + Canny edge detection (15 tasks).

    JPEG instance 1 decodes the larger format (4CIF width), instance 2
    the smaller (CIF width) -- the width difference is what makes the
    paper allocate ``Raster1`` twice the cache of ``Raster2``.
    """
    # Picture sizes are chosen so the per-iteration streaming footprint
    # (input + decoded frames) exceeds the 512 KB L2 -- as with the
    # paper's real picture formats, streams cannot fit the cache and
    # wash it in shared mode.
    if scale == "paper":
        jpeg1 = dict(width=704, height=128)
        jpeg2 = dict(width=352, height=128)
        canny = dict(width=512, height=128)
    elif scale == "test":
        jpeg1 = dict(width=128, height=16)
        jpeg2 = dict(width=64, height=16)
        canny = dict(width=96, height=16)
    else:
        raise ConfigurationError(f"unknown scale {scale!r}")

    network = ProcessNetwork(
        "two_jpeg_canny",
        appl_data_bytes=4 * 1024,
        appl_bss_bytes=4 * 1024,
        rt_data_bytes=8 * 1024,
        rt_bss_bytes=8 * 1024,
    )
    add_jpeg_decoder(network, suffix="1", frames=frames, **jpeg1)
    add_jpeg_decoder(network, suffix="2", frames=frames, **jpeg2)
    add_canny_detector(network, frames=frames, **canny)
    assert len(network.tasks) == 15, "the paper's first app has 15 tasks"
    return network


def mpeg2_workload(
    scale: str = "paper",
    frames: int = 1,
) -> ProcessNetwork:
    """The parallel MPEG-2 decoder (13 tasks)."""
    # CIF resolution: at 352x288 one reference frame is ~99 KB, i.e. it
    # fits a ~50-unit partition of the 512 KB L2.  Fully cached
    # references are what drive the paper's very low partitioned miss
    # rate for this decoder, while the aggregate footprint (two
    # references + reconstruction + display + bitstream + 13 tasks)
    # still exceeds the shared cache.
    if scale == "paper":
        geometry = dict(width=352, height=288, ref_height=288)
    elif scale == "test":
        geometry = dict(width=96, height=16, ref_height=64)
    else:
        raise ConfigurationError(f"unknown scale {scale!r}")

    network = ProcessNetwork(
        "mpeg2",
        appl_data_bytes=8 * 1024,
        appl_bss_bytes=2 * 1024,
        rt_data_bytes=16 * 1024,
        rt_bss_bytes=2 * 1024,
    )
    add_mpeg2_decoder(network, frames=frames, **geometry)
    assert len(network.tasks) == 13, "the paper's second app has 13 tasks"
    return network
