"""CAKE multiprocessor tile model.

The experimental platform of the paper is an instance of the Philips
CAKE architecture: a homogeneous tile with four TriMedia-class VLIW
CPUs, private L1 caches, a shared unified 512 KB 4-way L2 (the on-tile
memory) and off-chip DRAM behind a high-bandwidth snooping interconnect
(Figure 1 of the paper).

- :mod:`repro.cake.config` -- :class:`CakeConfig`, the platform knobs.
- :mod:`repro.cake.metrics` -- per-CPU and per-run metrics (CPI, miss
  rates, per-owner L2 misses).
- :mod:`repro.cake.processor` -- the trace-driven CPU runner that
  interprets task ops.
- :mod:`repro.cake.platform` -- :class:`Platform`, which instantiates a
  process network on the tile and runs it.
"""

from repro.cake.config import CakeConfig
from repro.cake.metrics import CpuMetrics, RunMetrics
from repro.cake.platform import Platform

__all__ = ["CakeConfig", "CpuMetrics", "Platform", "RunMetrics"]
