"""Platform configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig

__all__ = ["CakeConfig"]


@dataclass(frozen=True)
class CakeConfig:
    """Knobs of one CAKE tile instance.

    The defaults reproduce the paper's instance: 4 CPUs, 512 KB 4-way
    L2.  With 64-byte lines that is 2048 sets; an allocation unit of 8
    sets gives 256 allocatable units, making the unit counts directly
    comparable to the set counts in the paper's Tables 1 and 2.
    """

    n_cpus: int = 4
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    #: Cycle cost of a context switch.
    switch_cycles: int = 400
    #: Round-robin quantum in cycles.
    quantum_cycles: int = 40_000
    #: ``"static"`` or ``"migrate"`` (the paper's experimental default).
    scheduling: str = "migrate"
    #: Cache sets per allocation unit.
    allocation_unit_sets: int = 8
    #: Root seed for all random streams.
    seed: int = 20050307

    def __post_init__(self) -> None:
        if self.n_cpus <= 0:
            raise ConfigurationError("n_cpus must be positive")
        if self.switch_cycles < 0:
            raise ConfigurationError("switch_cycles must be >= 0")
        if self.quantum_cycles <= 0:
            raise ConfigurationError("quantum_cycles must be positive")
        if self.scheduling not in ("static", "migrate"):
            raise ConfigurationError(
                f"scheduling must be 'static' or 'migrate', got "
                f"{self.scheduling!r}"
            )
        sets = self.hierarchy.l2_geometry.sets
        if self.allocation_unit_sets <= 0 or sets % self.allocation_unit_sets:
            raise ConfigurationError(
                f"allocation_unit_sets={self.allocation_unit_sets} must "
                f"divide the {sets} L2 sets"
            )

    @property
    def n_allocation_units(self) -> int:
        """Allocatable units in the L2."""
        return self.hierarchy.l2_geometry.sets // self.allocation_unit_sets

    @property
    def unit_bytes(self) -> int:
        """Bytes of cache per allocation unit."""
        geometry = self.hierarchy.l2_geometry
        return self.allocation_unit_sets * geometry.ways * geometry.line_size

    def with_l2_size(self, size_bytes: int) -> "CakeConfig":
        """A copy with a different L2 capacity (same ways/line size).

        Used for the paper's "mpeg2 with 1 MB shared L2" data point.
        """
        old = self.hierarchy.l2_geometry
        new_geometry = CacheGeometry.from_size(size_bytes, old.ways, old.line_size)
        return replace(
            self, hierarchy=replace(self.hierarchy, l2_geometry=new_geometry)
        )

    def with_l2_sets(self, sets: int) -> "CakeConfig":
        """A copy with an explicit L2 set count (profiling caches).

        The set count is validated here, at the API boundary: a bad
        value fails with a clear :class:`ConfigurationError` at
        construction instead of a geometry-layer error (or worse, deep
        inside a run).
        """
        if sets <= 0 or sets & (sets - 1):
            raise ConfigurationError(
                f"with_l2_sets({sets}): L2 set count must be a positive "
                f"power of two"
            )
        if sets % self.allocation_unit_sets:
            raise ConfigurationError(
                f"with_l2_sets({sets}): set count must be divisible by "
                f"allocation_unit_sets={self.allocation_unit_sets}"
            )
        old = self.hierarchy.l2_geometry
        new_geometry = CacheGeometry(
            sets=sets, ways=old.ways, line_size=old.line_size
        )
        return replace(
            self, hierarchy=replace(self.hierarchy, l2_geometry=new_geometry)
        )

    def with_l2_ways(self, ways: int) -> "CakeConfig":
        """A copy with a different L2 associativity at equal capacity.

        Trading sets for ways keeps the cache size constant, which is
        what an associativity axis in a design-space sweep should vary.
        """
        old = self.hierarchy.l2_geometry
        if ways <= 0:
            raise ConfigurationError(
                f"with_l2_ways({ways}): ways must be positive"
            )
        if old.size_bytes % (ways * old.line_size):
            raise ConfigurationError(
                f"with_l2_ways({ways}): {old.size_bytes} bytes is not "
                f"divisible into {ways} ways of {old.line_size}-byte lines"
            )
        new_geometry = CacheGeometry.from_size(
            old.size_bytes, ways, old.line_size
        )
        if new_geometry.sets % self.allocation_unit_sets:
            raise ConfigurationError(
                f"with_l2_ways({ways}): resulting {new_geometry.sets} sets "
                f"are not divisible by "
                f"allocation_unit_sets={self.allocation_unit_sets}"
            )
        return replace(
            self, hierarchy=replace(self.hierarchy, l2_geometry=new_geometry)
        )
