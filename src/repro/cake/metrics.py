"""Per-CPU and per-run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.mem.cache import OwnerStats

__all__ = ["CpuMetrics", "RunMetrics"]


@dataclass
class CpuMetrics:
    """What one CPU did during a run."""

    busy_cycles: int = 0
    idle_cycles: float = 0.0
    switch_cycles: int = 0
    instructions: int = 0
    dispatches: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction, stalls and switches included.

        This matches the paper's per-processor CPI: idle time waiting
        for work is excluded, task-switch overhead is included.
        """
        if self.instructions == 0:
            return 0.0
        return (self.busy_cycles + self.switch_cycles) / self.instructions

    @property
    def total_cycles(self) -> float:
        """Busy + switch + idle cycles (the ``Y(P_k)`` of §3.1)."""
        return self.busy_cycles + self.switch_cycles + self.idle_cycles


@dataclass
class RunMetrics:
    """Everything measured in one platform run."""

    cpus: List[CpuMetrics] = field(default_factory=list)
    #: owner name -> L2 stats for that owner.
    l2_by_owner: Dict[str, OwnerStats] = field(default_factory=dict)
    #: task name -> task stats (instructions, cycles, blockings...).
    task_stats: Dict[str, object] = field(default_factory=dict)
    #: elapsed simulated cycles.
    elapsed_cycles: float = 0.0
    #: cross-owner L2 evictions (the interference measure).
    l2_cross_evictions: int = 0
    #: DRAM lines moved (for the power model).
    dram_lines: int = 0

    # -- aggregates ----------------------------------------------------------

    @property
    def l2_accesses(self) -> int:
        """Total L2 accesses."""
        return sum(s.accesses for s in self.l2_by_owner.values())

    @property
    def l2_misses(self) -> int:
        """Total L2 misses."""
        return sum(s.misses for s in self.l2_by_owner.values())

    @property
    def l2_miss_rate(self) -> float:
        """Misses per L2 access."""
        accesses = self.l2_accesses
        return self.l2_misses / accesses if accesses else 0.0

    @property
    def instructions(self) -> int:
        """Total instructions executed."""
        return sum(c.instructions for c in self.cpus)

    @property
    def mean_cpi(self) -> float:
        """Instruction-weighted CPI over all CPUs."""
        instr = self.instructions
        if instr == 0:
            return 0.0
        cycles = sum(c.busy_cycles + c.switch_cycles for c in self.cpus)
        return cycles / instr

    @property
    def worst_cpu_cycles(self) -> float:
        """``max_k Y(P_k)`` -- the throughput bottleneck of §3.1."""
        return max((c.total_cycles for c in self.cpus), default=0.0)

    def misses_of(self, owner_name: str) -> int:
        """L2 misses attributed to one owner (0 if never seen)."""
        stats = self.l2_by_owner.get(owner_name)
        return stats.misses if stats else 0

    def summary(self) -> str:
        """Human-readable one-paragraph digest."""
        lines = [
            f"elapsed cycles      : {self.elapsed_cycles:,.0f}",
            f"instructions        : {self.instructions:,}",
            f"mean CPI            : {self.mean_cpi:.3f}",
            f"L2 accesses         : {self.l2_accesses:,}",
            f"L2 misses           : {self.l2_misses:,}",
            f"L2 miss rate        : {self.l2_miss_rate:.2%}",
            f"cross-owner evicts  : {self.l2_cross_evictions:,}",
        ]
        for index, cpu in enumerate(self.cpus):
            lines.append(
                f"cpu{index}: cpi={cpu.cpi:.3f} busy={cpu.busy_cycles:,} "
                f"idle={cpu.idle_cycles:,.0f} switch={cpu.switch_cycles:,}"
            )
        return "\n".join(lines)
