"""Platform builder: a process network instantiated on a CAKE tile.

:class:`Platform` wires everything together:

1. lays out the network's regions in the linear address space
   (:func:`repro.rtos.shmalloc.build_memory_layout`),
2. registers every memory-active entity with the owner registry and
   loads the shared-memory interval table (the OS's buffer-id table),
3. builds the memory system in the requested partition mode,
4. instantiates task contexts, FIFO channels and port bindings,
5. creates the scheduler and one CPU runner per core.

``run()`` executes until the application finishes (every task program
returned) or a cycle horizon passes, and returns a
:class:`~repro.cake.metrics.RunMetrics`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.cake.config import CakeConfig
from repro.cake.metrics import RunMetrics
from repro.cake.processor import CpuRunner
from repro.errors import SchedulingError
from repro.kpn.fifo import FifoChannel
from repro.kpn.graph import ProcessNetwork
from repro.kpn.process import TaskContext
from repro.mem.hierarchy import MemorySystem
from repro.mem.partition import OwnerRegistry, OwnerResolver, PartitionMode
from repro.rtos.cachectl import CacheController
from repro.rtos.scheduler import Scheduler
from repro.rtos.shmalloc import build_memory_layout
from repro.rtos.task import Task, TaskState
from repro.sim.kernel import Simulator
from repro.sim.rng import RngHub

__all__ = ["Platform"]


class Platform:
    """One CAKE tile running one process network."""

    def __init__(
        self,
        network: ProcessNetwork,
        config: Optional[CakeConfig] = None,
        mode: PartitionMode = PartitionMode.SHARED,
        malloc_order: Optional[Sequence[str]] = None,
        placement: str = "scatter",
        engine: Optional[str] = None,
        deferred: Sequence[str] = (),
    ):
        self.network = network
        self.config = config if config is not None else CakeConfig()
        if engine is not None:
            # Per-platform override of the hierarchy engine without
            # rebuilding the whole config tree ("reference" runs the
            # differential-testing oracle end to end).
            self.config = replace(
                self.config,
                hierarchy=replace(self.config.hierarchy, engine=engine),
            )
        self.mode = mode
        network.validate()

        self.sim = Simulator()
        self.rng_hub = RngHub(self.config.seed)
        self.registry = OwnerRegistry()
        self.layout = build_memory_layout(
            network, order=malloc_order, placement=placement,
            seed=self.config.seed,
        )
        resolver = OwnerResolver()
        self.mem = MemorySystem(
            n_cpus=self.config.n_cpus,
            config=self.config.hierarchy,
            resolver=resolver,
            mode=mode,
            rng=self.rng_hub.stream("l2.replacement"),
        )
        self.cache_controller = CacheController(
            self.mem,
            self.registry,
            self.layout,
            unit_sets=self.config.allocation_unit_sets,
        )
        self.cache_controller.load_interval_table()

        self.tasks: List[Task] = []
        self._task_by_name: Dict[str, Task] = {}
        for name, spec in network.tasks.items():
            owner = self.registry.register(
                CacheController.task_owner_name(name)
            )
            context = TaskContext(
                name=name,
                params=spec.params,
                rng=self.rng_hub.stream(f"task.{name}"),
                regions=self.layout.task_regions[name],
                shared_regions=self.layout.shared_regions,
                frame_regions=self.layout.frame_regions,
            )
            task = Task(spec, owner, context)
            self.tasks.append(task)
            self._task_by_name[name] = task

        self.fifos: Dict[str, FifoChannel] = {}
        rt_data = self.layout.shared_regions["rt.data"]
        for fifo_name, fifo_spec in network.fifos.items():
            channel = FifoChannel(
                fifo_spec,
                buffer_region=self.layout.fifo_regions[fifo_name],
                admin_region=rt_data,
                admin_offset=self.layout.fifo_admin_offsets[fifo_name],
            )
            self.fifos[fifo_name] = channel
            self._task_by_name[fifo_spec.producer].context.bind_port(
                fifo_spec.producer_port, channel
            )
            self._task_by_name[fifo_spec.consumer].context.bind_port(
                fifo_spec.consumer_port, channel
            )

        self.scheduler = Scheduler(
            self.sim, self.tasks, self.config.n_cpus, policy=self.config.scheduling
        )
        rt_bss = self.layout.shared_regions["rt.bss"]
        self.cpus = [
            CpuRunner(
                i, self.sim, self.mem, self.scheduler, self.config,
                rt_bss_region=rt_bss,
            )
            for i in range(self.config.n_cpus)
        ]
        unknown = set(deferred) - set(self._task_by_name)
        if unknown:
            raise SchedulingError(
                f"deferred tasks not in the network: {sorted(unknown)}"
            )
        self._deferred = tuple(deferred)
        self._started = False

    # -- execution -----------------------------------------------------------

    def task(self, name: str) -> Task:
        """Look a task up by name."""
        return self._task_by_name[name]

    def attach_task(self, name: str) -> None:
        """Start a deferred task mid-run (online arrival)."""
        self.scheduler.attach(self._task_by_name[name])

    def detach_task(self, name: str) -> None:
        """Retire a task mid-run (online departure).

        Clears the task's FIFO bookkeeping (a blocked task parks itself
        on the channel's waiting list with the retried op pending) and
        removes it from the scheduler.  Tasks that never attached (a
        rejected arrival) or already finished are left alone.
        """
        task = self._task_by_name[name]
        if task.state in (TaskState.NEW, TaskState.DONE):
            return
        for fifo in self.fifos.values():
            if task in fifo.waiting_readers:
                fifo.waiting_readers.remove(task)
            if task in fifo.waiting_writers:
                fifo.waiting_writers.remove(task)
        task.pending_op = None
        task.pending_ops.clear()
        self.scheduler.detach(task)

    def run(self, max_cycles: Optional[float] = None) -> RunMetrics:
        """Run the application to completion (or a cycle horizon)."""
        if self._started:
            raise SchedulingError("Platform.run() may only be called once")
        self._started = True
        self.scheduler.start_all(skip=self._deferred)
        if max_cycles is None:
            self.sim.run()
            blocked = self.scheduler.blocked_tasks()
            if blocked:
                names = ", ".join(t.name for t in blocked)
                raise SchedulingError(
                    f"deadlock: tasks blocked forever on FIFO ops: {names}"
                )
        else:
            self.sim.run(until=max_cycles)
        return self.collect_metrics()

    # -- results ----------------------------------------------------------

    def collect_metrics(self) -> RunMetrics:
        """Snapshot all statistics into a :class:`RunMetrics`."""
        metrics = RunMetrics(
            cpus=[cpu.metrics for cpu in self.cpus],
            elapsed_cycles=self.sim.now,
        )
        l2_stats = self.mem.l2_stats
        for owner_id, stats in l2_stats.per_owner.items():
            metrics.l2_by_owner[self.registry.name_of(owner_id)] = stats
        metrics.l2_cross_evictions = l2_stats.cross_owner_evictions()
        metrics.task_stats = {
            task.name: task.stats for task in self.tasks
        }
        metrics.dram_lines = self.mem.memory.traffic.total_lines
        return metrics

    def all_done(self) -> bool:
        """True when every task program has returned."""
        return all(task.state is TaskState.DONE for task in self.tasks)

    def owner_names(self) -> List[str]:
        """Names of every registered owner (tasks, buffers, regions)."""
        return self.registry.names()

    def __repr__(self) -> str:
        return (
            f"<Platform {self.network.name!r} mode={self.mode.value} "
            f"cpus={self.config.n_cpus}>"
        )
