"""Trace-driven CPU runner.

Each CPU is one simulation process.  It pulls ready tasks from the
scheduler, interprets the ops their programs yield (compute batches,
FIFO reads/writes, delays), charges cycles through the memory system and
enforces the round-robin quantum.  FIFO blocking follows KPN semantics:
a read from an empty FIFO (or write to a full one) parks the task on the
channel; the runner that later completes the matching operation wakes
it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cake.config import CakeConfig
from repro.cake.metrics import CpuMetrics
from repro.errors import SchedulingError
from repro.kpn.fifo import FifoChannel
from repro.kpn.ops import Compute, Delay, ReadToken, WriteToken
from repro.mem.address import Region
from repro.mem.hierarchy import MemorySystem
from repro.mem.trace import AccessBatch
from repro.rtos.scheduler import Scheduler
from repro.rtos.task import Task, TaskState
from repro.sim.kernel import Simulator

__all__ = ["CpuRunner"]

#: Bytes of task-control-block state the RTOS touches per dispatch.
TCB_BYTES = 128


class CpuRunner:
    """One CPU of the tile."""

    def __init__(
        self,
        cpu_id: int,
        sim: Simulator,
        mem: MemorySystem,
        scheduler: Scheduler,
        config: CakeConfig,
        rt_bss_region: Optional[Region] = None,
    ):
        self.cpu_id = cpu_id
        self.sim = sim
        self.mem = mem
        self.scheduler = scheduler
        self.config = config
        self.metrics = CpuMetrics()
        self._rt_bss = rt_bss_region
        self._current: Optional[Task] = None
        self.process = sim.process(self._run(), name=f"cpu{cpu_id}")

    def _switch_batch(self, task: Task) -> AccessBatch:
        """RTOS traffic of a context switch: save/restore the TCB.

        Touches the task's control block inside ``rt.bss``, so the
        switch traffic lands in the RTOS's cache partition -- the reason
        the run-time system has its own rows in Tables 1/2.
        """
        region = self._rt_bss
        offset = (task.owner_id * TCB_BYTES) % max(1, region.size - TCB_BYTES)
        addrs = region.base + offset + np.arange(TCB_BYTES // 4, dtype=np.int64) * 4
        # Restore reads the whole block, save rewrites half of it.
        writes = np.zeros(addrs.shape, dtype=bool)
        writes[::2] = True
        return AccessBatch(addrs=addrs, writes=writes, instructions=64)

    # -- helpers ------------------------------------------------------------

    def _execute(self, task: Task, batch: AccessBatch) -> int:
        """Price a batch through the memory system; update accounting."""
        result = self.mem.execute_batch(
            self.cpu_id, task.owner_id, batch, self.sim.now
        )
        task.stats.instructions += result.instructions
        task.stats.cycles += result.cycles
        self.metrics.busy_cycles += result.cycles
        self.metrics.instructions += result.instructions
        return result.cycles

    @staticmethod
    def _wake_readers(fifo: FifoChannel, scheduler: Scheduler) -> None:
        still_waiting = []
        for task in fifo.waiting_readers:
            op = task.pending_op
            if op is not None and fifo.can_read(op.tokens):
                scheduler.make_ready(task)
            else:
                still_waiting.append(task)
        fifo.waiting_readers[:] = still_waiting

    @staticmethod
    def _wake_writers(fifo: FifoChannel, scheduler: Scheduler) -> None:
        still_waiting = []
        for task in fifo.waiting_writers:
            op = task.pending_op
            if op is not None and fifo.can_write(op.tokens):
                scheduler.make_ready(task)
            else:
                still_waiting.append(task)
        fifo.waiting_writers[:] = still_waiting

    # -- the CPU loop --------------------------------------------------------

    def _run(self):
        sim = self.sim
        scheduler = self.scheduler
        config = self.config
        while True:
            task = scheduler.next_task(self.cpu_id)
            if task is None:
                if scheduler.live_tasks == 0:
                    return
                idle_start = sim.now
                yield scheduler.wait_for_work(self.cpu_id)
                self.metrics.idle_cycles += sim.now - idle_start
                continue

            if task is not self._current:
                if self._current is not None and config.switch_cycles:
                    self.metrics.switch_cycles += config.switch_cycles
                    if self._rt_bss is not None:
                        self.mem.execute_batch(
                            self.cpu_id,
                            task.owner_id,
                            self._switch_batch(task),
                            sim.now,
                        )
                    yield sim.timeout(config.switch_cycles)
                self._current = task
            self.metrics.dispatches += 1
            task.state = TaskState.RUNNING
            quantum_left = config.quantum_cycles

            while True:
                if task.pending_op is not None:
                    op = task.pending_op
                    task.pending_op = None
                else:
                    op = task.advance()

                if op is None:
                    scheduler.task_done(task)
                    break

                op_type = type(op)
                if op_type is Compute:
                    cycles = self._execute(task, op.batch)
                    task.stats.compute_ops += 1
                    quantum_left -= cycles
                    if cycles:
                        yield sim.timeout(cycles)
                elif op_type is ReadToken:
                    fifo = task.context.port(op.port)
                    if fifo.can_read(op.tokens):
                        batch = fifo.read_batch(op.tokens)
                        fifo.commit_read(op.tokens)
                        self._wake_writers(fifo, scheduler)
                        cycles = self._execute(task, batch)
                        task.stats.fifo_reads += op.tokens
                        quantum_left -= cycles
                        if cycles:
                            yield sim.timeout(cycles)
                    else:
                        task.pending_op = op
                        task.state = TaskState.BLOCKED
                        task.stats.blocked_reads += 1
                        fifo.stats.blocked_reads += 1
                        fifo.waiting_readers.append(task)
                        break
                elif op_type is WriteToken:
                    fifo = task.context.port(op.port)
                    if fifo.can_write(op.tokens):
                        batch = fifo.write_batch(op.tokens)
                        fifo.commit_write(op.tokens)
                        self._wake_readers(fifo, scheduler)
                        cycles = self._execute(task, batch)
                        task.stats.fifo_writes += op.tokens
                        quantum_left -= cycles
                        if cycles:
                            yield sim.timeout(cycles)
                    else:
                        task.pending_op = op
                        task.state = TaskState.BLOCKED
                        task.stats.blocked_writes += 1
                        fifo.stats.blocked_writes += 1
                        fifo.waiting_writers.append(task)
                        break
                elif op_type is Delay:
                    self.metrics.busy_cycles += op.cycles
                    task.stats.cycles += op.cycles
                    quantum_left -= op.cycles
                    if op.cycles:
                        yield sim.timeout(op.cycles)
                else:
                    raise SchedulingError(
                        f"task {task.name!r} yielded unknown op {op!r}"
                    )

                if quantum_left <= 0 and scheduler.has_ready(self.cpu_id):
                    scheduler.make_ready(task)
                    break
