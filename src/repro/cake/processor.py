"""Trace-driven CPU runner.

Each CPU is one simulation process.  It pulls ready tasks from the
scheduler, interprets the ops their programs yield (compute batches,
FIFO reads/writes, delays), charges cycles through the memory system and
enforces the round-robin quantum.  FIFO blocking follows KPN semantics:
a read from an empty FIFO (or write to a full one) parks the task on the
channel; the runner that later completes the matching operation wakes
it.

With the compiled memory engine live
(:attr:`~repro.mem.hierarchy.MemorySystem.segment_ready`), the runner
additionally *collects schedule segments*: consecutive deterministic
ops -- Compute, Delay and the dispatch's context-switch traffic -- are
pulled ahead of execution and flushed through
:meth:`~repro.mem.hierarchy.MemorySystem.execute_segment` as one C
call, followed by a single kernel timeout for the whole stretch.  Two
guards keep this bit-identical to the event-driven loop: the segment
may not run past ``sim.peek()`` (the earliest foreign event -- see the
quiet-horizon note on :meth:`~repro.sim.kernel.Simulator.peek`), and
the quantum stops it at the same op boundary where the reference loop
would preempt.  Ops cut off by either guard are handed back through
``task.pending_ops``, so the op stream is replay-exact even across
preemption and migration.  Pre-pulling is sound because task programs
are Kahn processes: between yields they may only touch task-private
state (their params and RNG stream), never the shared channels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cake.config import CakeConfig
from repro.cake.metrics import CpuMetrics
from repro.errors import SchedulingError
from repro.kpn.fifo import FifoChannel
from repro.kpn.ops import Compute, Delay, ReadToken, WriteToken
from repro.mem.address import Region
from repro.mem.hierarchy import MemorySystem, SegmentEntry
from repro.mem.trace import AccessBatch
from repro.rtos.scheduler import Scheduler
from repro.rtos.task import Task, TaskState
from repro.sim.kernel import Simulator

__all__ = ["CpuRunner"]

#: Bytes of task-control-block state the RTOS touches per dispatch.
TCB_BYTES = 128

#: Cap on ops pulled ahead into one schedule segment (bounds the
#: hand-back work when a segment is cut short).
SEGMENT_MAX_OPS = 128


class CpuRunner:
    """One CPU of the tile."""

    def __init__(
        self,
        cpu_id: int,
        sim: Simulator,
        mem: MemorySystem,
        scheduler: Scheduler,
        config: CakeConfig,
        rt_bss_region: Optional[Region] = None,
    ):
        self.cpu_id = cpu_id
        self.sim = sim
        self.mem = mem
        self.scheduler = scheduler
        self.config = config
        self.metrics = CpuMetrics()
        self._rt_bss = rt_bss_region
        self._current: Optional[Task] = None
        self.process = sim.process(self._run(), name=f"cpu{cpu_id}")

    def _switch_batch(self, task: Task) -> AccessBatch:
        """RTOS traffic of a context switch: save/restore the TCB.

        Touches the task's control block inside ``rt.bss``, so the
        switch traffic lands in the RTOS's cache partition -- the reason
        the run-time system has its own rows in Tables 1/2.
        """
        region = self._rt_bss
        offset = (task.owner_id * TCB_BYTES) % max(1, region.size - TCB_BYTES)
        addrs = region.base + offset + np.arange(TCB_BYTES // 4, dtype=np.int64) * 4
        # Restore reads the whole block, save rewrites half of it.
        writes = np.zeros(addrs.shape, dtype=bool)
        writes[::2] = True
        return AccessBatch(addrs=addrs, writes=writes, instructions=64)

    # -- helpers ------------------------------------------------------------

    def _execute(self, task: Task, batch: AccessBatch) -> int:
        """Price a batch through the memory system; update accounting."""
        result = self.mem.execute_batch(
            self.cpu_id, task.owner_id, batch, self.sim.now
        )
        task.stats.instructions += result.instructions
        task.stats.cycles += result.cycles
        self.metrics.busy_cycles += result.cycles
        self.metrics.instructions += result.instructions
        return result.cycles

    @staticmethod
    def _wake_readers(fifo: FifoChannel, scheduler: Scheduler) -> None:
        still_waiting = []
        for task in fifo.waiting_readers:
            op = task.pending_op
            if op is not None and fifo.can_read(op.tokens):
                scheduler.make_ready(task)
            else:
                still_waiting.append(task)
        fifo.waiting_readers[:] = still_waiting

    @staticmethod
    def _wake_writers(fifo: FifoChannel, scheduler: Scheduler) -> None:
        still_waiting = []
        for task in fifo.waiting_writers:
            op = task.pending_op
            if op is not None and fifo.can_write(op.tokens):
                scheduler.make_ready(task)
            else:
                still_waiting.append(task)
        fifo.waiting_writers[:] = still_waiting

    def _pay_switch(self, task: Task):
        """The event-driven dispatch cost: RTOS traffic + fixed stall.

        One definition for both call sites in :meth:`_run`; the segment
        path prices the same work as an ``ENTRY_SWITCH`` segment entry
        instead (see :meth:`_run_segment`).
        """
        self.metrics.switch_cycles += self.config.switch_cycles
        if self._rt_bss is not None:
            self.mem.execute_batch(
                self.cpu_id,
                task.owner_id,
                self._switch_batch(task),
                self.sim.now,
            )
        yield self.sim.timeout(self.config.switch_cycles)

    # -- schedule-segment collection -----------------------------------------

    def _collect_ops(self, task: Task, first) -> list:
        """Pull the run of deterministic ops starting at ``first``.

        Stops at the first FIFO op (handed back through
        ``task.pending_ops``), at program end, or at the collection
        cap.  Pre-pulling only runs task-private program code (KPN
        processes cannot observe shared state between yields), so the
        op stream is identical to the event-driven pull order.
        """
        ops = [first]
        while len(ops) < SEGMENT_MAX_OPS:
            op = task.next_op()
            if op is None:
                break
            if type(op) not in (Compute, Delay):
                task.pending_ops.appendleft(op)
                break
            ops.append(op)
        return ops

    def _run_segment(self, task: Task, ops: list, pending_switch: bool,
                     quantum_left: int):
        """Flush one collected segment; returns (quantum_left, elapsed).

        Entry 0 is the dispatch's context-switch traffic when one is
        pending.  The C walker executes as many entries as fit before
        ``sim.peek()`` / the quantum; cut-off ops go back onto
        ``task.pending_ops`` in order.
        """
        sim = self.sim
        config = self.config
        entries = []
        ops_for_entry: list = []
        if pending_switch:
            self.metrics.switch_cycles += config.switch_cycles
            batch = (
                self._switch_batch(task) if self._rt_bss is not None
                else None
            )
            entries.append(SegmentEntry(
                SegmentEntry.SWITCH, cpu_id=self.cpu_id,
                owner=task.owner_id, batch=batch,
                advance=config.switch_cycles,
            ))
            ops_for_entry.append(None)
        for op in ops:
            if type(op) is Compute:
                entries.append(SegmentEntry.compute(
                    self.cpu_id, task.owner_id, op.batch
                ))
            else:
                entries.append(SegmentEntry.delay(op.cycles))
            ops_for_entry.append(op)

        n_done, results, elapsed = self.mem.execute_segment(
            entries, sim.now, sim.peek(),
            quantum_left, self.scheduler.has_ready(self.cpu_id),
        )

        for index in range(n_done):
            entry = entries[index]
            if entry.kind == SegmentEntry.COMPUTE:
                result = results[index]
                task.stats.instructions += result.instructions
                task.stats.cycles += result.cycles
                task.stats.compute_ops += 1
                self.metrics.busy_cycles += result.cycles
                self.metrics.instructions += result.instructions
                quantum_left -= result.cycles
            elif entry.kind == SegmentEntry.DELAY:
                cycles = ops_for_entry[index].cycles
                self.metrics.busy_cycles += cycles
                task.stats.cycles += cycles
                quantum_left -= cycles
            # SWITCH: wall cost accounted at collection; the TCB batch
            # result is traffic only, as in the event-driven path.

        leftovers = [op for op in ops_for_entry[n_done:] if op is not None]
        if leftovers:
            task.pending_ops.extendleft(reversed(leftovers))
        return quantum_left, elapsed

    # -- the CPU loop --------------------------------------------------------

    def _run(self):
        sim = self.sim
        scheduler = self.scheduler
        config = self.config
        while True:
            task = scheduler.next_task(self.cpu_id)
            if task is None:
                if (scheduler.live_tasks == 0
                        and not scheduler.expecting_arrivals()):
                    return
                idle_start = sim.now
                yield scheduler.wait_for_work(self.cpu_id)
                self.metrics.idle_cycles += sim.now - idle_start
                continue

            segments = self.mem.segment_ready
            pending_switch = (
                task is not self._current
                and self._current is not None
                and bool(config.switch_cycles)
            )
            if pending_switch and not segments:
                yield from self._pay_switch(task)
                pending_switch = False
            self._current = task
            self.metrics.dispatches += 1
            if task.state is TaskState.DONE:
                # Detached (online departure) while the dispatch switch
                # was in flight: the segment path prices the switch and
                # runs no op; match it -- drop without running an op.
                continue
            task.state = TaskState.RUNNING
            quantum_left = config.quantum_cycles

            while True:
                op = task.next_op()

                if segments and type(op) in (Compute, Delay):
                    ops = self._collect_ops(task, op)
                    quantum_left, elapsed = self._run_segment(
                        task, ops, pending_switch, quantum_left
                    )
                    pending_switch = False
                    if elapsed:
                        yield sim.timeout(elapsed)
                    if task.state is TaskState.DONE:
                        break  # detached while the segment was in flight
                    if scheduler.should_preempt(self.cpu_id, quantum_left):
                        scheduler.make_ready(task)
                        break
                    continue

                if pending_switch:
                    # The first step is not batchable (FIFO op or an
                    # immediate program end): pay the dispatch the
                    # event-driven way before handling it.
                    pending_switch = False
                    yield from self._pay_switch(task)
                    if task.state is TaskState.DONE:
                        break  # detached while the switch was in flight

                if op is None:
                    scheduler.task_done(task)
                    break

                op_type = type(op)
                if op_type is Compute:
                    cycles = self._execute(task, op.batch)
                    task.stats.compute_ops += 1
                    quantum_left -= cycles
                    if cycles:
                        yield sim.timeout(cycles)
                elif op_type is ReadToken:
                    fifo = task.context.port(op.port)
                    if fifo.can_read(op.tokens):
                        batch = fifo.read_batch(op.tokens)
                        fifo.commit_read(op.tokens)
                        self._wake_writers(fifo, scheduler)
                        cycles = self._execute(task, batch)
                        task.stats.fifo_reads += op.tokens
                        quantum_left -= cycles
                        if cycles:
                            yield sim.timeout(cycles)
                    else:
                        task.pending_op = op
                        task.state = TaskState.BLOCKED
                        task.stats.blocked_reads += 1
                        fifo.stats.blocked_reads += 1
                        fifo.waiting_readers.append(task)
                        break
                elif op_type is WriteToken:
                    fifo = task.context.port(op.port)
                    if fifo.can_write(op.tokens):
                        batch = fifo.write_batch(op.tokens)
                        fifo.commit_write(op.tokens)
                        self._wake_readers(fifo, scheduler)
                        cycles = self._execute(task, batch)
                        task.stats.fifo_writes += op.tokens
                        quantum_left -= cycles
                        if cycles:
                            yield sim.timeout(cycles)
                    else:
                        task.pending_op = op
                        task.state = TaskState.BLOCKED
                        task.stats.blocked_writes += 1
                        fifo.stats.blocked_writes += 1
                        fifo.waiting_writers.append(task)
                        break
                elif op_type is Delay:
                    self.metrics.busy_cycles += op.cycles
                    task.stats.cycles += op.cycles
                    quantum_left -= op.cycles
                    if op.cycles:
                        yield sim.timeout(op.cycles)
                else:
                    raise SchedulingError(
                        f"task {task.name!r} yielded unknown op {op!r}"
                    )

                if task.state is TaskState.DONE:
                    break  # detached while the op's timeout was in flight
                if scheduler.should_preempt(self.cpu_id, quantum_left):
                    scheduler.make_ready(task)
                    break
