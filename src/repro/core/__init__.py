"""The paper's contribution: compositional cache management.

- :mod:`repro.core.misscurve` -- per-owner miss curves ``m_i(s)``.
- :mod:`repro.core.profiling` -- measuring miss curves by simulation
  (§3.2: "can be obtained by simulation or program analysis").
- :mod:`repro.core.mckp` -- the (M)ILP of §3.2 is a multiple-choice
  knapsack; exact DP, greedy and brute-force solvers.
- :mod:`repro.core.milp` -- the same problem through
  ``scipy.optimize.milp`` (HiGHS), cross-checked against the DP.
- :mod:`repro.core.allocation` -- buffer-sizing policies (FIFOs get
  cache equal to their size; frame buffers get their access window)
  and the final :class:`PartitionPlan`.
- :mod:`repro.core.throughput` -- the analytic throughput model
  ``1 / max_k Y(P_k)`` and task-to-processor assignment (§3.1).
- :mod:`repro.core.power` -- the energy/power objective (§3.1).
- :mod:`repro.core.method` -- :class:`CompositionalMethod`, the
  end-to-end pipeline (profile -> optimize -> program -> validate).
- :mod:`repro.core.validate` -- the Figure-3 compositionality check.
"""

from repro.core.allocation import BufferPolicy, PartitionPlan
from repro.core.method import (
    CompositionalMethod,
    MethodConfig,
    MethodReport,
    OptimizationResult,
    format_reduction_factor,
)
from repro.core.milp import solve_mckp_milp
from repro.core.misscurve import MissCurve
from repro.core.mckp import solve_mckp_bruteforce, solve_mckp_dp, solve_mckp_greedy
from repro.core.power import EnergyModel
from repro.core.profiling import ProfileResult, profile_miss_curves
from repro.core.throughput import ThroughputModel, assign_tasks_lpt
from repro.core.validate import CompositionalityReport, compare_expected_simulated

__all__ = [
    "BufferPolicy",
    "CompositionalMethod",
    "CompositionalityReport",
    "EnergyModel",
    "MethodConfig",
    "MethodReport",
    "MissCurve",
    "OptimizationResult",
    "PartitionPlan",
    "ProfileResult",
    "ThroughputModel",
    "assign_tasks_lpt",
    "compare_expected_simulated",
    "format_reduction_factor",
    "profile_miss_curves",
    "solve_mckp_bruteforce",
    "solve_mckp_dp",
    "solve_mckp_greedy",
    "solve_mckp_milp",
]
