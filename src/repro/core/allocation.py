"""Buffer-sizing policies and the final partition plan.

§3 and §4.1 of the paper fix how communication buffers are cached:

- **FIFOs**: "The FIFOs access predictability is achieved by allocating
  them cache of the same size as the FIFO size" -- the *all-hit*
  policy.  The all-miss alternative (minimal partition, every access
  misses but predictably) is also implemented for the FIFO-policy
  ablation, as is the unpredictable undersized middle ground the paper
  warns about.
- **Frame buffers**: an exclusive partition sized to the buffer's
  declared access window (write streams need a strip; fully re-read
  reference frames want the whole frame when it fits).
- **Shared static data** (appl/rt data and bss): these are optimized
  together with the tasks -- they appear as items in the MCKP, which is
  how the paper's Tables 1 and 2 list them next to the tasks.

:class:`PartitionPlan` combines the fixed buffer allocations with the
optimizer's task allocations and programs the platform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cake.platform import Platform
from repro.errors import OptimizationError
from repro.kpn.graph import ProcessNetwork
from repro.rtos.cachectl import CacheController

__all__ = ["BufferPolicy", "PartitionPlan", "buffer_units"]

#: The four shared static regions that get their own table rows.
SHARED_ITEMS = ("appl.data", "appl.bss", "rt.data", "rt.bss")


class BufferPolicy(enum.Enum):
    """How FIFO buffers are sized (§3's predictability alternatives)."""

    ALL_HIT = "all-hit"  # cache = FIFO size; only cold misses
    ALL_MISS = "all-miss"  # minimal cache; every access misses
    UNDERSIZED = "undersized"  # half the ring: the unpredictable case


def buffer_units(
    network: ProcessNetwork,
    unit_bytes: int,
    fifo_policy: BufferPolicy = BufferPolicy.ALL_HIT,
) -> Dict[str, int]:
    """Fixed unit allocations for every FIFO and frame buffer."""
    allocation: Dict[str, int] = {}
    for name, fifo in network.fifos.items():
        if fifo_policy is BufferPolicy.ALL_HIT:
            units = -(-fifo.buffer_bytes // unit_bytes)
        elif fifo_policy is BufferPolicy.ALL_MISS:
            units = 1
        else:
            units = max(1, fifo.buffer_bytes // (2 * unit_bytes))
        allocation[f"fifo:{name}"] = max(1, units)
    for name, frame in network.frames.items():
        allocation[f"frame:{name}"] = max(
            1, -(-frame.window_bytes // unit_bytes)
        )
    return allocation


@dataclass
class PartitionPlan:
    """A complete owner-name -> units allocation for one application."""

    units_by_owner: Dict[str, int] = field(default_factory=dict)
    total_units: int = 0
    #: Objective value the optimizer predicted (expected misses of the
    #: optimized items only; buffers are policy-fixed).
    predicted_misses: Optional[float] = None

    def __post_init__(self) -> None:
        for owner, units in self.units_by_owner.items():
            if units <= 0:
                raise OptimizationError(
                    f"plan gives owner {owner!r} {units} units"
                )

    @property
    def used_units(self) -> int:
        """Units claimed by the plan."""
        return sum(self.units_by_owner.values())

    @property
    def spare_units(self) -> int:
        """Unallocated units (kept free / shared pool)."""
        return self.total_units - self.used_units

    def validate(self) -> None:
        """Check the plan fits its capacity."""
        if self.used_units > self.total_units:
            raise OptimizationError(
                f"plan uses {self.used_units} of {self.total_units} units"
            )

    def units_of(self, owner: str) -> int:
        """Units given to ``owner`` (0 when unpartitioned)."""
        return self.units_by_owner.get(owner, 0)

    def task_rows(self) -> List[tuple]:
        """(task name, units) rows -- the Tables 1/2 task section."""
        return [
            (name[len("task:"):], units)
            for name, units in self.units_by_owner.items()
            if name.startswith("task:")
        ]

    def data_rows(self) -> List[tuple]:
        """(region, units) rows -- the Tables 1/2 data section."""
        return [
            (name, units)
            for name, units in self.units_by_owner.items()
            if name in SHARED_ITEMS
        ]

    def buffer_rows(self) -> List[tuple]:
        """(buffer, units) rows -- FIFOs and frame buffers."""
        return [
            (name, units)
            for name, units in self.units_by_owner.items()
            if name.startswith(("fifo:", "frame:"))
        ]

    def apply(self, platform: Platform) -> None:
        """Program the platform's L2 translation tables from this plan."""
        self.validate()
        platform.cache_controller.program_set_partitions(self.units_by_owner)

    @classmethod
    def from_parts(
        cls,
        optimized: Dict[str, int],
        buffers: Dict[str, int],
        total_units: int,
        predicted_misses: Optional[float] = None,
    ) -> "PartitionPlan":
        """Merge optimizer output with policy-fixed buffer allocations."""
        merged = dict(buffers)
        for owner, units in optimized.items():
            if owner in merged:
                raise OptimizationError(f"owner {owner!r} allocated twice")
            merged[owner] = units
        plan = cls(
            units_by_owner=merged,
            total_units=total_units,
            predicted_misses=predicted_misses,
        )
        plan.validate()
        return plan
