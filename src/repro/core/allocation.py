"""Buffer-sizing policies and the final partition plan.

§3 and §4.1 of the paper fix how communication buffers are cached:

- **FIFOs**: "The FIFOs access predictability is achieved by allocating
  them cache of the same size as the FIFO size" -- the *all-hit*
  policy.  The all-miss alternative (minimal partition, every access
  misses but predictably) is also implemented for the FIFO-policy
  ablation, as is the unpredictable undersized middle ground the paper
  warns about.
- **Frame buffers**: an exclusive partition sized to the buffer's
  declared access window (write streams need a strip; fully re-read
  reference frames want the whole frame when it fits).
- **Shared static data** (appl/rt data and bss): these are optimized
  together with the tasks -- they appear as items in the MCKP, which is
  how the paper's Tables 1 and 2 list them next to the tasks.

:class:`PartitionPlan` combines the fixed buffer allocations with the
optimizer's task allocations and programs the platform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cake.platform import Platform
from repro.errors import OptimizationError
from repro.kpn.graph import ProcessNetwork
from repro.rtos.cachectl import CacheController

__all__ = [
    "BufferPolicy",
    "PartitionPlan",
    "WayPlan",
    "buffer_units",
    "optimize_way_assignment",
]

#: The four shared static regions that get their own table rows.
SHARED_ITEMS = ("appl.data", "appl.bss", "rt.data", "rt.bss")


class BufferPolicy(enum.Enum):
    """How FIFO buffers are sized (§3's predictability alternatives)."""

    ALL_HIT = "all-hit"  # cache = FIFO size; only cold misses
    ALL_MISS = "all-miss"  # minimal cache; every access misses
    UNDERSIZED = "undersized"  # half the ring: the unpredictable case


def buffer_units(
    network: ProcessNetwork,
    unit_bytes: int,
    fifo_policy: BufferPolicy = BufferPolicy.ALL_HIT,
) -> Dict[str, int]:
    """Fixed unit allocations for every FIFO and frame buffer."""
    allocation: Dict[str, int] = {}
    for name, fifo in network.fifos.items():
        if fifo_policy is BufferPolicy.ALL_HIT:
            units = -(-fifo.buffer_bytes // unit_bytes)
        elif fifo_policy is BufferPolicy.ALL_MISS:
            units = 1
        else:
            units = max(1, fifo.buffer_bytes // (2 * unit_bytes))
        allocation[f"fifo:{name}"] = max(1, units)
    for name, frame in network.frames.items():
        allocation[f"frame:{name}"] = max(
            1, -(-frame.window_bytes // unit_bytes)
        )
    return allocation


@dataclass
class PartitionPlan:
    """A complete owner-name -> units allocation for one application."""

    units_by_owner: Dict[str, int] = field(default_factory=dict)
    total_units: int = 0
    #: Objective value the optimizer predicted (expected misses of the
    #: optimized items only; buffers are policy-fixed).
    predicted_misses: Optional[float] = None

    def __post_init__(self) -> None:
        for owner, units in self.units_by_owner.items():
            if units <= 0:
                raise OptimizationError(
                    f"plan gives owner {owner!r} {units} units"
                )

    @property
    def used_units(self) -> int:
        """Units claimed by the plan."""
        return sum(self.units_by_owner.values())

    @property
    def spare_units(self) -> int:
        """Unallocated units (kept free / shared pool)."""
        return self.total_units - self.used_units

    def validate(self) -> None:
        """Check the plan fits its capacity."""
        if self.used_units > self.total_units:
            raise OptimizationError(
                f"plan uses {self.used_units} of {self.total_units} units"
            )

    def units_of(self, owner: str) -> int:
        """Units given to ``owner`` (0 when unpartitioned)."""
        return self.units_by_owner.get(owner, 0)

    def task_rows(self) -> List[tuple]:
        """(task name, units) rows -- the Tables 1/2 task section."""
        return [
            (name[len("task:"):], units)
            for name, units in self.units_by_owner.items()
            if name.startswith("task:")
        ]

    def data_rows(self) -> List[tuple]:
        """(region, units) rows -- the Tables 1/2 data section."""
        return [
            (name, units)
            for name, units in self.units_by_owner.items()
            if name in SHARED_ITEMS
        ]

    def buffer_rows(self) -> List[tuple]:
        """(buffer, units) rows -- FIFOs and frame buffers."""
        return [
            (name, units)
            for name, units in self.units_by_owner.items()
            if name.startswith(("fifo:", "frame:"))
        ]

    def apply(self, platform: Platform) -> None:
        """Program the platform's L2 translation tables from this plan."""
        self.validate()
        platform.cache_controller.program_set_partitions(self.units_by_owner)

    @classmethod
    def from_parts(
        cls,
        optimized: Dict[str, int],
        buffers: Dict[str, int],
        total_units: int,
        predicted_misses: Optional[float] = None,
    ) -> "PartitionPlan":
        """Merge optimizer output with policy-fixed buffer allocations."""
        merged = dict(buffers)
        for owner, units in optimized.items():
            if owner in merged:
                raise OptimizationError(f"owner {owner!r} allocated twice")
            merged[owner] = units
        plan = cls(
            units_by_owner=merged,
            total_units=total_units,
            predicted_misses=predicted_misses,
        )
        plan.validate()
        return plan


@dataclass(frozen=True)
class WayPlan:
    """A way-granularity allocation for column-cached (way) scenarios.

    The paper criticises way partitioning exactly because its
    granularity is the associativity; this plan makes the restriction
    explicit: at most ``total_ways`` owners hold exclusive columns,
    everyone else keeps shared allocation rights.
    """

    ways_by_owner: Dict[str, tuple]
    total_ways: int
    predicted_misses: float = 0.0

    def apply(self, platform: Platform) -> None:
        """Program the platform's way map from this plan."""
        platform.cache_controller.program_way_partitions(self.ways_by_owner)


def optimize_way_assignment(curves, n_ways: int, total_units: int) -> WayPlan:
    """Dedicated optimizer for way-partitioned scenarios.

    Solves the way-granularity analogue of the set MCKP directly on the
    profiled miss curves: every owner picks ``k`` exclusive ways,
    ``0 <= k <= n_ways``, the total not exceeding ``n_ways``, minimising
    the predicted misses.  ``k`` ways hold the capacity of
    ``k * total_units / n_ways`` set-allocation units, so the choice is
    priced at ``curve.misses_at()`` of that size; ``k = 0`` (no
    exclusive columns -- the owner falls back to shared allocation
    rights) is priced conservatively at the curve's smallest profiled
    size.  A zero-way choice is legal here but not expressible as a
    :class:`~repro.core.mckp.MckpItem` choice (sizes must be >= 1),
    which is why this is a standalone exact DP rather than a call into
    the set solver -- and why way- and set-mode plans legitimately
    diverge: the way optimizer ranks owners by miss reduction *at
    column granularity*, not by the set plan's fine-grained unit counts.

    Ties are broken lexicographically on (misses, owners left shared,
    total ways used): at equal misses, isolating an owner beats leaving
    it in the shared pool (isolation is the method's point), and after
    that spare columns stay free for arrivals.  Way indices are packed
    contiguously in input (curve) order.
    """
    if n_ways <= 0:
        raise OptimizationError(f"n_ways must be positive, got {n_ways}")
    if total_units <= 0:
        raise OptimizationError(
            f"total_units must be positive, got {total_units}"
        )
    curves = list(curves)
    costs: List[List[float]] = []
    for curve in curves:
        row = [float(curve.misses_at(0))]
        for k in range(1, n_ways + 1):
            units = max(1, (k * total_units) // n_ways)
            row.append(float(curve.misses_at(units)))
        costs.append(row)

    # DP cells hold (misses, owners-with-zero-ways); compared as
    # tuples, so at equal misses the fewer-shared-owners allocation
    # wins.
    infinity = (float("inf"), 0)
    n_items = len(curves)
    best = [[infinity] * (n_ways + 1) for _ in range(n_items + 1)]
    chosen = [[0] * (n_ways + 1) for _ in range(n_items + 1)]
    best[0][0] = (0.0, 0)
    for i in range(1, n_items + 1):
        for used in range(n_ways + 1):
            for k in range(used + 1):
                prior = best[i - 1][used - k]
                if prior == infinity:
                    continue
                cand = (prior[0] + costs[i - 1][k], prior[1] + (k == 0))
                # Strict < (with ascending k) prefers the smallest
                # sufficient k among isolating choices: spare columns
                # stay free for arrivals (mirrors the set solver's
                # preference for spare units).
                if cand < best[i][used]:
                    best[i][used] = cand
                    chosen[i][used] = k

    used = min(range(n_ways + 1), key=lambda w: (*best[n_items][w], w))
    predicted = best[n_items][used][0]
    allocation: List[int] = []
    for i in range(n_items, 0, -1):
        k = chosen[i][used]
        allocation.append(k)
        used -= k
    allocation.reverse()

    ways_by_owner: Dict[str, tuple] = {}
    next_way = 0
    for curve, k in zip(curves, allocation):
        if k <= 0:
            continue
        ways_by_owner[curve.owner] = tuple(range(next_way, next_way + k))
        next_way += k
    return WayPlan(
        ways_by_owner=ways_by_owner,
        total_ways=n_ways,
        predicted_misses=predicted,
    )
