"""Multiple-choice knapsack solvers for the §3.2 optimization.

The paper formulates partition sizing as a (mixed) integer linear
program: pick exactly one cache size ``z^s`` per task (binary variables
``x_i^s`` with ``sum_s x_i^s = 1``) minimizing total misses
``sum_i sum_s x_i^s M_i^s`` subject to the capacity constraint.  That
is precisely the *multiple-choice knapsack problem* (MCKP), so besides
an off-the-shelf MILP backend (:mod:`repro.core.milp`) the library
carries:

- :func:`solve_mckp_dp` -- exact dynamic program over capacity units,
  ``O(n_items x capacity x n_choices)``; the reference solver.
- :func:`solve_mckp_greedy` -- classic marginal-gain heuristic on the
  convexified curves; near-optimal for convex miss curves and fast.
- :func:`solve_mckp_bruteforce` -- exhaustive search for tiny
  instances; used by tests to certify the DP.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.misscurve import MissCurve
from repro.errors import OptimizationError

__all__ = [
    "MckpItem",
    "MckpSolution",
    "items_from_curves",
    "solve_mckp_bruteforce",
    "solve_mckp_dp",
    "solve_mckp_greedy",
]


@dataclass(frozen=True)
class MckpItem:
    """One owner with its menu of (units, misses) choices."""

    name: str
    choices: Tuple[Tuple[int, float], ...]  # (units, misses), ascending units

    def __post_init__(self) -> None:
        if not self.choices:
            raise OptimizationError(f"item {self.name!r} has no choices")
        units = [c[0] for c in self.choices]
        if sorted(set(units)) != list(units):
            raise OptimizationError(
                f"item {self.name!r}: choices must have unique ascending sizes"
            )
        if min(units) <= 0:
            raise OptimizationError(f"item {self.name!r}: sizes must be >= 1")


@dataclass
class MckpSolution:
    """Chosen units per item plus the objective value."""

    allocation: Dict[str, int]
    total_misses: float
    total_units: int

    def __getitem__(self, name: str) -> int:
        return self.allocation[name]


def items_from_curves(
    curves: Sequence[MissCurve], sizes: Sequence[int]
) -> List[MckpItem]:
    """Build MCKP items by sampling each curve at the menu ``sizes``."""
    menu = sorted(set(int(s) for s in sizes))
    return [
        MckpItem(
            name=curve.owner,
            choices=tuple((s, curve.misses_at(s)) for s in menu),
        )
        for curve in curves
    ]


def solve_mckp_dp(items: Sequence[MckpItem], capacity: int) -> MckpSolution:
    """Exact DP over capacity units.

    ``table[i][c]`` = minimal misses using the first ``i`` items within
    ``c`` units; reconstruction walks the choice table backwards.
    """
    if capacity < 0:
        raise OptimizationError("capacity must be >= 0")
    infinity = float("inf")
    n = len(items)
    table = [[infinity] * (capacity + 1) for _ in range(n + 1)]
    choice: List[List[int]] = [[-1] * (capacity + 1) for _ in range(n)]
    for c in range(capacity + 1):
        table[0][c] = 0.0
    for i, item in enumerate(items):
        row = table[i]
        new_row = table[i + 1]
        choice_row = choice[i]
        for c in range(capacity + 1):
            best = infinity
            best_choice = -1
            for k, (units, misses) in enumerate(item.choices):
                if units > c:
                    break
                prev = row[c - units]
                if prev + misses < best:
                    best = prev + misses
                    best_choice = k
            new_row[c] = best
            choice_row[c] = best_choice
    if table[n][capacity] == infinity:
        raise OptimizationError(
            f"infeasible: {n} items cannot fit in {capacity} units"
        )
    # Walk back the minimal-capacity optimum (prefer spare units).
    c = capacity
    allocation: Dict[str, int] = {}
    total = table[n][capacity]
    for i in range(n - 1, -1, -1):
        k = choice[i][c]
        if k < 0:
            raise OptimizationError("corrupt DP reconstruction")  # pragma: no cover
        units = items[i].choices[k][0]
        allocation[items[i].name] = units
        c -= units
    return MckpSolution(
        allocation=allocation,
        total_misses=total,
        total_units=sum(allocation.values()),
    )


def _convex_hull(choices: Sequence[Tuple[int, float]]) -> List[Tuple[int, float]]:
    """Lower convex envelope of a (units, misses) curve.

    Keeps only points where the marginal gain per unit is decreasing --
    the classical MCKP-greedy preprocessing.  Dominated points (more
    units, not fewer misses) are dropped first.
    """
    # Drop dominated points: keep only strict miss improvements, so of
    # equal-miss points the cheapest (fewest units) survives.
    monotone: List[Tuple[int, float]] = []
    for units, misses in choices:
        if not monotone or misses < monotone[-1][1]:
            monotone.append((units, misses))
    # Convexify: slopes (miss reduction per unit) must be decreasing.
    hull: List[Tuple[int, float]] = []
    for point in monotone:
        while len(hull) >= 2:
            (u1, m1), (u2, m2) = hull[-2], hull[-1]
            slope_prev = (m1 - m2) / (u2 - u1)
            slope_new = (m2 - point[1]) / (point[0] - u2)
            if slope_new > slope_prev:
                hull.pop()
            else:
                break
        hull.append(point)
    return hull


def solve_mckp_greedy(items: Sequence[MckpItem], capacity: int) -> MckpSolution:
    """Marginal-gain greedy on the convex hull of each item's curve.

    Start every item at its smallest choice, then repeatedly take the
    hull upgrade with the best miss-reduction per unit until the budget
    is exhausted.  This is the classical LP-relaxation-quality MCKP
    heuristic; the paper itself applies "a practical approximation" of
    the exact formulation.
    """
    allocation = {item.name: item.choices[0][0] for item in items}
    misses = {item.name: item.choices[0][1] for item in items}
    used = sum(allocation.values())
    if used > capacity:
        raise OptimizationError(
            f"infeasible: minimal allocations need {used} > {capacity} units"
        )
    hulls = {
        item.name: _convex_hull(
            [(item.choices[0][0], item.choices[0][1])] + [
                choice for choice in item.choices[1:]
            ]
        )
        for item in items
    }
    # Heap of candidate hull upgrades: (-gain_per_unit, name, hull index).
    heap: List[Tuple[float, str, int]] = []
    index = {item.name: 0 for item in items}

    def push_next(name: str) -> None:
        hull = hulls[name]
        k = index[name]
        if k + 1 < len(hull):
            cur_units, cur_misses = hull[k]
            nxt_units, nxt_misses = hull[k + 1]
            gain = (cur_misses - nxt_misses) / (nxt_units - cur_units)
            heapq.heappush(heap, (-gain, name, k + 1))

    for item in items:
        push_next(item.name)
    while heap:
        neg_gain, name, k = heapq.heappop(heap)
        if k != index[name] + 1:
            continue  # stale entry
        hull = hulls[name]
        delta = hull[k][0] - hull[index[name]][0]
        if used + delta > capacity or -neg_gain <= 0.0:
            continue
        used += delta
        index[name] = k
        allocation[name] = hull[k][0]
        misses[name] = hull[k][1]
        push_next(name)

    # Repair pass: the slope-ordered walk can strand budget when a
    # steep upgrade is skipped for being momentarily unaffordable.
    # Spend what is left on the single best affordable upgrade,
    # repeatedly, over the raw (non-hull) choices.
    improved = True
    while improved:
        improved = False
        best = None
        for item in items:
            current_units = allocation[item.name]
            current_misses = misses[item.name]
            for units, item_misses in item.choices:
                delta = units - current_units
                if delta <= 0 or used + delta > capacity:
                    continue
                gain = current_misses - item_misses
                if gain <= 0:
                    continue
                if best is None or gain / delta > best[0]:
                    best = (gain / delta, item.name, units, item_misses, delta)
        if best is not None:
            _rate, name, units, item_misses, delta = best
            allocation[name] = units
            misses[name] = item_misses
            used += delta
            improved = True
    return MckpSolution(
        allocation=allocation,
        total_misses=sum(misses.values()),
        total_units=used,
    )


def solve_mckp_bruteforce(items: Sequence[MckpItem], capacity: int) -> MckpSolution:
    """Exhaustive search; only for tiny instances (tests)."""
    space = 1
    for item in items:
        space *= len(item.choices)
    if space > 2_000_000:
        raise OptimizationError(
            f"brute force over {space} combinations refused"
        )
    best = None
    best_misses = float("inf")
    best_units = None
    for combo in itertools.product(*(item.choices for item in items)):
        units = sum(c[0] for c in combo)
        if units > capacity:
            continue
        misses = sum(c[1] for c in combo)
        if misses < best_misses or (
            misses == best_misses and (best_units is None or units < best_units)
        ):
            best = combo
            best_misses = misses
            best_units = units
    if best is None:
        raise OptimizationError(
            f"infeasible: no combination fits {capacity} units"
        )
    return MckpSolution(
        allocation={
            item.name: choice[0] for item, choice in zip(items, best)
        },
        total_misses=best_misses,
        total_units=best_units or 0,
    )
