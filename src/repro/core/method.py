"""The end-to-end compositional method.

:class:`CompositionalMethod` runs the complete pipeline of the paper on
one application:

1. **Profile** -- measure miss curves for every task and shared static
   region over a menu of allocation sizes (§3.2's ``M_i^s``).
2. **Size buffers** -- apply the FIFO/frame policies of §3/§4.1.
3. **Optimize** -- solve the MCKP/MILP for the task and shared-data
   allocations within the remaining capacity.
4. **Program & simulate** -- apply the plan to a set-partitioned
   platform and run it; also run the conventional shared-cache
   baseline.
5. **Validate** -- the Figure-3 expected-vs-simulated comparison and
   the interference (cross-owner eviction) check.

The resulting :class:`MethodReport` carries everything the paper's
tables, figures and headline numbers are derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cake.config import CakeConfig
from repro.cake.metrics import RunMetrics
from repro.cake.platform import Platform
from repro.core.allocation import BufferPolicy, PartitionPlan, buffer_units
from repro.core.mckp import MckpSolution, items_from_curves, solve_mckp_dp
from repro.core.milp import solve_mckp_milp
from repro.core.mckp import solve_mckp_greedy
from repro.core.profiling import (
    ProfileResult,
    optimized_item_names,
    profile_miss_curves,
)
from repro.core.validate import CompositionalityReport, compare_expected_simulated
from repro.errors import OptimizationError
from repro.kpn.graph import ProcessNetwork
from repro.mem.partition import PartitionMode

__all__ = [
    "CompositionalMethod",
    "MethodConfig",
    "MethodReport",
    "OptimizationResult",
    "cpi_improvement",
    "format_reduction_factor",
    "reduction_factor",
]


@dataclass(frozen=True)
class MethodConfig:
    """Knobs of the end-to-end pipeline."""

    #: Candidate allocation sizes (units); None = powers of two.
    sizes: Optional[Sequence[int]] = None
    fifo_policy: BufferPolicy = BufferPolicy.ALL_HIT
    #: "dp", "greedy" or "milp".
    solver: str = "dp"
    #: Profiling repeats (averaged, as in §3.2).
    profile_repeats: int = 1

    def __post_init__(self) -> None:
        if self.solver not in ("dp", "greedy", "milp"):
            raise OptimizationError(f"unknown solver {self.solver!r}")
        if self.profile_repeats < 1:
            raise OptimizationError(
                f"profile_repeats must be >= 1, got {self.profile_repeats}"
            )
        if self.sizes is not None:
            sizes = list(self.sizes)
            if not sizes:
                raise OptimizationError("sizes menu must not be empty")
            for size in sizes:
                if not isinstance(size, int) or size <= 0:
                    raise OptimizationError(
                        f"sizes must be positive integers, got {size!r}"
                    )
            for small, large in zip(sizes, sizes[1:]):
                if large <= small:
                    raise OptimizationError(
                        f"sizes must be strictly ascending, got {sizes}"
                    )


def reduction_factor(shared_misses: float, partitioned_misses: float) -> float:
    """Shared misses / partitioned misses, with the degenerate cases.

    A perfect partitioned run (zero misses) is ``float("inf")`` -- 0.0
    would read as "no reduction" when the reduction is total; zero
    misses on *both* sides is 1.0 (nothing to reduce).  The single
    definition shared by :class:`MethodReport` and the result store's
    records.
    """
    if partitioned_misses:
        return shared_misses / partitioned_misses
    return float("inf") if shared_misses else 1.0


def cpi_improvement(shared_cpi: float, partitioned_cpi: float) -> float:
    """Relative CPI reduction (the paper's ~20 % / ~4 %)."""
    if shared_cpi == 0:
        return 0.0
    return (shared_cpi - partitioned_cpi) / shared_cpi


def format_reduction_factor(factor: float, precision: int = 2) -> str:
    """Render a miss-reduction factor, including the perfect case.

    A partitioned run with zero misses yields ``float("inf")``; the
    paper-style rendering for that is the infinity sign (every finite
    report would read ``>Nx`` for any N).
    """
    if factor == float("inf"):
        return "∞"
    return f"{factor:.{precision}f}x"


@dataclass
class MethodReport:
    """Everything one pipeline run produced."""

    app_name: str
    profile: ProfileResult
    plan: PartitionPlan
    solution: MckpSolution
    shared_metrics: RunMetrics
    partitioned_metrics: RunMetrics
    compositionality: CompositionalityReport
    items: List[str] = field(default_factory=list)

    # -- headline numbers --------------------------------------------------

    @property
    def miss_reduction_factor(self) -> float:
        """Shared misses / partitioned misses (the paper's 5x / 6.5x).

        A perfect partitioned run (zero misses) is ``float("inf")`` --
        0.0 would read as "no reduction" when the reduction is total.
        """
        return reduction_factor(
            self.shared_metrics.l2_misses, self.partitioned_metrics.l2_misses
        )

    @property
    def shared_miss_rate(self) -> float:
        """L2 miss rate with the conventional shared cache."""
        return self.shared_metrics.l2_miss_rate

    @property
    def partitioned_miss_rate(self) -> float:
        """L2 miss rate with the optimized partitioning."""
        return self.partitioned_metrics.l2_miss_rate

    @property
    def cpi_improvement(self) -> float:
        """Relative CPI reduction (the paper's ~20 % / ~4 %)."""
        return cpi_improvement(
            self.shared_metrics.mean_cpi, self.partitioned_metrics.mean_cpi
        )

    def summary(self) -> str:
        """Digest in the shape of the paper's §5 reporting."""
        shared, part = self.shared_metrics, self.partitioned_metrics
        lines = [
            f"application          : {self.app_name}",
            f"items optimized      : {len(self.items)}",
            f"plan units           : {self.plan.used_units}/{self.plan.total_units}",
            f"L2 miss rate         : {shared.l2_miss_rate:.2%} shared -> "
            f"{part.l2_miss_rate:.2%} partitioned",
            f"L2 misses            : {shared.l2_misses:,} -> {part.l2_misses:,} "
            f"({format_reduction_factor(self.miss_reduction_factor)} fewer)",
            f"CPI                  : {shared.mean_cpi:.3f} -> {part.mean_cpi:.3f} "
            f"({self.cpi_improvement:.1%} better)",
            f"cross-owner evicts   : {shared.l2_cross_evictions:,} -> "
            f"{part.l2_cross_evictions:,}",
            f"compositionality     : max diff "
            f"{self.compositionality.max_relative_difference:.2%} of total misses",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class OptimizationResult:
    """What the optimization step produced, explicitly.

    Earlier versions returned only the plan and stashed the solver
    solution on the method instance (``_last_solution``); callers that
    need the MCKP solution now receive it in the same return value.
    """

    plan: PartitionPlan
    solution: MckpSolution


class CompositionalMethod:
    """Profile -> optimize -> partition -> simulate -> validate."""

    def __init__(
        self,
        network_builder: Callable[[], ProcessNetwork],
        platform_config: Optional[CakeConfig] = None,
        method_config: Optional[MethodConfig] = None,
    ):
        self.network_builder = network_builder
        self.platform_config = (
            platform_config if platform_config is not None else CakeConfig()
        )
        self.method_config = (
            method_config if method_config is not None else MethodConfig()
        )

    # -- pipeline steps ----------------------------------------------------

    def profile(self) -> ProfileResult:
        """Step 1: measure the miss curves."""
        return profile_miss_curves(
            self.network_builder,
            self.platform_config,
            sizes=self.method_config.sizes,
            fifo_policy=self.method_config.fifo_policy,
            repeats=self.method_config.profile_repeats,
        )

    def optimize(self, profile: ProfileResult) -> OptimizationResult:
        """Steps 2+3: size buffers, solve the MCKP for the rest."""
        config = self.platform_config
        network = self.network_builder()
        buffers = buffer_units(
            network, config.unit_bytes, self.method_config.fifo_policy
        )
        budget = config.n_allocation_units - sum(buffers.values())
        if budget <= 0:
            raise OptimizationError(
                "buffer allocations already exceed the cache"
            )
        items = items_from_curves(
            profile.curve_list(optimized_item_names(network)),
            profile.sizes,
        )
        solver = {
            "dp": solve_mckp_dp,
            "greedy": solve_mckp_greedy,
            "milp": solve_mckp_milp,
        }[self.method_config.solver]
        solution = solver(items, budget)
        plan = PartitionPlan.from_parts(
            optimized=solution.allocation,
            buffers=buffers,
            total_units=config.n_allocation_units,
            predicted_misses=solution.total_misses,
        )
        return OptimizationResult(plan=plan, solution=solution)

    # -- the three reusable phases ----------------------------------------
    #
    # ``run()`` is plan -> apply -> measure; the online scenario engine
    # (:mod:`repro.exp.dynamic`) reuses the same phases per epoch: plan
    # against cached curves at every arrival, apply onto the *live*
    # platform, measure per epoch instead of per run.

    def plan(self, profile: Optional[ProfileResult] = None) -> OptimizationResult:
        """Plan phase: profile (unless injected) and optimize."""
        if profile is None:
            profile = self.profile()
        return self.optimize(profile)

    def apply(
        self,
        plan: Optional[PartitionPlan] = None,
        platform: Optional[Platform] = None,
    ) -> Platform:
        """Apply phase: build (or take) a platform and program the plan.

        ``plan=None`` builds the conventional shared-cache platform;
        with a plan, a set-partitioned platform is programmed through
        the cache controller.  Passing ``platform`` programs an
        existing (not yet run) platform instead of building one.
        """
        if platform is None:
            mode = (
                PartitionMode.SHARED if plan is None
                else PartitionMode.SET_PARTITIONED
            )
            platform = Platform(
                self.network_builder(), self.platform_config, mode=mode
            )
        if plan is not None:
            plan.apply(platform)
        return platform

    @staticmethod
    def measure(platform: Platform) -> RunMetrics:
        """Measure phase: run the programmed platform to completion."""
        return platform.run()

    def simulate(
        self, plan: Optional[PartitionPlan] = None
    ) -> RunMetrics:
        """Step 4: run shared (plan=None) or partitioned (plan given)."""
        return self.measure(self.apply(plan))

    def run(
        self,
        profile: Optional[ProfileResult] = None,
        shared_metrics: Optional[RunMetrics] = None,
    ) -> MethodReport:
        """The full pipeline.

        ``profile`` and ``shared_metrics`` can be injected by callers
        that already measured them (the experiment runner memoizes both
        across grid points); when omitted they are computed here.
        """
        if profile is None:
            profile = self.profile()
        optimization = self.optimize(profile)
        if shared_metrics is None:
            shared_metrics = self.measure(self.apply(None))
        partitioned_metrics = self.measure(self.apply(optimization.plan))
        network = self.network_builder()
        items = optimized_item_names(network)
        compositionality = compare_expected_simulated(
            profile, optimization.plan, partitioned_metrics, items
        )
        return MethodReport(
            app_name=network.name,
            profile=profile,
            plan=optimization.plan,
            solution=optimization.solution,
            shared_metrics=shared_metrics,
            partitioned_metrics=partitioned_metrics,
            compositionality=compositionality,
            items=items,
        )
