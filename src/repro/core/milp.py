"""MILP backend for the §3.2 formulation via scipy (HiGHS).

This is the formulation exactly as the paper writes it: binary
variables ``x_i^s`` selecting size ``z^s`` for item ``i``,

    minimize   sum_i sum_s x_i^s * M_i^s
    subject to sum_s x_i^s = 1            for every item i
               sum_i sum_s x_i^s * z^s <= capacity

The exact DP in :mod:`repro.core.mckp` solves the same problem; the
test suite asserts both agree, which cross-validates the model
encoding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from scipy import optimize, sparse

from repro.core.mckp import MckpItem, MckpSolution
from repro.errors import OptimizationError

__all__ = ["solve_mckp_milp"]


def solve_mckp_milp(items: Sequence[MckpItem], capacity: int) -> MckpSolution:
    """Solve the partition-sizing MILP with ``scipy.optimize.milp``."""
    if not items:
        return MckpSolution(allocation={}, total_misses=0.0, total_units=0)
    n_vars = sum(len(item.choices) for item in items)
    costs = np.empty(n_vars)
    sizes = np.empty(n_vars)
    var_of: List[tuple] = []
    offset = 0
    rows, cols, vals = [], [], []
    for i, item in enumerate(items):
        for k, (units, misses) in enumerate(item.choices):
            costs[offset] = misses
            sizes[offset] = units
            var_of.append((i, k))
            rows.append(i)
            cols.append(offset)
            vals.append(1.0)
            offset += 1
    # One-choice-per-item equality rows.
    selection = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(items), n_vars)
    )
    constraints = [
        optimize.LinearConstraint(selection, lb=1.0, ub=1.0),
        optimize.LinearConstraint(sizes[None, :], lb=0.0, ub=float(capacity)),
    ]
    result = optimize.milp(
        c=costs,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=optimize.Bounds(0.0, 1.0),
    )
    if not result.success:
        raise OptimizationError(f"MILP solver failed: {result.message}")
    chosen = np.flatnonzero(np.round(result.x) > 0.5)
    allocation: Dict[str, int] = {}
    total_misses = 0.0
    for var in chosen:
        i, k = var_of[var]
        item = items[i]
        if item.name in allocation:
            raise OptimizationError(
                f"MILP returned two choices for {item.name!r}"
            )  # pragma: no cover
        allocation[item.name] = item.choices[k][0]
        total_misses += item.choices[k][1]
    if len(allocation) != len(items):
        raise OptimizationError("MILP returned an incomplete selection")
    return MckpSolution(
        allocation=allocation,
        total_misses=total_misses,
        total_units=sum(allocation.values()),
    )
