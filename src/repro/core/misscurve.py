"""Miss curves: misses of one owner as a function of allocated cache.

§3.2 defines ``M_i^s = M_i(z^s)``, the number of misses of task ``i``
with ``z^s`` cache sets, "obtained by simulation or program analysis",
averaged over several simulations.  :class:`MissCurve` stores these
samples (in allocation *units*), cleans them up (averaging repeated
measurements, enforcing monotonicity -- more cache never causes more
misses in a compositional system) and interpolates between sampled
sizes conservatively.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import OptimizationError

__all__ = ["MissCurve"]


@dataclass
class MissCurve:
    """Misses as a function of allocated units for one owner."""

    owner: str
    _samples: Dict[int, List[float]] = field(default_factory=dict)

    def add_sample(self, units: int, misses: float) -> None:
        """Record one measurement of misses at ``units`` of cache."""
        if units <= 0:
            raise OptimizationError(
                f"{self.owner}: sample at non-positive size {units}"
            )
        if misses < 0:
            raise OptimizationError(f"{self.owner}: negative misses {misses}")
        self._samples.setdefault(units, []).append(float(misses))

    @property
    def sizes(self) -> List[int]:
        """Sampled sizes, ascending."""
        return sorted(self._samples)

    def mean(self, units: int) -> float:
        """Average measured misses at exactly ``units``."""
        try:
            values = self._samples[units]
        except KeyError:
            raise OptimizationError(
                f"{self.owner}: no sample at {units} units"
            ) from None
        return sum(values) / len(values)

    def monotone_means(self) -> List[Tuple[int, float]]:
        """(size, misses) pairs with monotone non-increasing misses.

        Raw measurements can be slightly non-monotone (timing noise,
        replacement artifacts); the cleanup takes a running minimum
        from small to large sizes, which is the standard conservative
        repair for miss curves.
        """
        points = []
        best = float("inf")
        for size in self.sizes:
            best = min(best, self.mean(size))
            points.append((size, best))
        return points

    def misses_at(self, units: int) -> float:
        """Misses at ``units``, conservatively interpolated.

        Between samples the curve is flat at the next-smaller sampled
        value (misses never assumed better than measured); below the
        smallest sample it extrapolates with the smallest sample's
        value (conservative for the optimizer: it cannot pretend tiny
        allocations are good); above the largest it is flat.
        """
        points = self.monotone_means()
        if not points:
            raise OptimizationError(f"{self.owner}: empty miss curve")
        sizes = [p[0] for p in points]
        idx = bisect_left(sizes, units)
        if idx < len(sizes) and sizes[idx] == units:
            return points[idx][1]
        if idx == 0:
            return points[0][1]
        return points[idx - 1][1]

    def marginal_gains(self) -> List[Tuple[int, int, float]]:
        """(from_size, to_size, miss reduction) between adjacent samples."""
        points = self.monotone_means()
        return [
            (a[0], b[0], a[1] - b[1]) for a, b in zip(points, points[1:])
        ]

    def knee(self, tolerance: float = 0.02) -> int:
        """Smallest sampled size within ``tolerance`` of the best misses."""
        points = self.monotone_means()
        best = points[-1][1]
        ceiling = best + tolerance * max(1.0, points[0][1] - best)
        for size, misses in points:
            if misses <= ceiling:
                return size
        return points[-1][0]

    @classmethod
    def from_pairs(cls, owner: str, pairs: Iterable[Tuple[int, float]]) -> "MissCurve":
        """Build a curve from (units, misses) tuples."""
        curve = cls(owner)
        for units, misses in pairs:
            curve.add_sample(units, misses)
        return curve

    def __repr__(self) -> str:
        return f"<MissCurve {self.owner!r} sizes={self.sizes}>"
