"""Energy/power objective (§3.1).

"The consumed power depends by the time and the memory traffic that the
system needs to complete all its tasks.  Optimizing the overall
execution time (respectively the number of misses) gives the most power
consumptions reduction."

The model charges energy per L2 access, per DRAM line transfer and
static power per elapsed cycle.  Default coefficients follow the usual
embedded-SoC ordering (DRAM transfer ~20x an L2 access); only *ratios*
between configurations are meaningful, which is how the benchmark
reports them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cake.metrics import RunMetrics

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy split by source (arbitrary units)."""

    l2_energy: float
    dram_energy: float
    static_energy: float

    @property
    def total(self) -> float:
        """Total energy."""
        return self.l2_energy + self.dram_energy + self.static_energy


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients (arbitrary units)."""

    l2_access_energy: float = 1.0
    dram_line_energy: float = 20.0
    static_power_per_cycle: float = 0.002

    def evaluate(self, metrics: RunMetrics) -> EnergyBreakdown:
        """Energy of one platform run."""
        return EnergyBreakdown(
            l2_energy=self.l2_access_energy * metrics.l2_accesses,
            dram_energy=self.dram_line_energy * metrics.dram_lines,
            static_energy=self.static_power_per_cycle * metrics.elapsed_cycles,
        )

    def improvement(self, baseline: RunMetrics, optimized: RunMetrics) -> float:
        """Relative energy reduction of ``optimized`` vs ``baseline``."""
        base = self.evaluate(baseline).total
        opt = self.evaluate(optimized).total
        return (base - opt) / base if base > 0 else 0.0
