"""Measuring miss curves by simulation.

§3.2: "The number of misses of task i with z^s cache sets can be
obtained by simulation or program analysis.  In our model we use an
average over the M_i^s obtained out of different simulations."

The profiler exploits the very property the method establishes --
compositionality: in a *fully partitioned* cache, each owner's misses
depend only on its own allocation.  So one simulation per candidate
size ``s`` (with every optimized item allocated ``s`` units, buffers at
their policy sizes) yields a full column of every item's miss curve.
Because the sum of the trial allocations can exceed the physical L2,
profiling runs on an enlarged *virtual* L2 with the same line size,
associativity and unit granularity -- per-owner miss counts in a
partitioned cache are independent of the total set count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.cake.config import CakeConfig
from repro.cake.platform import Platform
from repro.core.allocation import SHARED_ITEMS, BufferPolicy, buffer_units
from repro.core.misscurve import MissCurve
from repro.errors import OptimizationError
from repro.kpn.graph import ProcessNetwork
from repro.mem.partition import PartitionMode

__all__ = [
    "ProfileResult",
    "optimized_item_names",
    "profile_miss_curves",
    "profiling_passes",
    "reset_profiling_passes",
]

#: Process-wide count of profiling sweeps executed (one per
#: :func:`profile_miss_curves` call).  The cache layers promise that a
#: warm sweep re-profiles *nothing*; this counter is the ground truth
#: those assertions (smoke gate, differential tests) check against --
#: memo-table bookkeeping could lie, an unchanged counter cannot.
#: Locked because the async runner backend profiles on threads.
_PASS_COUNT = 0
_PASS_COUNT_LOCK = threading.Lock()


def profiling_passes() -> int:
    """How many profiling sweeps this process has executed."""
    return _PASS_COUNT


def reset_profiling_passes() -> None:
    """Zero the pass counter (test isolation)."""
    global _PASS_COUNT
    with _PASS_COUNT_LOCK:
        _PASS_COUNT = 0


def optimized_item_names(network: ProcessNetwork) -> List[str]:
    """Owner names the MCKP sizes: every task + the shared regions."""
    names = [f"task:{name}" for name in network.tasks]
    names.extend(SHARED_ITEMS)
    return names


@dataclass
class ProfileResult:
    """Miss curves plus per-owner execution-time curves."""

    curves: Dict[str, MissCurve] = field(default_factory=dict)
    #: owner -> {units: l2 accesses} (for the throughput/power models).
    accesses: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: task name -> instructions per run (size-independent).
    instructions: Dict[str, int] = field(default_factory=dict)
    sizes: List[int] = field(default_factory=list)

    def curve(self, owner: str) -> MissCurve:
        """Miss curve of one owner."""
        try:
            return self.curves[owner]
        except KeyError:
            raise OptimizationError(f"no curve for owner {owner!r}") from None

    def curve_list(self, owners: Sequence[str]) -> List[MissCurve]:
        """Curves for ``owners``, in order."""
        return [self.curve(owner) for owner in owners]


def _virtual_sets(
    config: CakeConfig, n_items: int, size: int, buffers_total: int
) -> int:
    """Set count of the profiling L2: fits every trial partition."""
    needed_units = n_items * size + buffers_total + 1
    needed_sets = needed_units * config.allocation_unit_sets
    sets = config.hierarchy.l2_geometry.sets
    while sets < needed_sets:
        sets *= 2
    return sets


def profile_miss_curves(
    network_builder: Callable[[], ProcessNetwork],
    config: CakeConfig,
    sizes: Optional[Sequence[int]] = None,
    fifo_policy: BufferPolicy = BufferPolicy.ALL_HIT,
    repeats: int = 1,
) -> ProfileResult:
    """Measure miss curves for every optimized item.

    ``network_builder`` must build a fresh network per call (platforms
    consume them).  ``sizes`` defaults to powers of two from 1 up to a
    quarter of the allocatable units.  ``repeats`` averages multiple
    runs with different seeds (the paper averages M_i^s over several
    simulations).
    """
    global _PASS_COUNT
    with _PASS_COUNT_LOCK:
        _PASS_COUNT += 1
    if sizes is None:
        sizes = []
        size = 1
        while size <= config.n_allocation_units // 4:
            sizes.append(size)
            size *= 2
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes:
        raise OptimizationError("profiling needs at least one size")

    result = ProfileResult(sizes=list(sizes))
    reference = network_builder()
    items = optimized_item_names(reference)
    buffers = buffer_units(reference, config.unit_bytes, fifo_policy)
    buffers_total = sum(buffers.values())

    for size in sizes:
        for repeat in range(repeats):
            network = network_builder()
            run_config = config.with_l2_sets(
                _virtual_sets(config, len(items), size, buffers_total)
            )
            if repeats > 1:
                run_config = replace(run_config, seed=config.seed + repeat)
            platform = Platform(
                network, run_config, mode=PartitionMode.SET_PARTITIONED
            )
            allocation = dict(buffers)
            for item in items:
                allocation[item] = size
            platform.cache_controller.program_set_partitions(allocation)
            metrics = platform.run()
            for item in items:
                stats = metrics.l2_by_owner.get(item)
                misses = stats.misses if stats else 0
                accesses = stats.accesses if stats else 0
                curve = result.curves.setdefault(item, MissCurve(item))
                curve.add_sample(size, misses)
                result.accesses.setdefault(item, {}).setdefault(size, 0.0)
                result.accesses[item][size] += accesses / repeats
            for task_name, stats in metrics.task_stats.items():
                result.instructions[task_name] = stats.instructions
    return result
