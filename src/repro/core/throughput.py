"""Analytic throughput model and task-to-processor assignment (§3.1).

The paper defines the execution throughput as the number of complete
application executions per time unit, ``1 / max_k Y(P_k)``, where
``Y(P_k)`` is processor ``k``'s busy time per application period:

    Y(P_k) = sum_{tasks i on P_k} t_i(c(T_i)) + t_switch + t_idle

With static task assignment the sum is exact regardless of intra-CPU
scheduling order.  ``t_i`` is estimated from profiling: base CPI on the
task's instructions plus stall cycles for its L2 accesses and misses at
the chosen allocation.

:func:`assign_tasks_lpt` implements the classical longest-processing-
time bin packing for the "task to processor assignment" the paper says
must be co-tuned with the cache allocation, followed by a pairwise
swap local search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cake.config import CakeConfig
from repro.core.profiling import ProfileResult
from repro.errors import OptimizationError

__all__ = ["ThroughputModel", "assign_tasks_lpt"]


@dataclass
class ThroughputModel:
    """Estimate per-task times and per-processor loads."""

    config: CakeConfig
    profile: ProfileResult

    def task_time(self, task_name: str, units: int) -> float:
        """Estimated cycles of one task per application run.

        ``instructions x issue_cpi + accesses x l2_hit + misses x dram``
        -- the same decomposition the simulator charges, minus the
        second-order effects (bus contention, bank conflicts, task
        switching) that the paper's model also neglects.
        """
        owner = f"task:{task_name}"
        hierarchy = self.config.hierarchy
        instructions = self.profile.instructions.get(task_name)
        if instructions is None:
            raise OptimizationError(f"no profile for task {task_name!r}")
        curve = self.profile.curve(owner)
        misses = curve.misses_at(units)
        access_map = self.profile.accesses.get(owner, {})
        if access_map:
            nearest = min(access_map, key=lambda s: abs(s - units))
            accesses = access_map[nearest]
        else:
            accesses = 0.0
        return (
            instructions * hierarchy.issue_cpi
            + accesses * hierarchy.l2_hit_cycles
            + misses * hierarchy.dram.access_cycles
        )

    def processor_times(
        self,
        assignment: Dict[str, int],
        allocation: Dict[str, int],
    ) -> List[float]:
        """``Y(P_k)`` for every processor under a static assignment."""
        times = [0.0] * self.config.n_cpus
        switch = self.config.switch_cycles
        for task_name, cpu in assignment.items():
            if not 0 <= cpu < self.config.n_cpus:
                raise OptimizationError(f"cpu {cpu} out of range")
            units = allocation.get(f"task:{task_name}", 1)
            times[cpu] += self.task_time(task_name, units) + switch
        return times

    def throughput(
        self,
        assignment: Dict[str, int],
        allocation: Dict[str, int],
    ) -> float:
        """Applications per cycle: ``1 / max_k Y(P_k)``."""
        worst = max(self.processor_times(assignment, allocation))
        if worst <= 0:
            raise OptimizationError("empty assignment")
        return 1.0 / worst


def assign_tasks_lpt(
    task_times: Dict[str, float],
    n_cpus: int,
    improve_rounds: int = 2,
) -> Dict[str, int]:
    """Minimize ``max_k Y(P_k)`` with LPT + pairwise-swap local search."""
    if n_cpus <= 0:
        raise OptimizationError("n_cpus must be positive")
    loads = [0.0] * n_cpus
    assignment: Dict[str, int] = {}
    for name in sorted(task_times, key=lambda n: -task_times[n]):
        cpu = min(range(n_cpus), key=lambda c: loads[c])
        assignment[name] = cpu
        loads[cpu] += task_times[name]

    names: Sequence[str] = list(assignment)
    for _ in range(improve_rounds):
        improved = False
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                ca, cb = assignment[a], assignment[b]
                if ca == cb:
                    continue
                ta, tb = task_times[a], task_times[b]
                new_a = loads[ca] - ta + tb
                new_b = loads[cb] - tb + ta
                if max(new_a, new_b) + 1e-9 < max(loads[ca], loads[cb]):
                    assignment[a], assignment[b] = cb, ca
                    loads[ca], loads[cb] = new_b, new_a
                    improved = True
        if not improved:
            break
    return assignment
