"""Compositionality validation -- the Figure 3 experiment.

Figure 3 compares, per task, the number of misses *expected* from the
§3.2 model (the miss curve evaluated at the chosen allocation) against
the misses *simulated* in the full multi-application run with the best
partitioning.  The paper's acceptance criterion:

    "the largest difference for a task between the expected and
    simulated number of misses relative to the overall simulated
    number of misses is 2%"

Small residuals come from the effects the model neglects: task
switching, L1 state, bus contention.  Our simulator deliberately models
those effects (bus surcharge, DRAM bank conflicts, L1 reload after
switches), so the residuals are small but non-zero -- as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cake.metrics import RunMetrics
from repro.core.allocation import PartitionPlan
from repro.core.profiling import ProfileResult

__all__ = ["CompositionalityReport", "compare_expected_simulated"]


@dataclass
class CompositionalityReport:
    """Per-item expected vs simulated misses plus the §5 metric."""

    rows: List[Tuple[str, float, int]] = field(default_factory=list)
    total_simulated: int = 0

    @property
    def max_relative_difference(self) -> float:
        """``max_i |expected_i - simulated_i| / total_simulated``."""
        if self.total_simulated <= 0:
            return 0.0
        return max(
            (abs(expected - simulated) / self.total_simulated
             for _name, expected, simulated in self.rows),
            default=0.0,
        )

    def is_compositional(self, tolerance: float = 0.02) -> bool:
        """The paper's acceptance check (2 % by default)."""
        return self.max_relative_difference <= tolerance

    def worst_item(self) -> Tuple[str, float, int]:
        """The row with the largest absolute difference."""
        return max(self.rows, key=lambda row: abs(row[1] - row[2]))


def compare_expected_simulated(
    profile: ProfileResult,
    plan: PartitionPlan,
    metrics: RunMetrics,
    items: List[str],
) -> CompositionalityReport:
    """Build the Figure-3 comparison for the optimized items."""
    report = CompositionalityReport(total_simulated=metrics.l2_misses)
    for item in items:
        expected = profile.curve(item).misses_at(plan.units_of(item))
        stats = metrics.l2_by_owner.get(item)
        simulated = stats.misses if stats else 0
        report.rows.append((item, expected, simulated))
    return report
