"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class MemoryModelError(ReproError):
    """Raised for invalid memory-system configuration or access."""


class AddressError(MemoryModelError):
    """Raised when an address falls outside every known region."""


class PartitionError(MemoryModelError):
    """Raised for invalid cache-partition configuration."""


class SchedulingError(ReproError):
    """Raised for invalid scheduler or task state transitions."""


class NetworkError(ReproError):
    """Raised for malformed process networks (unknown ports, bad FIFOs)."""


class OptimizationError(ReproError):
    """Raised when a partitioning optimization problem is infeasible."""


class ConfigurationError(ReproError):
    """Raised for inconsistent platform or workload configuration."""


class ServiceError(ReproError):
    """Raised for sweep-service failures (transport, protocol, task)."""
