"""Declarative experiments: scenario grids, sweep runner, result store.

The paper's evaluation -- and every scaling direction on the roadmap --
is a *sweep*: many (workload, platform, method) points, not one.  This
package makes that the top-level API:

- :mod:`repro.exp.scenario` -- the frozen :class:`Scenario` spec, its
  content hashes (scenario identity, profiling identity), and the JSON
  payload forms of the expensive measurements.
- :mod:`repro.exp.workloads` -- the named-workload registry scenarios
  refer to (serialisable, pool-safe).
- :mod:`repro.exp.grid` -- :class:`Grid` / :func:`sweep`, expanding
  axes (L2 size/ways, CPUs, solver, sizes menu, app, seed, ...) into
  deterministic scenario lists.
- :mod:`repro.exp.cache` -- :class:`ProfileCache`, the persistent
  content-addressed store of profiling sweeps and baselines (atomic,
  checksummed, ``python -m repro.exp.cache stats|clear``).
- :mod:`repro.exp.runner` -- :class:`ExperimentRunner`, executing
  scenarios through a pluggable :class:`ExecutionBackend` (inline,
  process pool, asyncio) with cached profiling and shared baselines,
  streaming records into a store.
- :mod:`repro.exp.service` -- the distributed half: an asyncio
  work-queue server (``python -m repro.exp.service serve``), pulling
  workers with leases/heartbeats/retry, and :class:`RemoteBackend`
  (``backend="remote"``) shipping the same JSON tasks over HTTP
  against a shared profile cache.
- :mod:`repro.exp.store` -- :class:`ResultStore`, the append-only JSONL
  record stream with indexed load/filter/to-table queries.

Typical use::

    from repro.exp import ExperimentRunner, Scenario, WorkloadSpec, sweep

    base = Scenario(workload=WorkloadSpec("mpeg2", {"scale": "paper"}))
    scenarios = sweep(base, l2_size_kb=[256, 512, 1024], solver=["dp"])
    store = ExperimentRunner(workers=4, cache=True).run(scenarios)
    print(store.to_table())
"""

from repro.exp.cache import ProfileCache, default_cache_dir, resolve_cache
from repro.exp.dynamic import (
    DynamicResult,
    DynamicScenario,
    EpochRecord,
    TransitionOutcome,
    merge_networks,
    run_dynamic,
)
from repro.exp.grid import AXES, Grid, sweep
from repro.exp.runner import (
    AsyncBackend,
    ExecutionBackend,
    ExperimentRunner,
    InlineBackend,
    KNOWN_BACKENDS,
    ProcessPoolBackend,
    ScenarioOutcome,
    clear_caches,
    execute_scenario,
    make_backend,
    run_scenario,
)

# Imported after runner: the service's worker and backend modules hang
# off the runner's task protocol and AsyncBackend seam.
from repro.exp.service import (
    RemoteBackend,
    ServiceClient,
    SweepServer,
    run_worker,
)
from repro.exp.scenario import (
    Scenario,
    TransitionSpec,
    WorkloadSpec,
    content_hash,
    profile_from_payload,
    profile_to_payload,
    run_metrics_from_payload,
    run_metrics_to_payload,
)
from repro.exp.store import SCHEMA_VERSION, ResultStore, ScenarioRecord
from repro.exp.workloads import (
    register_workload,
    registered_workloads,
    workload_builder,
)

__all__ = [
    "AXES",
    "AsyncBackend",
    "DynamicResult",
    "DynamicScenario",
    "EpochRecord",
    "ExecutionBackend",
    "ExperimentRunner",
    "Grid",
    "InlineBackend",
    "KNOWN_BACKENDS",
    "ProcessPoolBackend",
    "ProfileCache",
    "RemoteBackend",
    "ResultStore",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRecord",
    "ServiceClient",
    "SweepServer",
    "TransitionOutcome",
    "TransitionSpec",
    "WorkloadSpec",
    "clear_caches",
    "content_hash",
    "default_cache_dir",
    "execute_scenario",
    "make_backend",
    "merge_networks",
    "run_dynamic",
    "profile_from_payload",
    "profile_to_payload",
    "register_workload",
    "registered_workloads",
    "resolve_cache",
    "run_metrics_from_payload",
    "run_metrics_to_payload",
    "run_scenario",
    "run_worker",
    "sweep",
    "workload_builder",
]
