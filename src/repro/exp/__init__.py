"""Declarative experiments: scenario grids, sweep runner, result store.

The paper's evaluation -- and every scaling direction on the roadmap --
is a *sweep*: many (workload, platform, method) points, not one.  This
package makes that the top-level API:

- :mod:`repro.exp.scenario` -- the frozen :class:`Scenario` spec and
  its content hashes (scenario identity, profiling identity).
- :mod:`repro.exp.workloads` -- the named-workload registry scenarios
  refer to (serialisable, pool-safe).
- :mod:`repro.exp.grid` -- :class:`Grid` / :func:`sweep`, expanding
  axes (L2 size/ways, CPUs, solver, sizes menu, app, seed, ...) into
  deterministic scenario lists.
- :mod:`repro.exp.runner` -- :class:`ExperimentRunner`, executing
  scenarios inline or on a process pool with memoized profiling and
  shared baselines, streaming records into a store.
- :mod:`repro.exp.store` -- :class:`ResultStore`, the append-only JSONL
  record stream with load/filter/to-table queries.

Typical use::

    from repro.exp import ExperimentRunner, Scenario, WorkloadSpec, sweep

    base = Scenario(workload=WorkloadSpec("mpeg2", {"scale": "paper"}))
    scenarios = sweep(base, l2_size_kb=[256, 512, 1024], solver=["dp"])
    store = ExperimentRunner(workers=4).run(scenarios)
    print(store.to_table())
"""

from repro.exp.grid import AXES, Grid, sweep
from repro.exp.runner import (
    ExperimentRunner,
    ScenarioOutcome,
    clear_caches,
    execute_scenario,
    run_scenario,
)
from repro.exp.scenario import Scenario, WorkloadSpec, content_hash
from repro.exp.store import SCHEMA_VERSION, ResultStore, ScenarioRecord
from repro.exp.workloads import (
    register_workload,
    registered_workloads,
    workload_builder,
)

__all__ = [
    "AXES",
    "ExperimentRunner",
    "Grid",
    "ResultStore",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRecord",
    "WorkloadSpec",
    "clear_caches",
    "content_hash",
    "execute_scenario",
    "register_workload",
    "registered_workloads",
    "run_scenario",
    "sweep",
    "workload_builder",
]
