"""Persistent, content-addressed cache for profiling artifacts.

Profiling sweeps and shared-cache baselines are the expensive steps of
every experiment, and both are pure functions of content hashes
(:attr:`~repro.exp.scenario.Scenario.profile_key` /
:attr:`~repro.exp.scenario.Scenario.baseline_key`).  The in-process
memo tables in :mod:`repro.exp.runner` already exploit that within one
session; :class:`ProfileCache` extends it across sessions, CI runs and
execution backends by storing each measurement as one JSON file under
a content-addressed path::

    <root>/<kind>/<key[:2]>/<key>.json

where ``kind`` is ``profile`` or ``baseline``.  The design rules, in
the replay/consistency spirit of memory-centric transports: identical
keys must yield identical payloads no matter where they were computed,
and a damaged entry must *never* poison a run.

- **Atomic writes.**  Entries are written to a temp file in the target
  directory and ``os.replace``-d into place, so readers only ever see
  complete files and concurrent writers of one key safely race to an
  identical result (last writer wins; both wrote the same content).
- **Versioned envelopes.**  Every file carries ``cache_version`` (the
  envelope/payload layout) *and* ``repro_version`` (the simulator that
  measured it).  Either one stale or future is a miss, never parsed
  further: content keys hash scenario *inputs*, so only the version
  gate keeps a warm cache from serving measurements taken by an older
  simulator whose behavior has since changed.  Bump
  ``repro.__version__`` with any behavior-affecting simulator change.
- **Corruption detection.**  The envelope stores a SHA-256 checksum of
  the canonical payload JSON.  Truncated files, bad JSON, checksum or
  key mismatches all count as misses: the caller recomputes, and the
  recompute's atomic ``put`` overwrites the damage.  No cache problem
  ever raises into a sweep.

- **Bounded growth.**  ``ProfileCache(max_bytes=...)`` prunes the
  least-recently-written entries (LRU by mtime) after every write, and
  ``gc()`` / the ``gc`` CLI subcommand prune on demand.  Deletion is a
  single ``unlink`` per entry, so a concurrent reader either wins the
  race (POSIX keeps an opened file's data alive) or sees an ordinary
  miss and recomputes.

The cache root defaults to ``$REPRO_PROFILE_CACHE`` when set, else
``$XDG_CACHE_HOME/repro/profiles`` (``~/.cache/repro/profiles``).
``python -m repro.exp.cache stats|clear|gc`` inspects, empties or
prunes it.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro import __version__ as REPRO_VERSION
from repro.cake.metrics import RunMetrics
from repro.core.profiling import ProfileResult
from repro.errors import ConfigurationError
from repro.exp.scenario import (
    content_hash,
    profile_from_payload,
    profile_to_payload,
    run_metrics_from_payload,
    run_metrics_to_payload,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "KIND_BASELINE",
    "KIND_PROFILE",
    "ProfileCache",
    "default_cache_dir",
    "resolve_cache",
]

#: Bump when the envelope or payload layout changes incompatibly;
#: entries with any other version read as misses.
#: v2: baseline envelopes no longer persist ``task_stats`` (nothing
#: downstream reads them -- see ``run_metrics_to_payload``), and
#: content keys exclude the hierarchy engine.  v1 entries read as
#: misses and are recomputed/overwritten in place.
CACHE_VERSION = 2

#: Environment override for the default cache root.
CACHE_ENV_VAR = "REPRO_PROFILE_CACHE"

KIND_PROFILE = "profile"
KIND_BASELINE = "baseline"
_KINDS = (KIND_PROFILE, KIND_BASELINE)

_PathLike = Union[str, Path]

#: root -> number of times :meth:`ProfileCache.clear` emptied it this
#: process.  Callers that memoize "key verified on disk" facts (the
#: runner's backfill) fold this into their tokens, so a clear()
#: invalidates every such memo for that root.
_CLEAR_GENERATIONS: Dict[str, int] = {}


def clear_generation(root: _PathLike) -> int:
    """How many times ``root`` has been cleared in this process.

    Keyed by the resolved path, so different spellings of one
    directory share a generation.
    """
    return _CLEAR_GENERATIONS.get(os.path.realpath(root), 0)


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_PROFILE_CACHE`` or the XDG cache dir."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "profiles"


def _checksum(payload: Any) -> str:
    """Full SHA-256 of the canonical payload JSON.

    The same canonicalisation as every other content key in
    :mod:`repro.exp.scenario` -- one rule, so cache checksums can never
    drift from scenario identities.
    """
    return content_hash(payload, digits=64)


def _check_kind(kind: str) -> None:
    if kind not in _KINDS:
        raise ConfigurationError(
            f"unknown cache kind {kind!r} (known: {', '.join(_KINDS)})"
        )


class ProfileCache:
    """On-disk store of profiling payloads, addressed by content key.

    ``get`` returns the stored payload or ``None`` -- *any* problem
    with an entry (missing, truncated, wrong version, bad checksum)
    is a miss, and the damaged file is discarded so the recomputed
    entry replaces it.  ``put`` is atomic.  The typed helpers
    (:meth:`get_profile` / :meth:`get_baseline`) de/serialise the
    domain objects through the payload helpers in
    :mod:`repro.exp.scenario`.
    """

    def __init__(
        self,
        root: Optional[_PathLike] = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        #: Size budget enforced by :meth:`gc` (and opportunistically
        #: after every :meth:`put`); ``None`` disables pruning.
        self.max_bytes = max_bytes
        #: Running upper estimate of the on-disk size, so bounded
        #: caches do not pay a full directory scan per write: the
        #: first budgeted put scans once (via gc), later puts add the
        #: written size and only re-scan when the estimate crosses the
        #: budget.  ``None`` until the first scan.
        self._approx_bytes: Optional[int] = None
        #: Process-local traffic counters (reported by :meth:`stats`).
        self.hit_count = 0
        self.miss_count = 0
        self.rejected_count = 0

    # -- paths -------------------------------------------------------------

    def entry_path(self, kind: str, key: str) -> Path:
        """Content-addressed location of one entry."""
        _check_kind(kind)
        return self.root / kind / key[:2] / f"{key}.json"

    def _entry_files(self, kind: Optional[str] = None) -> Iterator[Path]:
        for k in _KINDS if kind is None else (kind,):
            bucket = self.root / k
            if bucket.is_dir():
                yield from sorted(bucket.glob("*/*.json"))

    def _litter_files(self, kind: Optional[str] = None) -> Iterator[Path]:
        """Temp files a crashed writer left behind (never valid entries)."""
        for k in _KINDS if kind is None else (kind,):
            bucket = self.root / k
            if bucket.is_dir():
                yield from sorted(bucket.glob("*/.*.tmp"))

    # -- raw payload access ------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on any problem."""
        path = self.entry_path(kind, key)
        try:
            raw = path.read_text()
        except OSError:
            self.miss_count += 1
            return None
        except UnicodeDecodeError:  # binary corruption, not valid text
            return self._reject(path)
        try:
            envelope = json.loads(raw)
        except ValueError:
            return self._reject(path)
        if (
            not isinstance(envelope, dict)
            or envelope.get("cache_version") != CACHE_VERSION
            or envelope.get("repro_version") != REPRO_VERSION
            or envelope.get("kind") != kind
            or envelope.get("key") != key
            or "payload" not in envelope
            or envelope.get("checksum") != _checksum(envelope["payload"])
        ):
            return self._reject(path)
        self.hit_count += 1
        return envelope["payload"]

    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self.entry_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_version": CACHE_VERSION,
            "repro_version": REPRO_VERSION,
            "kind": kind,
            "key": key,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        handle, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(json.dumps(envelope, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self.gc()  # first budgeted write: scan + prune once
            else:
                try:
                    self._approx_bytes += path.stat().st_size
                except OSError:
                    self._approx_bytes = None  # re-scan next time
                if self._approx_bytes is None \
                        or self._approx_bytes > self.max_bytes:
                    self.gc()
        return path

    def _reject(self, path: Path) -> None:
        """Count a damaged entry as a miss.

        The file is deliberately *not* unlinked: the recompute that
        follows every miss ends in an atomic :meth:`put` that
        overwrites it, and unlinking here could race a concurrent
        writer that already replaced the damage with a healed entry.
        """
        self.rejected_count += 1
        self.miss_count += 1
        return None

    # -- typed helpers -----------------------------------------------------

    def get_profile(self, key: str) -> Optional[ProfileResult]:
        """The cached miss-curve profile for ``key``, if intact."""
        payload = self.get(KIND_PROFILE, key)
        return None if payload is None else profile_from_payload(payload)

    def put_profile(self, key: str, profile: ProfileResult) -> Path:
        return self.put(KIND_PROFILE, key, profile_to_payload(profile))

    def get_baseline(self, key: str) -> Optional[RunMetrics]:
        """The cached shared-cache baseline run for ``key``, if intact."""
        payload = self.get(KIND_BASELINE, key)
        return None if payload is None else run_metrics_from_payload(payload)

    def put_baseline(self, key: str, metrics: RunMetrics) -> Path:
        """Store a baseline in the slim (task-stats-free) envelope."""
        return self.put(
            KIND_BASELINE, key,
            run_metrics_to_payload(metrics, task_stats=False),
        )

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry counts and sizes on disk plus this process's traffic."""
        per_kind = {}
        total_entries = 0
        total_bytes = 0
        for kind in _KINDS:
            entries = 0
            size = 0
            for path in self._entry_files(kind):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
            for path in self._litter_files(kind):
                try:
                    size += path.stat().st_size  # crashed-writer leftovers
                except OSError:
                    pass
            per_kind[kind] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "kinds": per_kind,
            "process": {
                "hits": self.hit_count,
                "misses": self.miss_count,
                "rejected": self.rejected_count,
            },
        }

    #: Temp files younger than this are presumed to belong to a *live*
    #: writer (between mkstemp and the atomic replace) and are left
    #: alone by :meth:`gc`; only older orphans count as crash litter.
    LITTER_MAX_AGE_S = 60.0

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Prune least-recently-used entries down to the size budget.

        Recency is the file mtime: ``put`` rewrites an entry's file, so
        re-measured (or healed) entries count as fresh, while entries
        no sweep has written for the longest go first.  Orphaned writer
        temp files older than :attr:`LITTER_MAX_AGE_S` are always
        removed (younger ones may belong to an in-flight ``put`` and
        are spared).  Deletion is atomic per entry (one ``unlink``): a
        concurrent reader either opened the file before the unlink --
        POSIX keeps its data alive -- or sees a plain miss and
        recomputes; no reader can observe a partial entry.  Evicting
        any entry bumps the root's clear generation, so in-process
        "verified on disk" memos (the runner's backfill) re-check
        rather than trusting a pruned key.  Returns ``{"removed",
        "freed_bytes", "kept", "kept_bytes"}``.
        """
        import time as _time

        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is not None and budget < 0:
            raise ConfigurationError(
                f"max_bytes must be >= 0, got {budget}"
            )
        removed = 0
        freed = 0
        now = _time.time()
        for litter in self._litter_files():
            try:
                stat = litter.stat()
                if now - stat.st_mtime < self.LITTER_MAX_AGE_S:
                    continue  # possibly a live writer's temp
                litter.unlink()
                removed += 1
                freed += stat.st_size
            except OSError:
                pass
        entries = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        kept = len(entries)
        evicted_entries = 0
        if budget is not None and total > budget:
            entries.sort()  # oldest mtime first
            for _mtime, size, path in entries:
                if total <= budget:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
                freed += size
                kept -= 1
                evicted_entries += 1
        if evicted_entries:
            _CLEAR_GENERATIONS[os.path.realpath(self.root)] = (
                clear_generation(self.root) + 1
            )
        self._approx_bytes = total
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": kept,
            "kept_bytes": total,
        }

    def clear(self) -> int:
        """Remove every entry (and writer litter); returns files deleted."""
        _CLEAR_GENERATIONS[os.path.realpath(self.root)] = (
            clear_generation(self.root) + 1
        )
        self._approx_bytes = 0
        removed = 0
        for files in (self._entry_files(), self._litter_files()):
            for path in files:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        for kind in _KINDS:
            bucket = self.root / kind
            if bucket.is_dir():
                for sub in sorted(bucket.glob("*")):
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
                try:
                    bucket.rmdir()
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"<ProfileCache {self.root}>"


def resolve_cache(
    spec: Union[None, bool, _PathLike, ProfileCache],
) -> Optional[ProfileCache]:
    """Normalise a user-facing cache argument.

    ``None``/``False`` disable disk caching, ``True`` uses the default
    root (env override honoured), a path uses that root, and a
    :class:`ProfileCache` passes through.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return ProfileCache()
    if isinstance(spec, ProfileCache):
        return spec
    if isinstance(spec, (str, Path)):
        return ProfileCache(spec)
    raise ConfigurationError(
        f"cache must be None, bool, path, or ProfileCache, got {spec!r}"
    )


# -- CLI -----------------------------------------------------------------------


def _format_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024 or unit == "GB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - loop always returns


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.exp.cache stats|clear|gc [--dir PATH]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp.cache",
        description="Inspect, prune or empty the persistent profile cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("stats", "entry counts and sizes per kind"),
        ("clear", "delete every cached entry"),
        ("gc", "prune least-recently-used entries to a size budget"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument(
            "--dir",
            default=None,
            help=f"cache root (default: ${CACHE_ENV_VAR} or "
            f"{Path('~/.cache/repro/profiles')})",
        )
        if name == "gc":
            command.add_argument(
                "--max-bytes",
                type=int,
                default=None,
                help="size budget in bytes (0 empties the cache; "
                "omitted: remove only crashed-writer litter, keep "
                "every valid entry)",
            )
        if name == "stats":
            command.add_argument(
                "--json",
                action="store_true",
                help="emit the stats dict as one JSON object (for the "
                "sweep service /status endpoint and scripts)",
            )
    args = parser.parse_args(argv)

    cache = ProfileCache(args.dir)
    if args.command == "gc":
        result = cache.gc(max_bytes=args.max_bytes)
        print(
            f"gc {cache.root}: removed {result['removed']} files "
            f"({_format_bytes(result['freed_bytes'])}), kept "
            f"{result['kept']} entries "
            f"({_format_bytes(result['kept_bytes'])})"
        )
    elif args.command == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
            return 0
        print(f"profile cache at {stats['root']}")
        for kind in _KINDS:
            info = stats["kinds"][kind]
            print(
                f"  {kind + 's':10s} {info['entries']:6d} entries  "
                f"{_format_bytes(info['bytes'])}"
            )
        print(
            f"  {'total':10s} {stats['entries']:6d} entries  "
            f"{_format_bytes(stats['bytes'])}"
        )
    elif args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    return 0
