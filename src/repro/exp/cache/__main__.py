"""Entry point for ``python -m repro.exp.cache``."""

import sys

from repro.exp.cache import main

if __name__ == "__main__":
    sys.exit(main())
