"""The online scenario engine: mid-run task arrival and departure.

Static scenarios fix the task set before the platform starts; a
:class:`DynamicScenario` lets whole applications join and leave a
*running* platform at scheduled sim times, the use case §2 of the paper
motivates ("tasks may be started and stopped dynamically") and which
compositionality makes tractable: because each owner's misses depend
only on its own allocation, a transition only has to re-optimize the
*changed* task set.

The engine composes three pieces:

1. **Incremental re-solve** -- at an arrival, the new group's tasks are
   sized by their own MCKP over the cached per-task miss curves
   (:meth:`~repro.exp.scenario.Scenario.profile_requirements` maps each
   join group to the standalone profile of its workload, so arrival of
   an already-profiled task set performs *zero* profiling passes).
   Every surviving owner keeps its exact unit range: survivors are
   untouched by construction, which is the paper's invariant made
   operational.
2. **Transactional replan** -- the transition rides a
   :class:`~repro.sim.kernel.Replan` event: it is queued up front, so
   the compiled engine's whole-schedule segments are bounded by it
   (``Simulator.peek()``), and it fires at URGENT priority, so every op
   at or after the transition time sees the new partition maps on all
   three engines.  Map mutations go through
   :class:`~repro.rtos.cachectl.CacheController`, which quiesces the
   compiled tier, and departures flush only the leavers
   (:meth:`~repro.mem.hierarchy.MemorySystem.repartition_owners`) with
   dirty-victim writeback accounting.
3. **Admission control** -- an arrival is rejected, with a recorded
   reason, when its MCKP has no feasible allocation in the free units
   (``"capacity"``), when no contiguous free fragment can host one of
   its owners (``"fragmentation"``), or when the predicted cycle cost
   exceeds the transition's budget (``"budget"``).  A rejected group
   never attaches and never touches the cache.

Unit placement is managed by a first-fit ledger over the physical unit
space: the base application packs from unit 0, the default pool is
pinned at the top (so unpartitioned strays stay put across every
transition), and the space between is the arrival arena.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cake.config import CakeConfig
from repro.cake.metrics import RunMetrics
from repro.cake.platform import Platform
from repro.core.allocation import buffer_units
from repro.core.mckp import items_from_curves, solve_mckp_dp, solve_mckp_greedy
from repro.core.method import MethodConfig
from repro.core.milp import solve_mckp_milp
from repro.core.misscurve import MissCurve
from repro.core.profiling import (
    ProfileResult,
    optimized_item_names,
    profile_miss_curves,
)
from repro.errors import ConfigurationError, OptimizationError
from repro.exp.scenario import Scenario, TransitionSpec
from repro.kpn.graph import ProcessNetwork
from repro.mem.partition import PartitionMode

__all__ = [
    "DynamicResult",
    "DynamicScenario",
    "EpochRecord",
    "TransitionOutcome",
    "merge_networks",
    "qualified",
    "run_dynamic",
]

_SOLVERS = {
    "dp": solve_mckp_dp,
    "greedy": solve_mckp_greedy,
    "milp": solve_mckp_milp,
}


def qualified(group: str, name: str) -> str:
    """The union-network name of a join-group entity (``group.name``)."""
    return f"{group}.{name}" if group else name


def merge_networks(
    base: ProcessNetwork, joins: Mapping[str, ProcessNetwork]
) -> ProcessNetwork:
    """The union network: base entities unprefixed, joiners ``group.``-ed.

    Shared static regions are sized to the maximum over all member
    networks -- one address space serves every resident application, as
    on the real tile.  Task, FIFO and frame names of each join group
    are prefixed with ``"{group}."`` so identically named entities of
    the base and the joiners coexist.
    """
    from dataclasses import replace as _replace

    nets = [base, *joins.values()]
    merged = ProcessNetwork(
        name="+".join([base.name, *joins]),
        appl_data_bytes=max(n.appl_data_bytes for n in nets),
        appl_bss_bytes=max(n.appl_bss_bytes for n in nets),
        rt_data_bytes=max(n.rt_data_bytes for n in nets),
        rt_bss_bytes=max(n.rt_bss_bytes for n in nets),
    )
    for spec in base.tasks.values():
        merged.add_task(spec)
    for spec in base.fifos.values():
        merged.add_fifo(spec)
    for spec in base.frames.values():
        merged.add_frame_buffer(spec)
    for group, net in joins.items():
        for spec in net.tasks.values():
            merged.add_task(_replace(spec, name=qualified(group, spec.name)))
        for spec in net.fifos.values():
            merged.add_fifo(
                _replace(
                    spec,
                    name=qualified(group, spec.name),
                    producer=qualified(group, spec.producer),
                    consumer=qualified(group, spec.consumer),
                )
            )
        for spec in net.frames.values():
            merged.add_frame_buffer(
                _replace(spec, name=qualified(group, spec.name))
            )
    merged.validate()
    return merged


class _UnitLedger:
    """First-fit ledger of free, contiguous allocation-unit fragments.

    Contiguity is a physical constraint (a set partition is one
    contiguous range of sets), so fragmentation is a *real* admission
    failure mode, not bookkeeping -- the ledger keeps fragments
    explicit and coalesces on free.
    """

    def __init__(self) -> None:
        self._free: List[Tuple[int, int]] = []  # (base, units), by base

    def add(self, base: int, units: int) -> None:
        """Return a fragment to the ledger, merging with neighbours."""
        if units <= 0:
            return
        self._free.append((base, units))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for frag_base, frag_units in self._free:
            if merged and merged[-1][0] + merged[-1][1] >= frag_base:
                prev_base, prev_units = merged[-1]
                end = max(prev_base + prev_units, frag_base + frag_units)
                merged[-1] = (prev_base, end - prev_base)
            else:
                merged.append((frag_base, frag_units))
        self._free = merged

    def allocate(self, units: int) -> Optional[int]:
        """First-fit: the base of a fragment holding ``units``, or None."""
        for i, (base, size) in enumerate(self._free):
            if size >= units:
                if size == units:
                    del self._free[i]
                else:
                    self._free[i] = (base + units, size - units)
                return base
        return None

    def free_units(self) -> int:
        """Total free units (across all fragments)."""
        return sum(units for _base, units in self._free)

    def fragments(self) -> List[Tuple[int, int]]:
        """Snapshot of the free list."""
        return list(self._free)


@dataclass
class EpochRecord:
    """Per-task / per-owner counter deltas over one inter-transition epoch."""

    index: int
    start: float
    end: float
    #: What closed the epoch: ``"join:g"``, ``"leave:g"``, ``"mark"``,
    #: ``"end"``.
    trigger: str
    task_cycles: Dict[str, int] = field(default_factory=dict)
    task_instructions: Dict[str, int] = field(default_factory=dict)
    l2_misses_by_owner: Dict[str, int] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic record form (stable key order, no wall times)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "trigger": self.trigger,
            "task_cycles": dict(sorted(self.task_cycles.items())),
            "task_instructions": dict(sorted(self.task_instructions.items())),
            "l2_misses_by_owner":
                dict(sorted(self.l2_misses_by_owner.items())),
        }


@dataclass
class TransitionOutcome:
    """What one scheduled transition actually did."""

    at: float
    action: str
    group: str
    admitted: bool
    #: Rejection reason: ``"capacity"``, ``"fragmentation"``, ``"budget"``
    #: (empty when admitted).
    reason: str = ""
    predicted_cycles: float = 0.0
    budget: Optional[float] = None
    granted_units: Dict[str, int] = field(default_factory=dict)
    freed_units: int = 0
    #: Dirty victims written back by the departure flush.
    writebacks: int = 0
    #: Host wall seconds spent replanning (execution metadata -- kept
    #: out of :meth:`to_payload` so records stay deterministic).
    wall_s: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic record form (the replan wall time rides in the
        record's ``timing`` block instead)."""
        return {
            "at": self.at,
            "action": self.action,
            "group": self.group,
            "admitted": self.admitted,
            "reason": self.reason,
            "predicted_cycles": self.predicted_cycles,
            "budget": self.budget,
            "granted_units": dict(sorted(self.granted_units.items())),
            "freed_units": self.freed_units,
            "writebacks": self.writebacks,
        }


@dataclass
class DynamicResult:
    """Everything one dynamic run produced."""

    metrics: RunMetrics
    epochs: List[EpochRecord]
    transitions: List[TransitionOutcome]
    #: Owner name -> (base unit, units) of the *initial* layout.
    initial_ranges: Dict[str, Tuple[int, int]]
    total_units: int
    predicted_misses: float

    def replan_wall_s(self) -> List[float]:
        """Per-transition replan latencies (host seconds)."""
        return [outcome.wall_s for outcome in self.transitions]

    def epoch_payloads(self) -> List[Dict[str, Any]]:
        return [epoch.to_payload() for epoch in self.epochs]

    def transition_payloads(self) -> List[Dict[str, Any]]:
        return [outcome.to_payload() for outcome in self.transitions]


class DynamicScenario:
    """A platform run with scheduled online joins, leaves and marks.

    ``base_builder`` builds the resident application; ``join_builders``
    maps each join group name to a builder of the arriving network.
    The platform is built once, on the *union* network
    (:func:`merge_networks`) with every join-group task deferred, so
    address layout and owner ids are stable across the whole run -- a
    control run (``mark`` transitions only) of the same configuration
    is bit-comparable epoch by epoch.

    ``fixed_units`` pins explicit unit counts for named owners (e.g.
    full-residency shared regions); they are excluded from the MCKP.
    """

    def __init__(
        self,
        base_builder: Callable[[], ProcessNetwork],
        cake: Optional[CakeConfig] = None,
        method: Optional[MethodConfig] = None,
        transitions: Tuple[TransitionSpec, ...] = (),
        join_builders: Optional[
            Mapping[str, Callable[[], ProcessNetwork]]
        ] = None,
        engine: Optional[str] = None,
        pool_units: int = 1,
        fixed_units: Optional[Mapping[str, int]] = None,
    ):
        self.base_builder = base_builder
        self.cake = cake if cake is not None else CakeConfig()
        self.method = method if method is not None else MethodConfig()
        self.transitions = tuple(sorted(transitions, key=lambda t: t.at))
        self._join_builders = dict(join_builders or {})
        self._engine = engine
        if pool_units < 1:
            raise ConfigurationError("pool_units must be >= 1")
        self.pool_units = pool_units
        self.fixed_units = dict(fixed_units or {})
        for spec in self.transitions:
            if spec.action == "join" and spec.group not in self._join_builders:
                raise ConfigurationError(
                    f"join group {spec.group!r} has no network builder"
                )
        groups = [t.group for t in self.transitions if t.action == "join"]
        if len(groups) != len(set(groups)):
            raise ConfigurationError("each join group may arrive only once")

        # Filled by run():
        self.platform: Optional[Platform] = None
        self._profiles: Dict[str, ProfileResult] = {}
        self._join_nets: Dict[str, ProcessNetwork] = {}
        self._ledger = _UnitLedger()
        self._ranges: Dict[str, Tuple[int, int]] = {}
        self._initial_ranges: Dict[str, Tuple[int, int]] = {}
        self._predicted_misses = 0.0
        self._epochs: List[EpochRecord] = []
        self._outcomes: List[TransitionOutcome] = []
        self._epoch_start = 0.0
        self._last_snapshot: Tuple[Dict, Dict, Dict] = ({}, {}, {})

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "DynamicScenario":
        """The engine for a declarative dynamic :class:`Scenario`."""
        if scenario.partition_mode is not PartitionMode.SET_PARTITIONED:
            raise ConfigurationError(
                "dynamic scenarios need set partitioning (admission control "
                f"re-solves the MCKP), got {scenario.partition_mode.value!r}"
            )
        join_builders = {
            spec.group: spec.workload.build()
            for spec in scenario.transitions
            if spec.action == "join"
        }
        return cls(
            scenario.workload.build(),
            cake=scenario.effective_cake,
            method=scenario.resolved_method,
            transitions=scenario.transitions,
            join_builders=join_builders,
        )

    # -- profiles ---------------------------------------------------------

    def _profile(self, builder: Callable[[], ProcessNetwork]) -> ProfileResult:
        return profile_miss_curves(
            builder,
            self.cake,
            sizes=self.method.sizes,
            fifo_policy=self.method.fifo_policy,
            repeats=self.method.profile_repeats,
        )

    def _resolve_profiles(
        self, profiles: Optional[Mapping[str, ProfileResult]]
    ) -> None:
        """Fill ``self._profiles`` for group ``""`` (base) + every joiner.

        Injected profiles (the runner's cache layer) win; anything
        missing is measured here.  An arrival whose curves were
        injected therefore costs zero profiling passes.
        """
        self._profiles = dict(profiles or {})
        if "" not in self._profiles:
            self._profiles[""] = self._profile(self.base_builder)
        for group, builder in self._join_builders.items():
            if group not in self._profiles:
                self._profiles[group] = self._profile(builder)

    # -- initial layout ----------------------------------------------------

    def _initial_layout(self, base_net: ProcessNetwork) -> None:
        """Plan and program the base application's partitions.

        Packs base owners from unit 0, pins the default pool at the top
        of the unit space, and withholds *headroom* from the base MCKP:
        for every scheduled join group, its policy-fixed buffer units
        plus one smallest-menu-size allocation per task -- so a
        conforming arrival is never starved by the base plan.
        """
        cfg = self.cake
        total = cfg.n_allocation_units
        buffers = buffer_units(base_net, cfg.unit_bytes, self.method.fifo_policy)
        fixed = dict(buffers)
        for owner, units in self.fixed_units.items():
            if units <= 0:
                raise ConfigurationError(
                    f"fixed owner {owner!r} pinned to {units} units"
                )
            fixed[owner] = units
        headroom = 0
        for group, net in self._join_nets.items():
            group_buffers = buffer_units(
                net, cfg.unit_bytes, self.method.fifo_policy
            )
            headroom += sum(group_buffers.values())
            headroom += len(net.tasks) * min(self._profiles[group].sizes)
        profile = self._profiles[""]
        items = [
            name for name in optimized_item_names(base_net)
            if name not in self.fixed_units
        ]
        available = total - sum(fixed.values()) - self.pool_units
        budget = available - headroom
        floor = len(items) * min(profile.sizes)
        if budget < floor:
            # Headroom is advisory: an oversized arrival reservation
            # must not starve the resident application below a minimal
            # feasible plan -- that arrival is rejected at join time
            # instead ("capacity").
            budget = min(available, floor)
        if budget <= 0:
            raise OptimizationError(
                f"no MCKP capacity left for the base application: "
                f"{total} units - {sum(fixed.values())} fixed - "
                f"{self.pool_units} pool"
            )
        solution = _SOLVERS[self.method.solver](
            items_from_curves(profile.curve_list(items), profile.sizes),
            budget,
        )
        self._predicted_misses = solution.total_misses

        ranges: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for owner, units in {**fixed, **solution.allocation}.items():
            ranges[owner] = (cursor, units)
            cursor += units
        self.platform.cache_controller.program_set_layout(
            ranges, pool=(total - self.pool_units, self.pool_units)
        )
        self._ranges = dict(ranges)
        self._initial_ranges = dict(ranges)
        self._ledger = _UnitLedger()
        self._ledger.add(cursor, total - self.pool_units - cursor)

    # -- epoch bookkeeping -------------------------------------------------

    def _snapshot(self) -> Tuple[Dict, Dict, Dict]:
        """Current cumulative counters (compiled tier synced first)."""
        platform = self.platform
        # l2_stats reads the Python-side models; the compiled engine
        # keeps them C-side between calls, so sync explicitly.
        platform.mem.sync_state()
        cycles = {task.name: task.stats.cycles for task in platform.tasks}
        instructions = {
            task.name: task.stats.instructions for task in platform.tasks
        }
        misses = {
            platform.registry.name_of(owner_id): stats.misses
            for owner_id, stats in platform.mem.l2_stats.per_owner.items()
        }
        return cycles, instructions, misses

    def _close_epoch(self, trigger: str) -> None:
        cycles, instructions, misses = self._snapshot()
        prev_cycles, prev_instructions, prev_misses = self._last_snapshot
        self._epochs.append(
            EpochRecord(
                index=len(self._epochs),
                start=self._epoch_start,
                end=self.platform.sim.now,
                trigger=trigger,
                task_cycles={
                    name: value - prev_cycles.get(name, 0)
                    for name, value in cycles.items()
                },
                task_instructions={
                    name: value - prev_instructions.get(name, 0)
                    for name, value in instructions.items()
                },
                l2_misses_by_owner={
                    name: value - prev_misses.get(name, 0)
                    for name, value in misses.items()
                },
            )
        )
        self._last_snapshot = (cycles, instructions, misses)
        self._epoch_start = self.platform.sim.now

    # -- transitions -------------------------------------------------------

    def _on_transition(self, spec: TransitionSpec) -> None:
        label = spec.group or ",".join(spec.tasks)
        self._close_epoch(
            f"{spec.action}:{label}" if label else spec.action
        )
        started = time.perf_counter()
        if spec.action == "join":
            outcome = self._apply_join(spec)
        elif spec.action == "leave":
            outcome = self._apply_leave(spec)
        else:
            outcome = TransitionOutcome(
                at=self.platform.sim.now,
                action="mark",
                group=spec.group,
                admitted=True,
            )
        outcome.wall_s = time.perf_counter() - started
        self._outcomes.append(outcome)

    def _apply_join(self, spec: TransitionSpec) -> TransitionOutcome:
        platform = self.platform
        group = spec.group
        net = self._join_nets[group]
        profile = self._profiles[group]
        outcome = TransitionOutcome(
            at=platform.sim.now,
            action="join",
            group=group,
            admitted=False,
            budget=spec.budget,
        )

        def reject(reason: str) -> TransitionOutcome:
            outcome.reason = reason
            # Release the arrival reservation even on rejection, or the
            # runners would idle forever waiting for tasks that never
            # come.
            platform.scheduler.arrival_handled()
            return outcome

        buffers = {
            self._qualify_owner(group, owner): units
            for owner, units in buffer_units(
                net, self.cake.unit_bytes, self.method.fifo_policy
            ).items()
        }
        # Incremental re-solve: only the arriving group is optimized,
        # over the *free* units -- every resident owner keeps its range.
        budget = self._ledger.free_units() - sum(buffers.values())
        if budget <= 0:
            return reject("capacity")
        curves = [
            MissCurve.from_pairs(
                f"task:{qualified(group, name)}",
                [
                    (units, profile.curve(f"task:{name}").mean(units))
                    for units in profile.curve(f"task:{name}").sizes
                ],
            )
            for name in net.tasks
        ]
        try:
            solution = solve_mckp_dp(
                items_from_curves(curves, profile.sizes), budget
            )
        except OptimizationError:
            return reject("capacity")
        outcome.predicted_cycles = (
            sum(profile.instructions.get(name, 0) for name in net.tasks)
            + solution.total_misses * self.cake.hierarchy.dram.access_cycles
        )
        if spec.budget is not None and outcome.predicted_cycles > spec.budget:
            return reject("budget")

        placements: List[Tuple[str, int, int]] = []
        for owner, units in {**buffers, **solution.allocation}.items():
            base = self._ledger.allocate(units)
            if base is None:
                for _owner, placed_base, placed_units in placements:
                    self._ledger.add(placed_base, placed_units)
                return reject("fragmentation")
            placements.append((owner, base, units))
        for owner, base, units in placements:
            platform.cache_controller.assign_units(owner, base, units)
            self._ranges[owner] = (base, units)
        outcome.granted_units = {
            owner: units for owner, _base, units in placements
        }
        for name in net.tasks:
            platform.attach_task(qualified(group, name))
        platform.scheduler.arrival_handled()
        outcome.admitted = True
        return outcome

    def _apply_leave(self, spec: TransitionSpec) -> TransitionOutcome:
        platform = self.platform
        if spec.group:
            net = self._join_nets[spec.group]
            task_names = [qualified(spec.group, name) for name in net.tasks]
            owner_names = [f"task:{name}" for name in task_names]
            owner_names += [
                f"fifo:{qualified(spec.group, name)}" for name in net.fifos
            ]
            owner_names += [
                f"frame:{qualified(spec.group, name)}" for name in net.frames
            ]
        else:
            task_names = list(spec.tasks)
            owner_names = [f"task:{name}" for name in spec.tasks]
            owner_names += [f"fifo:{name}" for name in spec.fifos]
            owner_names += [f"frame:{name}" for name in spec.frames]
        for name in task_names:
            platform.detach_task(name)
        owner_ids = [
            platform.registry.register(name) for name in owner_names
        ]
        # Flush only the leavers: survivors keep their residency, which
        # is what keeps the transition invisible to them.
        writebacks = platform.mem.repartition_owners(
            owner_ids, now=platform.sim.now
        )
        freed = 0
        for name in owner_names:
            extent = self._ranges.pop(name, None)
            if extent is None:
                continue
            platform.cache_controller.release_units(name)
            self._ledger.add(*extent)
            freed += extent[1]
        return TransitionOutcome(
            at=platform.sim.now,
            action="leave",
            group=spec.group,
            admitted=True,
            writebacks=writebacks,
            freed_units=freed,
        )

    @staticmethod
    def _qualify_owner(group: str, owner: str) -> str:
        """``fifo:x`` of join group ``g`` becomes ``fifo:g.x``."""
        kind, _, name = owner.partition(":")
        return f"{kind}:{qualified(group, name)}"

    # -- execution ---------------------------------------------------------

    def run(
        self, profiles: Optional[Mapping[str, ProfileResult]] = None
    ) -> DynamicResult:
        """Build the union platform, run it through every transition."""
        self._resolve_profiles(profiles)
        base_net = self.base_builder()
        self._join_nets = {
            group: builder()
            for group, builder in self._join_builders.items()
        }
        deferred = [
            qualified(group, name)
            for group, net in self._join_nets.items()
            for name in net.tasks
        ]
        self.platform = Platform(
            merge_networks(base_net, self._join_nets),
            self.cake,
            mode=PartitionMode.SET_PARTITIONED,
            engine=self._engine,
            deferred=deferred,
        )
        self._initial_layout(base_net)

        joins = sum(1 for t in self.transitions if t.action == "join")
        if joins:
            # Keep the runners alive across a quiet base: without the
            # reservation they would exit the moment live tasks hit 0.
            self.platform.scheduler.expect_arrivals(joins)
        for spec in self.transitions:
            # Queued now, before the run starts: Simulator.peek() then
            # bounds every compiled whole-schedule segment at the
            # transition time, on all three engines identically.
            self.platform.sim.schedule_replan(
                spec.at, lambda spec=spec: self._on_transition(spec)
            )

        self._epochs = []
        self._outcomes = []
        self._epoch_start = 0.0
        self._last_snapshot = ({}, {}, {})
        self.platform.run()
        self._close_epoch("end")
        return DynamicResult(
            metrics=self.platform.collect_metrics(),
            epochs=self._epochs,
            transitions=self._outcomes,
            initial_ranges=dict(self._initial_ranges),
            total_units=self.cake.n_allocation_units,
            predicted_misses=self._predicted_misses,
        )


def run_dynamic(
    scenario: Scenario,
    profiles: Optional[Mapping[str, ProfileResult]] = None,
) -> DynamicResult:
    """Execute one dynamic :class:`Scenario` (the runner's entry point).

    ``profiles`` maps transition group names (``""`` = base) to the
    cached :class:`ProfileResult` of the matching entry in
    :meth:`Scenario.profile_requirements`; anything missing is measured.
    """
    return DynamicScenario.from_scenario(scenario).run(profiles)
