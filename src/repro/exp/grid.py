"""Grid expansion: axes of scenario variation -> scenario lists.

The paper's evaluation is a set of sweeps (workload x L2 geometry x
method knobs); :class:`Grid` makes that the native shape.  A grid is a
base :class:`~repro.exp.scenario.Scenario` plus named axes; expansion
is the cartesian product in axis-declaration order, so scenario order
-- and therefore result-store order -- is deterministic.

Built-in axes cover the knobs the paper varies::

    scenarios = sweep(
        base,
        l2_size_kb=[128, 256, 512, 1024],
        solver=["dp", "greedy"],
    )

Custom axes pass an ``(name, values, apply)`` triple to
:meth:`Grid.axis`, where ``apply(scenario, value)`` returns the derived
scenario.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.allocation import BufferPolicy
from repro.errors import ConfigurationError
from repro.exp.scenario import Scenario, TransitionSpec, WorkloadSpec
from repro.mem.partition import PartitionMode

__all__ = ["Grid", "sweep"]

AxisApply = Callable[[Scenario, Any], Scenario]


def _axis_workload(scenario: Scenario, value) -> Scenario:
    if isinstance(value, WorkloadSpec):
        spec = value
    elif isinstance(value, str):
        spec = WorkloadSpec(value)
    elif isinstance(value, tuple) and len(value) == 2:
        spec = WorkloadSpec(value[0], dict(value[1]))
    else:
        raise ConfigurationError(
            f"workload axis values must be WorkloadSpec, name, or "
            f"(name, kwargs), got {value!r}"
        )
    return replace(scenario, workload=spec)


def _axis_partition_mode(scenario: Scenario, value) -> Scenario:
    mode = value if isinstance(value, PartitionMode) else PartitionMode(value)
    return replace(scenario, partition_mode=mode)


def _axis_fifo_policy(scenario: Scenario, value) -> Scenario:
    policy = value if isinstance(value, BufferPolicy) else BufferPolicy(value)
    return scenario.with_method(fifo_policy=policy)


#: Built-in axes: name -> apply(scenario, value).
AXES: Dict[str, AxisApply] = {
    "workload": _axis_workload,
    "app": _axis_workload,
    "l2_size": lambda s, v: replace(s, cake=s.cake.with_l2_size(v)),
    "l2_size_kb": lambda s, v: replace(s, cake=s.cake.with_l2_size(v * 1024)),
    "l2_ways": lambda s, v: replace(s, cake=s.cake.with_l2_ways(v)),
    "n_cpus": lambda s, v: s.with_cake(n_cpus=v),
    "allocation_unit_sets": lambda s, v: s.with_cake(allocation_unit_sets=v),
    "scheduling": lambda s, v: s.with_cake(scheduling=v),
    "solver": lambda s, v: s.with_method(solver=v),
    "sizes": lambda s, v: s.with_method(sizes=v),
    "profile_repeats": lambda s, v: s.with_method(profile_repeats=v),
    "fifo_policy": _axis_fifo_policy,
    "partition_mode": _axis_partition_mode,
    "mode": _axis_partition_mode,
    "seed": lambda s, v: replace(s, seed=v),
    "tag": lambda s, v: replace(s, tag=v),
    # Online transitions: each value is a tuple/list of TransitionSpec
    # (or their dict forms).  Content-hashed into scenario_id -- a
    # dynamic point is a different experiment than its static base.
    "transitions": lambda s, v: replace(
        s,
        transitions=tuple(
            t if isinstance(t, TransitionSpec) else TransitionSpec.from_dict(t)
            for t in v
        ),
    ),
    # Execution engine (reference/fast/compiled).  Not part of the
    # scenario identity: engines are bit-identical, so an engine axis
    # produces colliding scenario_ids on purpose -- it exists to prove
    # exactly that (the smoke gate and differential tests sweep it).
    "engine": lambda s, v: s.with_engine(v),
}


class Grid:
    """A base scenario plus named axes of variation."""

    def __init__(self, base: Scenario):
        self.base = base
        self._axes: List[Tuple[str, List[Any], AxisApply]] = []

    def axis(
        self,
        name: str,
        values: Iterable[Any],
        apply: AxisApply = None,
    ) -> "Grid":
        """Add an axis; returns the grid for chaining.

        ``apply`` defaults to the built-in axis of that name; custom
        axes must provide their own apply function.
        """
        values = list(values)
        if not values:
            raise ConfigurationError(f"axis {name!r} has no values")
        if apply is None:
            try:
                apply = AXES[name]
            except KeyError:
                known = ", ".join(sorted(AXES))
                raise ConfigurationError(
                    f"unknown axis {name!r} (known: {known}); pass "
                    f"apply= for a custom axis"
                ) from None
        self._axes.append((name, values, apply))
        return self

    @property
    def axis_names(self) -> List[str]:
        """Axis names in declaration order."""
        return [name for name, _values, _apply in self._axes]

    def __len__(self) -> int:
        count = 1
        for _name, values, _apply in self._axes:
            count *= len(values)
        return count

    def points(self) -> Iterator[Tuple[Dict[str, Any], Scenario]]:
        """(axis-assignment, scenario) pairs in deterministic order."""
        value_lists = [values for _name, values, _apply in self._axes]
        for combo in itertools.product(*value_lists):
            scenario = self.base
            assignment = {}
            for (name, _values, apply), value in zip(self._axes, combo):
                scenario = apply(scenario, value)
                assignment[name] = value
            yield assignment, scenario

    def scenarios(self) -> List[Scenario]:
        """The expanded scenario list (cartesian product)."""
        return [scenario for _assignment, scenario in self.points()]

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())


def sweep(base: Scenario, **axes: Sequence[Any]) -> List[Scenario]:
    """Expand ``base`` over built-in axes given as keyword lists.

    ``sweep(base, l2_size_kb=[256, 512], solver=["dp", "greedy"])``
    yields 4 scenarios, last axis varying fastest.
    """
    grid = Grid(base)
    for name, values in axes.items():
        grid.axis(name, values)
    return grid.scenarios()
