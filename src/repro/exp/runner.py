"""Executing scenarios: cached profiling, pluggable backends, result stream.

The runner turns scenario lists into :class:`~repro.exp.store.ResultStore`
records in three phases:

1. **Profile** -- every scenario that needs miss curves maps to a
   :attr:`~repro.exp.scenario.Scenario.profile_key`; each *unique* key
   is measured exactly once, memoized process-wide, and (when a
   :class:`~repro.exp.cache.ProfileCache` is attached) persisted on
   disk, so repeated grid points, whole L2-capacity or solver sweeps,
   *and separate sessions* never re-profile.
2. **Baseline** -- the conventional shared-cache run depends only on
   (workload, platform); it is cached the same way, so method-knob
   sweeps share one baseline simulation.
3. **Execute** -- each scenario runs its remaining work (optimize,
   partitioned simulation, validation) with the cached pieces injected,
   and streams one record into the store in scenario order.

Every phase moves work through an :class:`ExecutionBackend` -- the
transport seam.  A backend maps a module-level worker callable over
JSON-serialisable task dicts and returns JSON results in task order;
nothing else crosses the boundary.  Execute tasks carry the *cache
path and content keys*, not measurement objects: a worker loads the
profile/baseline it needs from the persistent cache (or from an inline
JSON payload when no cache is attached), which keeps per-task traffic
small and makes the protocol transport-agnostic -- a distributed
backend only needs to move the same JSON.

Three backends ship: :class:`InlineBackend` (serial, easiest to
debug), :class:`ProcessPoolBackend` (fork pool, CPU parallelism) and
:class:`AsyncBackend` (asyncio over a thread pool -- the simulation
core holds no module-global mutable state, so concurrent platforms are
safe).  Every record is a pure function of its scenario and every
measurement payload round-trips exactly, so all backends produce the
same store fingerprint.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.cake.metrics import RunMetrics
from repro.cake.platform import Platform
from repro.core.allocation import optimize_way_assignment
from repro.core.method import MethodReport
from repro.core.profiling import ProfileResult
from repro.errors import ConfigurationError
from repro.exp.cache import (
    KIND_BASELINE,
    KIND_PROFILE,
    ProfileCache,
    clear_generation,
    resolve_cache,
)
from repro.exp.dynamic import run_dynamic
from repro.exp.scenario import (
    Scenario,
    profile_from_payload,
    profile_to_payload,
    run_metrics_from_payload,
    run_metrics_to_payload,
)
from repro.exp.store import SCHEMA_VERSION, ResultStore, ScenarioRecord
from repro.mem.partition import PartitionMode

__all__ = [
    "AsyncBackend",
    "ExecutionBackend",
    "ExperimentRunner",
    "InlineBackend",
    "KNOWN_BACKENDS",
    "ProcessPoolBackend",
    "ScenarioOutcome",
    "clear_caches",
    "execute_scenario",
    "make_backend",
    "run_scenario",
]

#: profile_key -> ProfileResult, shared by every runner in this process.
_PROFILE_CACHE: Dict[str, ProfileResult] = {}
#: baseline_key -> RunMetrics of the shared-cache run.
_BASELINE_CACHE: Dict[str, RunMetrics] = {}
#: (cache root, kind, key) triples this process has verified on disk;
#: lets steady-state warm runs skip re-reading and re-checksumming
#: entries that cannot have changed under us.
_VERIFIED_ON_DISK: set = set()


def clear_caches() -> None:
    """Drop the process-wide profile and baseline memo tables."""
    _PROFILE_CACHE.clear()
    _BASELINE_CACHE.clear()
    _VERIFIED_ON_DISK.clear()


def _compute_profile(scenario: Scenario) -> ProfileResult:
    """One profiling pass for the scenario's profile key."""
    return scenario.build_method().profile()


def _compute_baseline(scenario: Scenario) -> RunMetrics:
    """One conventional shared-cache simulation."""
    return scenario.build_method().simulate(None)


# -- record assembly ---------------------------------------------------------


def _metrics_payload(metrics: RunMetrics) -> Dict[str, Any]:
    """Raw counters of one run, in the stable record schema."""
    return {
        "accesses": metrics.l2_accesses,
        "misses": metrics.l2_misses,
        "miss_rate": metrics.l2_miss_rate,
        "mean_cpi": metrics.mean_cpi,
        "instructions": metrics.instructions,
        "elapsed_cycles": metrics.elapsed_cycles,
        "cross_evictions": metrics.l2_cross_evictions,
        "dram_lines": metrics.dram_lines,
        "misses_by_owner": {
            owner: stats.misses
            for owner, stats in sorted(metrics.l2_by_owner.items())
        },
    }


def _axes_view(scenario: Scenario) -> Dict[str, Any]:
    """The flat filter/table view stored on every record."""
    cake = scenario.effective_cake
    geometry = cake.hierarchy.l2_geometry
    axes = {
        "workload": scenario.workload.name,
        "mode": scenario.partition_mode.value,
        "l2_kb": geometry.size_bytes // 1024,
        "l2_ways": geometry.ways,
        "n_cpus": cake.n_cpus,
        "allocation_unit_sets": cake.allocation_unit_sets,
        "scheduling": cake.scheduling,
        "solver": scenario.method.solver,
        "fifo_policy": scenario.method.fifo_policy.value,
        "sizes": scenario.resolved_sizes,
        "seed": cake.seed,
        "tag": scenario.tag,
    }
    if scenario.transitions:
        # Only dynamic scenarios carry the axis at all: static records
        # (and therefore every pre-existing fingerprint) are unchanged.
        axes["transitions"] = len(scenario.transitions)
    return axes


def _base_record(scenario: Scenario) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "scenario_id": scenario.scenario_id,
        "profile_key": scenario.profile_key if scenario.needs_profile else None,
        # Canonical spec: engine-free, so records (and therefore store
        # fingerprints) are identical across the bit-identical engines.
        "scenario": scenario.to_dict(canonical=True),
        "axes": _axes_view(scenario),
        "plan": None,
        "way_assignment": None,
        "metrics": {"shared": None, "partitioned": None},
        "compositionality": None,
        # The engine rides in the timing block: execution metadata,
        # excluded from identity comparisons like the wall times.
        "timing": {"wall_s": 0.0, "created_unix": 0.0,
                   "engine": scenario.effective_cake.hierarchy.engine},
    }


@dataclass
class ScenarioOutcome:
    """A record plus (when the mode produces one) the full report."""

    record: ScenarioRecord
    report: Optional[MethodReport] = None


def execute_scenario(
    scenario: Scenario,
    profile: Optional[ProfileResult] = None,
    baseline: Optional[RunMetrics] = None,
    profiles: Optional[Dict[str, ProfileResult]] = None,
) -> ScenarioOutcome:
    """Run one scenario with pre-measured pieces injected.

    ``profile`` (miss curves) and ``baseline`` (the shared-cache run)
    are computed here when missing; the runner passes cached ones.
    Dynamic scenarios take ``profiles`` instead: one entry per
    :meth:`~repro.exp.scenario.Scenario.profile_requirements` group.
    """
    started = time.time()
    method = scenario.build_method()
    record = _base_record(scenario)
    report: Optional[MethodReport] = None
    replan_wall_s: Optional[List[float]] = None

    if baseline is None:
        baseline = _compute_baseline(scenario)
    record["metrics"]["shared"] = _metrics_payload(baseline)

    if scenario.is_dynamic:
        resolved: Dict[str, ProfileResult] = dict(profiles or {})
        if profile is not None:
            resolved.setdefault("", profile)
        for group, requirement in scenario.profile_requirements():
            if group not in resolved:
                resolved[group] = _compute_profile(requirement)
        result = run_dynamic(scenario, resolved)
        record["metrics"]["partitioned"] = _metrics_payload(result.metrics)
        record["plan"] = {
            "units_by_owner": {
                owner: units
                for owner, (_base, units)
                in sorted(result.initial_ranges.items())
            },
            "total_units": result.total_units,
            "predicted_misses": result.predicted_misses,
        }
        record["transitions"] = result.transition_payloads()
        record["epochs"] = result.epoch_payloads()
        replan_wall_s = result.replan_wall_s()

    elif scenario.partition_mode is PartitionMode.SHARED:
        pass  # the baseline is the whole experiment

    elif scenario.partition_mode is PartitionMode.SET_PARTITIONED:
        if profile is None:
            profile = _compute_profile(scenario)
        report = method.run(profile=profile, shared_metrics=baseline)
        record["metrics"]["partitioned"] = _metrics_payload(
            report.partitioned_metrics
        )
        record["plan"] = {
            "units_by_owner": dict(sorted(report.plan.units_by_owner.items())),
            "total_units": report.plan.total_units,
            "predicted_misses": report.plan.predicted_misses,
        }
        record["compositionality"] = {
            "max_relative_difference":
                report.compositionality.max_relative_difference,
            "total_simulated": report.compositionality.total_simulated,
        }

    elif scenario.partition_mode is PartitionMode.WAY_PARTITIONED:
        if profile is None:
            profile = _compute_profile(scenario)
        cake = scenario.effective_cake
        network = scenario.workload.build()()
        # Column caching gets its own optimizer: owners are ranked by
        # miss reduction *at way granularity* (k ways ~ k/ways of the
        # unit space, k = 0 legal), not by the set plan's fine-grained
        # unit counts -- the paper's granularity criticism made
        # executable, and the reason way- and set-mode plans diverge.
        way_plan = optimize_way_assignment(
            profile.curve_list(
                [f"task:{name}" for name in network.tasks]
            ),
            cake.hierarchy.l2_geometry.ways,
            cake.n_allocation_units,
        )
        assignment = way_plan.ways_by_owner
        platform = Platform(
            network, cake, mode=PartitionMode.WAY_PARTITIONED
        )
        platform.cache_controller.program_way_partitions(assignment)
        metrics = platform.run()
        record["metrics"]["partitioned"] = _metrics_payload(metrics)
        record["way_assignment"] = {
            owner: list(ways_) for owner, ways_ in sorted(assignment.items())
        }

    else:  # pragma: no cover - PartitionMode is closed
        raise ConfigurationError(
            f"unsupported partition mode {scenario.partition_mode!r}"
        )

    record["timing"] = {
        "wall_s": time.time() - started,
        "created_unix": started,
        "engine": scenario.effective_cake.hierarchy.engine,
    }
    if replan_wall_s is not None:
        # Execution metadata like the wall times: ScenarioRecord's
        # canonical form drops the whole timing block, so replan
        # latency never perturbs fingerprints.
        record["timing"]["replan_wall_s"] = replan_wall_s
    return ScenarioOutcome(record=ScenarioRecord(record), report=report)


def run_scenario(
    scenario: Scenario,
    cache: Union[None, bool, str, ProfileCache] = None,
) -> ScenarioOutcome:
    """Execute one scenario inline, using the process-wide memo tables.

    ``cache`` optionally attaches a persistent
    :class:`~repro.exp.cache.ProfileCache` (same forms as
    :class:`ExperimentRunner` accepts): profiling and baseline work is
    then reused across sessions, not just within this process.
    """
    disk = resolve_cache(cache)
    task = {
        "profile_key":
            scenario.profile_key if scenario.needs_profile else None,
        "baseline_key": scenario.baseline_key,
    }
    return execute_scenario(
        scenario,
        profile=_resolve_profile(scenario, task, cache=disk),
        baseline=_resolve_baseline(scenario, task, cache=disk),
        profiles=_resolve_profile_groups(scenario, task, cache=disk),
    )


# -- the JSON task protocol --------------------------------------------------
#
# Workers are module-level callables taking one JSON-serialisable task
# dict and returning one JSON-serialisable result; they are the whole
# contract between the runner and a backend.  Measurements travel by
# *reference* -- a cache directory plus content keys -- with inline
# payloads only as the fallback when no cache is attached, so the same
# protocol serves fork pools, threads, and (eventually) remote queues.


def _persist(
    disk: Optional[ProfileCache],
    kind: str,
    key: str,
    measurement,
    only_if_absent: bool = False,
) -> bool:
    """Best-effort write-through to the disk cache.

    An unwritable or full cache degrades the sweep to uncached
    computation -- it must never fail it (the read side already treats
    every problem as a miss).  ``only_if_absent`` backfills entries the
    in-process memo resolved without touching disk, so a cache attached
    *after* measurements were memoized still ends up populated.
    Returns whether the entry is now verifiably on disk.
    """
    if disk is None:
        return False
    # The clear-generation folds ProfileCache.clear() into the token,
    # so emptying a cache invalidates every verification memo for it.
    # (Out-of-band deletion -- rm -rf behind a running process -- is
    # healed one session later, when the cold memo probes the disk.)
    token = (str(disk.root), clear_generation(disk.root), kind, key)
    try:
        if only_if_absent:
            if token in _VERIFIED_ON_DISK:
                return True
            # Gate on a *valid* entry, not mere file existence: a stale
            # or corrupt file must not block the backfill forever.
            if disk.get(kind, key) is not None:
                _VERIFIED_ON_DISK.add(token)
                return True
        if kind == KIND_PROFILE:
            disk.put_profile(key, measurement)
        else:
            disk.put_baseline(key, measurement)
        _VERIFIED_ON_DISK.add(token)
        return True
    except OSError:
        return False


def _measure_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """One measurement -- ``kind`` picks profile or baseline work.

    Profiling sweeps and baselines are independent, so the runner
    submits them as one task list and any backend overlaps them.
    """
    scenario = Scenario.from_dict(task["scenario"])
    if task["kind"] == KIND_PROFILE:
        payload = profile_to_payload(_compute_profile(scenario))
    else:
        # Baseline envelopes are slim: per-task stats are never read
        # out of a cached baseline (see run_metrics_to_payload).
        payload = run_metrics_to_payload(
            _compute_baseline(scenario), task_stats=False
        )
    persisted = False
    if task.get("cache_dir"):
        try:
            ProfileCache(task["cache_dir"]).put(
                task["kind"], task["key"], payload
            )
            persisted = True
        except OSError:
            pass  # unwritable cache: the result still returns inline
    return {
        "kind": task["kind"],
        "key": task["key"],
        "payload": payload,
        # The worker knows its own write outcome; the runner uses it to
        # decide whether execute tasks can reference this key by cache
        # path or must carry the payload inline.
        "persisted": persisted,
    }


def _open_cache(
    task: Dict[str, Any], cache: Optional[ProfileCache]
) -> Optional[ProfileCache]:
    """The cache to resolve through: the caller's instance when given
    (its traffic counters then see the lookups), else one bound to the
    task's ``cache_dir``."""
    if cache is not None:
        return cache
    if task.get("cache_dir"):
        return ProfileCache(task["cache_dir"])
    return None


def _resolve(
    kind: str,
    scenario: Scenario,
    task: Dict[str, Any],
    cache: Optional[ProfileCache] = None,
):
    """One measurement by the memo -> disk -> inline -> compute cascade.

    The single resolution path for both kinds: a memo hit returns
    immediately (backfilling a late-attached cache unless the runner's
    planning phase already did, flagged by ``task["persisted"]``), a
    disk or inline-payload hit is memoized, and a measurement that is
    nowhere -- lost or damaged between phases -- is recomputed rather
    than failed, healing the cache for the next reader.
    """
    if kind == KIND_PROFILE:
        key, memo = task["profile_key"], _PROFILE_CACHE
        decode, compute = profile_from_payload, _compute_profile
        inline = task.get("profile")
    else:
        key, memo = task["baseline_key"], _BASELINE_CACHE
        decode, compute = run_metrics_from_payload, _compute_baseline
        inline = task.get("baseline")
    disk = _open_cache(task, cache)
    value = memo.get(key)
    if value is not None:
        if not task.get("persisted"):
            _persist(disk, kind, key, value, only_if_absent=True)
        return value
    if disk is not None:
        value = (
            disk.get_profile(key) if kind == KIND_PROFILE
            else disk.get_baseline(key)
        )
    if value is None and inline is not None:
        value = decode(inline)
        _persist(disk, kind, key, value, only_if_absent=True)
    if value is None:
        value = compute(scenario)
        _persist(disk, kind, key, value)
    memo[key] = value
    return value


def _resolve_profile(
    scenario: Scenario,
    task: Dict[str, Any],
    cache: Optional[ProfileCache] = None,
) -> Optional[ProfileResult]:
    """The task's miss curves (None when the mode needs no profiling)."""
    if not scenario.needs_profile:
        return None
    return _resolve(KIND_PROFILE, scenario, task, cache)


def _resolve_baseline(
    scenario: Scenario,
    task: Dict[str, Any],
    cache: Optional[ProfileCache] = None,
) -> RunMetrics:
    """The task's shared-cache run."""
    return _resolve(KIND_BASELINE, scenario, task, cache)


def _resolve_profile_groups(
    scenario: Scenario,
    task: Dict[str, Any],
    cache: Optional[ProfileCache] = None,
) -> Optional[Dict[str, ProfileResult]]:
    """Per-group miss curves of a dynamic scenario (else ``None``).

    Each :meth:`~repro.exp.scenario.Scenario.profile_requirements`
    entry resolves through the same memo -> disk -> inline -> compute
    cascade as a static profile, keyed by the *requirement's* profile
    key -- a join group whose workload was already profiled standalone
    hits the cache and costs zero profiling passes.
    """
    if not (scenario.is_dynamic and scenario.needs_profile):
        return None
    inline = task.get("profiles") or {}
    profiles: Dict[str, ProfileResult] = {}
    for group, requirement in scenario.profile_requirements():
        sub_task = {
            "profile_key": requirement.profile_key,
            "cache_dir": task.get("cache_dir"),
            "persisted": task.get("persisted"),
            "profile": inline.get(group),
        }
        profiles[group] = _resolve(KIND_PROFILE, requirement, sub_task, cache)
    return profiles


def _execute_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one scenario task; returns the record payload."""
    scenario = Scenario.from_dict(task["scenario"])
    outcome = execute_scenario(
        scenario,
        profile=_resolve_profile(scenario, task),
        baseline=_resolve_baseline(scenario, task),
        profiles=_resolve_profile_groups(scenario, task),
    )
    return outcome.record.payload


# -- execution backends ------------------------------------------------------


class ExecutionBackend:
    """Transport seam: ordered map of JSON tasks through a worker.

    ``map(worker, tasks)`` applies a module-level callable to each
    JSON-serialisable task dict and yields JSON results *in task
    order*.  Implementations choose where the calls run (this thread, a
    fork pool, an event loop, a remote fleet); they must not reorder
    results or require anything beyond JSON to cross the boundary.
    """

    name = "base"
    #: Whether workers see this process's memo tables (threads do,
    #: separate processes and remote transports do not).  When False
    #: and no disk cache is attached, execute tasks carry their
    #: measurements as inline JSON payloads.
    shares_memory = False

    def map(
        self,
        worker,
        tasks: Sequence[Dict[str, Any]],
    ) -> Iterator[Dict[str, Any]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class InlineBackend(ExecutionBackend):
    """Runs every task serially in the calling thread."""

    name = "inline"
    shares_memory = True

    def map(self, worker, tasks):
        for task in tasks:
            yield worker(task)


class ProcessPoolBackend(ExecutionBackend):
    """Runs tasks on a process pool (fork where available).

    The pool is created per :meth:`map` call, after the previous phase
    finished -- with fork, workers therefore inherit the parent's memo
    tables as of that moment, and execute workers usually resolve their
    measurements without touching the disk cache at all.
    """

    name = "process-pool"

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def _make_pool(self) -> ProcessPoolExecutor:
        # fork (where available) inherits registered custom workloads;
        # spawn would only see import-time registrations.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )

    def map(self, worker, tasks):
        tasks = list(tasks)
        if not tasks:
            return
        with self._make_pool() as pool:
            yield from pool.map(worker, tasks)

    def __repr__(self) -> str:
        return f"<ProcessPoolBackend workers={self.workers}>"


class AsyncBackend(ExecutionBackend):
    """Runs tasks concurrently on an asyncio event loop.

    Each task executes in a thread-pool executor with at most
    ``concurrency`` in flight, and results *stream* in task order --
    each yields as soon as it and its predecessors finish, so a
    crashed sweep keeps every record that completed before the crash,
    exactly like the lazy inline/pool backends.  The loop runs on a
    private host thread, so the backend also works when the caller
    already has an event loop running (notebooks, coroutine-driven
    apps).  The simulation core keeps all state per-platform (even the
    C walker passes its whole state per call), so concurrent scenarios
    do not interact -- and because records are pure functions of their
    scenarios, the fingerprint matches the serial one.  This is the
    asyncio face of the transport seam: a remote/queue backend can
    replace ``run_in_executor`` with a network await and keep the rest.
    """

    name = "async"
    shares_memory = True

    def __init__(self, concurrency: int = 4):
        if concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        self.concurrency = concurrency

    async def _dispatch(
        self, worker, task: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run one task once the concurrency gate admits it.

        THE transport seam: the base class awaits a thread-pool
        executor; :class:`~repro.exp.service.RemoteBackend` overrides
        exactly this coroutine with a network await (submit to the
        sweep server, poll for the result) and inherits all the
        ordering, streaming and cleanup machinery unchanged.
        """
        return await asyncio.get_running_loop().run_in_executor(
            None, worker, task
        )

    def map(self, worker, tasks):
        tasks = list(tasks)
        if not tasks:
            return iter(())

        def stream():
            # Everything -- loop thread, task submission -- starts on
            # first iteration, so an unconsumed map() does no work,
            # matching the lazy inline/pool backends.
            loop = asyncio.new_event_loop()
            host = threading.Thread(
                target=loop.run_forever, name="async-backend-loop",
                daemon=True,
            )
            host.start()
            gate = asyncio.Semaphore(self.concurrency)

            async def one(task: Dict[str, Any]) -> Dict[str, Any]:
                async with gate:
                    return await self._dispatch(worker, task)

            futures = [
                asyncio.run_coroutine_threadsafe(one(task), loop)
                for task in tasks
            ]
            try:
                for future in futures:
                    yield future.result()
            finally:
                # On failure (or abandonment): cancel what has not
                # started, drain what has, then retire the loop -- no
                # pending-task warnings, no leaked threads.
                for future in futures:
                    future.cancel()
                for future in futures:
                    try:
                        future.result()
                    except BaseException:
                        pass
                # Executor shutdown must run *on* the host loop: the
                # calling thread may itself be inside a running loop.
                asyncio.run_coroutine_threadsafe(
                    loop.shutdown_default_executor(), loop
                ).result()
                loop.call_soon_threadsafe(loop.stop)
                host.join()
                loop.close()

        return stream()

    def __repr__(self) -> str:
        return f"<AsyncBackend concurrency={self.concurrency}>"


#: Names make_backend understands (reported whole on a bad spec).
KNOWN_BACKENDS = ("auto", "inline", "pool", "async", "remote")


def make_backend(
    spec: Union[None, str, ExecutionBackend], workers: int = 1
) -> ExecutionBackend:
    """Normalise a user-facing backend argument.

    ``None`` picks inline for ``workers=1`` and a process pool
    otherwise (the historical behaviour); strings name a backend kind
    (see :data:`KNOWN_BACKENDS`); instances pass through.  ``remote``
    ships the sweep to the server named by ``$REPRO_SWEEP_SERVER``
    (construct :class:`~repro.exp.service.RemoteBackend` directly to
    name a URL explicitly); ``workers`` then caps the client-side
    in-flight tasks, with a fleet-friendly floor so the default
    ``workers=1`` does not serialise the server's whole fleet.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None or spec == "auto":
        return InlineBackend() if workers == 1 else ProcessPoolBackend(workers)
    if spec == "inline":
        return InlineBackend()
    if spec in ("pool", "process", "process-pool"):
        return ProcessPoolBackend(workers)
    if spec == "async":
        return AsyncBackend(concurrency=workers)
    if spec == "remote":
        # Imported here: the service package imports this module for
        # the JSON task callables, so the dependency must stay one-way
        # at import time.
        from repro.exp.service import RemoteBackend

        return RemoteBackend(concurrency=max(workers, 16))
    raise ConfigurationError(
        f"unknown backend {spec!r} "
        f"(known backends: {', '.join(KNOWN_BACKENDS)}; pass one of "
        f"these names or an ExecutionBackend instance)"
    )


class ExperimentRunner:
    """Executes scenario lists and streams records into a store.

    ``workers=1`` runs inline (deterministic, easiest to debug);
    ``workers=N`` fans phases out over a process pool; ``backend=``
    overrides the transport entirely (name or
    :class:`ExecutionBackend` instance).  All backends produce
    byte-identical stores (modulo timing) because every record is a
    pure function of its scenario.

    ``cache=`` attaches a persistent
    :class:`~repro.exp.cache.ProfileCache`: ``True`` for the default
    location (``$REPRO_PROFILE_CACHE`` honoured), a path, or an
    instance.  With a cache, profiling and baseline measurements are
    reused across sessions and workers receive cache *paths* instead of
    measurement payloads.
    """

    def __init__(
        self,
        workers: int = 1,
        store_path: Optional[str] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        cache: Union[None, bool, str, ProfileCache] = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.store_path = store_path
        self.backend = make_backend(backend, workers)
        self.cache = resolve_cache(cache)
        #: The runner's own store stream: created (truncating any stale
        #: file) on the first :meth:`run`, then appended to -- repeated
        #: runs on one runner accumulate records instead of silently
        #: truncating the JSONL between sweeps.
        self._store: Optional[ResultStore] = None
        #: Filled by :meth:`run`: profiling/baseline work accounting.
        self.last_stats: Dict[str, int] = {}

    def _plan(
        self,
        kind: str,
        scenarios_by_key: Dict[str, Scenario],
        memo: Dict[str, Any],
        on_disk: set,
    ):
        """Resolve keys through memo then disk; return what to compute.

        Memo hits are backfilled to the attached cache (validity-gated,
        once per key) so a cache attached *after* measurement still gets
        populated; every key verified on disk lands in ``on_disk``.
        Returns ``(missing keys -> scenario, disk-hit count)``.
        """
        getter = None
        if self.cache is not None:
            getter = (
                self.cache.get_profile if kind == KIND_PROFILE
                else self.cache.get_baseline
            )
        missing: Dict[str, Scenario] = {}
        from_disk = 0
        for key, scenario in scenarios_by_key.items():
            if key in memo:
                if _persist(self.cache, kind, key, memo[key],
                            only_if_absent=True):
                    on_disk.add((kind, key))
                continue
            if getter is not None:
                cached = getter(key)
                if cached is not None:
                    memo[key] = cached
                    from_disk += 1
                    on_disk.add((kind, key))
                    continue
            missing[key] = scenario
        return missing, from_disk

    def run(
        self,
        scenarios: Iterable[Scenario],
        store: Optional[ResultStore] = None,
    ) -> ResultStore:
        """Execute every scenario; records stream in scenario order."""
        scenarios = list(scenarios)
        if store is None:
            if self._store is None:
                self._store = ResultStore(path=self.store_path)
            store = self._store
        cache_dir = str(self.cache.root) if self.cache is not None else None

        # Phases 1+2: resolve each unique profile key / baseline key
        # through memo then disk; what remains must be measured.
        profile_scenarios: Dict[str, Scenario] = {}
        baseline_scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            if scenario.needs_profile:
                # One requirement for a static scenario (itself); one
                # per join group for a dynamic one -- each group's
                # standalone profile is planned, cached and shared
                # exactly like a static scenario's.
                for _group, requirement in scenario.profile_requirements():
                    profile_scenarios.setdefault(
                        requirement.profile_key, requirement
                    )
            baseline_scenarios.setdefault(scenario.baseline_key, scenario)
        on_disk: set = set()
        missing_profiles, profiles_from_disk = self._plan(
            KIND_PROFILE, profile_scenarios, _PROFILE_CACHE, on_disk
        )
        missing_baselines, baselines_from_disk = self._plan(
            KIND_BASELINE, baseline_scenarios, _BASELINE_CACHE, on_disk
        )

        self.last_stats = {
            "scenarios": len(scenarios),
            "profiles_computed": len(missing_profiles),
            "profiles_cached":
                len(profile_scenarios) - len(missing_profiles)
                - profiles_from_disk,
            "profiles_from_disk": profiles_from_disk,
            "baselines_computed": len(missing_baselines),
            "baselines_cached":
                len(baseline_scenarios) - len(missing_baselines)
                - baselines_from_disk,
            "baselines_from_disk": baselines_from_disk,
        }

        # One combined measurement phase: profiles and baselines are
        # independent, so a parallel backend overlaps them freely
        # instead of draining one kind before starting the other.
        backend = self.backend
        measure_tasks = [
            {"kind": kind, "key": key, "scenario": scenario.to_dict(),
             "cache_dir": cache_dir}
            for kind, missing in (
                (KIND_PROFILE, missing_profiles),
                (KIND_BASELINE, missing_baselines),
            )
            for key, scenario in missing.items()
        ]
        for result in backend.map(_measure_task, measure_tasks):
            if result["kind"] == KIND_PROFILE:
                _PROFILE_CACHE[result["key"]] = profile_from_payload(
                    result["payload"]
                )
            else:
                _BASELINE_CACHE[result["key"]] = run_metrics_from_payload(
                    result["payload"]
                )
            if result["persisted"]:
                # The worker's own write outcome: a key that landed on
                # disk can be referenced by cache path, anything else
                # must ship inline to non-memory-sharing backends.
                on_disk.add((result["kind"], result["key"]))

        # Phase 3: execute.  Tasks reference measurements by cache path
        # + key; inline payloads ride along only for keys a non-shared
        # backend could not otherwise resolve -- serialized once per
        # unique key, with every task referencing the same (read-only)
        # payload object.
        inline_payloads: Dict[Any, Dict[str, Any]] = {}

        def inline_payload(kind: str, key: str) -> Dict[str, Any]:
            if (kind, key) not in inline_payloads:
                inline_payloads[(kind, key)] = (
                    profile_to_payload(_PROFILE_CACHE[key])
                    if kind == KIND_PROFILE
                    else run_metrics_to_payload(
                        _BASELINE_CACHE[key], task_stats=False
                    )
                )
            return inline_payloads[(kind, key)]

        execute_tasks: List[Dict[str, Any]] = []
        for scenario in scenarios:
            task: Dict[str, Any] = {
                "scenario": scenario.to_dict(),
                "profile_key":
                    scenario.profile_key if scenario.needs_profile else None,
                "baseline_key": scenario.baseline_key,
                "cache_dir": cache_dir,
                # Persistence was handled once per key in _plan; workers
                # must not re-verify it per task.
                "persisted": self.cache is not None,
            }
            if not backend.shares_memory:
                profile_key = task["profile_key"]
                if profile_key is not None and \
                        (KIND_PROFILE, profile_key) not in on_disk:
                    task["profile"] = inline_payload(KIND_PROFILE, profile_key)
                if scenario.is_dynamic and scenario.needs_profile:
                    # Per-group curves of a dynamic scenario travel the
                    # same way: by cache reference when on disk, inline
                    # otherwise (serialized once per unique key).
                    group_payloads = {
                        group: inline_payload(
                            KIND_PROFILE, requirement.profile_key
                        )
                        for group, requirement
                        in scenario.profile_requirements()
                        if (KIND_PROFILE, requirement.profile_key)
                        not in on_disk
                    }
                    if group_payloads:
                        task["profiles"] = group_payloads
                if (KIND_BASELINE, task["baseline_key"]) not in on_disk:
                    task["baseline"] = inline_payload(
                        KIND_BASELINE, task["baseline_key"]
                    )
            execute_tasks.append(task)
        for payload in backend.map(_execute_task, execute_tasks):
            store.append(payload)
        return store
