"""Executing scenarios: memoized profiling, process pool, result stream.

The runner turns scenario lists into :class:`~repro.exp.store.ResultStore`
records in three phases:

1. **Profile** -- every scenario that needs miss curves maps to a
   :attr:`~repro.exp.scenario.Scenario.profile_key`; each *unique* key
   is profiled exactly once (in the pool when ``workers > 1``) and
   cached process-wide, so repeated grid points -- and whole L2-capacity
   or solver sweeps -- never re-profile.
2. **Baseline** -- the conventional shared-cache run depends only on
   (workload, platform); it is memoized the same way, so method-knob
   sweeps share one baseline simulation.
3. **Execute** -- each scenario runs its remaining work (optimize,
   partitioned simulation, validation) with the cached pieces injected,
   and streams one record into the store in scenario order.

Every phase derives all randomness from the scenario content (the
platform seeds its RNG streams from ``cake.seed``), so a grid produces
the same store fingerprint for any ``workers`` value.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cake.metrics import RunMetrics
from repro.cake.platform import Platform
from repro.core.method import MethodReport
from repro.core.profiling import ProfileResult
from repro.errors import ConfigurationError
from repro.exp.scenario import Scenario
from repro.exp.store import SCHEMA_VERSION, ResultStore, ScenarioRecord
from repro.mem.partition import PartitionMode

__all__ = [
    "ExperimentRunner",
    "ScenarioOutcome",
    "clear_caches",
    "execute_scenario",
    "run_scenario",
]

#: profile_key -> ProfileResult, shared by every runner in this process.
_PROFILE_CACHE: Dict[str, ProfileResult] = {}
#: baseline_key -> RunMetrics of the shared-cache run.
_BASELINE_CACHE: Dict[str, RunMetrics] = {}


def clear_caches() -> None:
    """Drop the process-wide profile and baseline memo tables."""
    _PROFILE_CACHE.clear()
    _BASELINE_CACHE.clear()


def _compute_profile(scenario: Scenario) -> ProfileResult:
    """One profiling pass for the scenario's profile key."""
    return scenario.build_method().profile()


def _compute_baseline(scenario: Scenario) -> RunMetrics:
    """One conventional shared-cache simulation."""
    return scenario.build_method().simulate(None)


# -- record assembly ---------------------------------------------------------


def _metrics_payload(metrics: RunMetrics) -> Dict[str, Any]:
    """Raw counters of one run, in the stable record schema."""
    return {
        "accesses": metrics.l2_accesses,
        "misses": metrics.l2_misses,
        "miss_rate": metrics.l2_miss_rate,
        "mean_cpi": metrics.mean_cpi,
        "instructions": metrics.instructions,
        "elapsed_cycles": metrics.elapsed_cycles,
        "cross_evictions": metrics.l2_cross_evictions,
        "dram_lines": metrics.dram_lines,
        "misses_by_owner": {
            owner: stats.misses
            for owner, stats in sorted(metrics.l2_by_owner.items())
        },
    }


def _axes_view(scenario: Scenario) -> Dict[str, Any]:
    """The flat filter/table view stored on every record."""
    cake = scenario.effective_cake
    geometry = cake.hierarchy.l2_geometry
    return {
        "workload": scenario.workload.name,
        "mode": scenario.partition_mode.value,
        "l2_kb": geometry.size_bytes // 1024,
        "l2_ways": geometry.ways,
        "n_cpus": cake.n_cpus,
        "allocation_unit_sets": cake.allocation_unit_sets,
        "scheduling": cake.scheduling,
        "solver": scenario.method.solver,
        "fifo_policy": scenario.method.fifo_policy.value,
        "sizes": scenario.resolved_sizes,
        "seed": cake.seed,
        "tag": scenario.tag,
    }


def _base_record(scenario: Scenario) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "scenario_id": scenario.scenario_id,
        "profile_key": scenario.profile_key if scenario.needs_profile else None,
        "scenario": scenario.to_dict(),
        "axes": _axes_view(scenario),
        "plan": None,
        "way_assignment": None,
        "metrics": {"shared": None, "partitioned": None},
        "compositionality": None,
        "timing": {"wall_s": 0.0, "created_unix": 0.0},
    }


@dataclass
class ScenarioOutcome:
    """A record plus (when the mode produces one) the full report."""

    record: ScenarioRecord
    report: Optional[MethodReport] = None


def execute_scenario(
    scenario: Scenario,
    profile: Optional[ProfileResult] = None,
    baseline: Optional[RunMetrics] = None,
) -> ScenarioOutcome:
    """Run one scenario with pre-measured pieces injected.

    ``profile`` (miss curves) and ``baseline`` (the shared-cache run)
    are computed here when missing; the runner passes memoized ones.
    """
    started = time.time()
    method = scenario.build_method()
    record = _base_record(scenario)
    report: Optional[MethodReport] = None

    if baseline is None:
        baseline = _compute_baseline(scenario)
    record["metrics"]["shared"] = _metrics_payload(baseline)

    if scenario.partition_mode is PartitionMode.SHARED:
        pass  # the baseline is the whole experiment

    elif scenario.partition_mode is PartitionMode.SET_PARTITIONED:
        if profile is None:
            profile = _compute_profile(scenario)
        report = method.run(profile=profile, shared_metrics=baseline)
        record["metrics"]["partitioned"] = _metrics_payload(
            report.partitioned_metrics
        )
        record["plan"] = {
            "units_by_owner": dict(sorted(report.plan.units_by_owner.items())),
            "total_units": report.plan.total_units,
            "predicted_misses": report.plan.predicted_misses,
        }
        record["compositionality"] = {
            "max_relative_difference":
                report.compositionality.max_relative_difference,
            "total_simulated": report.compositionality.total_simulated,
        }

    elif scenario.partition_mode is PartitionMode.WAY_PARTITIONED:
        if profile is None:
            profile = _compute_profile(scenario)
        optimization = method.optimize(profile)
        plan = optimization.plan
        ways = scenario.effective_cake.hierarchy.l2_geometry.ways
        # Column caching can give at most one owner per way; rank the
        # tasks by the set-optimizer's allocation (units desc, then
        # name) and give the top `ways` one column each -- the paper's
        # granularity criticism made executable.
        ranked = sorted(
            (owner for owner in plan.units_by_owner if owner.startswith("task:")),
            key=lambda owner: (-plan.units_of(owner), owner),
        )
        assignment = {owner: (i,) for i, owner in enumerate(ranked[:ways])}
        platform = Platform(
            scenario.workload.build()(),
            scenario.effective_cake,
            mode=PartitionMode.WAY_PARTITIONED,
        )
        platform.cache_controller.program_way_partitions(assignment)
        metrics = platform.run()
        record["metrics"]["partitioned"] = _metrics_payload(metrics)
        record["way_assignment"] = {
            owner: list(ways_) for owner, ways_ in sorted(assignment.items())
        }

    else:  # pragma: no cover - PartitionMode is closed
        raise ConfigurationError(
            f"unsupported partition mode {scenario.partition_mode!r}"
        )

    record["timing"] = {
        "wall_s": time.time() - started,
        "created_unix": started,
    }
    return ScenarioOutcome(record=ScenarioRecord(record), report=report)


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Execute one scenario inline, using the process-wide memo tables."""
    profile = None
    if scenario.needs_profile:
        profile = _PROFILE_CACHE.get(scenario.profile_key)
        if profile is None:
            profile = _compute_profile(scenario)
            _PROFILE_CACHE[scenario.profile_key] = profile
    baseline = _BASELINE_CACHE.get(scenario.baseline_key)
    if baseline is None:
        baseline = _compute_baseline(scenario)
        _BASELINE_CACHE[scenario.baseline_key] = baseline
    return execute_scenario(scenario, profile=profile, baseline=baseline)


# -- process-pool workers ----------------------------------------------------


def _profile_worker(args: Tuple[str, Dict[str, Any]]) -> Tuple[str, ProfileResult]:
    key, payload = args
    return key, _compute_profile(Scenario.from_dict(payload))


def _baseline_worker(args: Tuple[str, Dict[str, Any]]) -> Tuple[str, RunMetrics]:
    key, payload = args
    return key, _compute_baseline(Scenario.from_dict(payload))


def _execute_worker(
    args: Tuple[Dict[str, Any], Optional[ProfileResult], Optional[RunMetrics]],
) -> Dict[str, Any]:
    payload, profile, baseline = args
    outcome = execute_scenario(
        Scenario.from_dict(payload), profile=profile, baseline=baseline
    )
    return outcome.record.payload


class ExperimentRunner:
    """Executes scenario lists and streams records into a store.

    ``workers=1`` runs inline (deterministic, easiest to debug);
    ``workers=N`` fans phases out over a process pool.  Both produce
    byte-identical stores (modulo timing) because every record is a
    pure function of its scenario.
    """

    def __init__(
        self,
        workers: int = 1,
        store_path: Optional[str] = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.store_path = store_path
        #: The runner's own store stream: created (truncating any stale
        #: file) on the first :meth:`run`, then appended to -- repeated
        #: runs on one runner accumulate records instead of silently
        #: truncating the JSONL between sweeps.
        self._store: Optional[ResultStore] = None
        #: Filled by :meth:`run`: profiling/baseline work accounting.
        self.last_stats: Dict[str, int] = {}

    def _pool(self) -> ProcessPoolExecutor:
        # fork (where available) inherits registered custom workloads;
        # spawn would only see import-time registrations.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )

    def run(
        self,
        scenarios: Iterable[Scenario],
        store: Optional[ResultStore] = None,
    ) -> ResultStore:
        """Execute every scenario; records stream in scenario order."""
        scenarios = list(scenarios)
        if store is None:
            if self._store is None:
                self._store = ResultStore(path=self.store_path)
            store = self._store

        # Phase 1: one profiling pass per unique profile key.
        profile_scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            if scenario.needs_profile:
                profile_scenarios.setdefault(scenario.profile_key, scenario)
        missing_profiles = {
            key: scenario
            for key, scenario in profile_scenarios.items()
            if key not in _PROFILE_CACHE
        }

        # Phase 2: one shared-cache baseline per unique platform.
        baseline_scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            baseline_scenarios.setdefault(scenario.baseline_key, scenario)
        missing_baselines = {
            key: scenario
            for key, scenario in baseline_scenarios.items()
            if key not in _BASELINE_CACHE
        }

        self.last_stats = {
            "scenarios": len(scenarios),
            "profiles_computed": len(missing_profiles),
            "profiles_cached": len(profile_scenarios) - len(missing_profiles),
            "baselines_computed": len(missing_baselines),
            "baselines_cached":
                len(baseline_scenarios) - len(missing_baselines),
        }

        if self.workers > 1 and scenarios:
            with self._pool() as pool:
                for key, profile in pool.map(
                    _profile_worker,
                    [(k, s.to_dict()) for k, s in missing_profiles.items()],
                ):
                    _PROFILE_CACHE[key] = profile
                for key, metrics in pool.map(
                    _baseline_worker,
                    [(k, s.to_dict()) for k, s in missing_baselines.items()],
                ):
                    _BASELINE_CACHE[key] = metrics
                tasks = [
                    (
                        scenario.to_dict(),
                        _PROFILE_CACHE.get(scenario.profile_key)
                        if scenario.needs_profile else None,
                        _BASELINE_CACHE[scenario.baseline_key],
                    )
                    for scenario in scenarios
                ]
                for payload in pool.map(_execute_worker, tasks):
                    store.append(payload)
        else:
            for key, scenario in missing_profiles.items():
                _PROFILE_CACHE[key] = _compute_profile(scenario)
            for key, scenario in missing_baselines.items():
                _BASELINE_CACHE[key] = _compute_baseline(scenario)
            for scenario in scenarios:
                outcome = execute_scenario(
                    scenario,
                    profile=_PROFILE_CACHE.get(scenario.profile_key)
                    if scenario.needs_profile else None,
                    baseline=_BASELINE_CACHE[scenario.baseline_key],
                )
                store.append(outcome.record)
        return store
