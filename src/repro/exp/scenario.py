"""The declarative scenario specification.

A :class:`Scenario` is a frozen value object naming everything one
experiment point needs: which workload (by registry name + kwargs),
which platform (:class:`~repro.cake.config.CakeConfig`), which method
knobs (:class:`~repro.core.method.MethodConfig`), which partition mode,
and which seed.  Because the spec is pure data it serialises to JSON,
round-trips through the result store, and hashes to two stable keys:

- :attr:`Scenario.scenario_id` -- the identity of the whole experiment
  point (every field except the presentation ``tag``).
- :attr:`Scenario.profile_key` -- the identity of the *profiling* work
  the point needs.  Profiling runs on an enlarged virtual L2 and, in a
  fully partitioned cache, per-owner miss curves are independent of the
  total L2 set count, so the key deliberately excludes the L2 set
  count and the solver: an L2-capacity sweep or a solver comparison
  profiles exactly once (``tests/test_exp_runner.py`` pins this).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.analysis.export import profile_from_payload, profile_to_payload
from repro.cake.config import CakeConfig
from repro.cake.metrics import CpuMetrics, RunMetrics
from repro.core.method import CompositionalMethod, MethodConfig
from repro.exp.workloads import workload_builder
from repro.kpn.graph import ProcessNetwork
from repro.mem.bus import BusConfig
from repro.mem.cache import CacheGeometry, OwnerStats
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.memory import DramConfig
from repro.mem.partition import PartitionMode
from repro.rtos.task import TaskStats

__all__ = [
    "Scenario",
    "TransitionSpec",
    "WorkloadSpec",
    "content_hash",
    "profile_from_payload",
    "profile_to_payload",
    "run_metrics_from_payload",
    "run_metrics_to_payload",
]


def content_hash(payload: Any, digits: int = 16) -> str:
    """Stable short hash of a JSON-serialisable payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:digits]


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by registry name plus builder keyword arguments."""

    name: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Callable[[], ProcessNetwork]:
        """The zero-argument network builder this spec names."""
        return workload_builder(self.name, **dict(self.kwargs))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(name=payload["name"], kwargs=dict(payload.get("kwargs", {})))


#: Online-transition actions: a workload joins the running platform, a
#: task group leaves it, or a bare epoch boundary is marked (the
#: control-run shape: same epochs, no platform change).
TRANSITION_ACTIONS = ("join", "leave", "mark")


@dataclass(frozen=True)
class TransitionSpec:
    """One scheduled online transition of a dynamic scenario.

    ``join`` attaches ``workload`` (its entities prefixed ``group.``)
    at sim time ``at``, subject to admission control; ``budget``
    optionally caps the arrival's predicted cycle cost.  ``leave``
    detaches either a previously joined ``group`` or the explicitly
    named base-network ``tasks``/``fifos``/``frames``.  ``mark`` only
    closes a measurement epoch.
    """

    at: float
    action: str
    workload: Optional[WorkloadSpec] = None
    group: str = ""
    tasks: tuple = ()
    fifos: tuple = ()
    frames: tuple = ()
    #: Cycle budget for admission control (join only); ``None`` = no cap.
    budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in TRANSITION_ACTIONS:
            raise ValueError(
                f"unknown transition action {self.action!r}; "
                f"pick from {TRANSITION_ACTIONS}"
            )
        if self.at < 0:
            raise ValueError(f"transition time must be >= 0, got {self.at!r}")
        if self.action == "join" and (self.workload is None or not self.group):
            raise ValueError("a join transition needs a workload and a group")
        if self.action == "leave" and not (self.group or self.tasks):
            raise ValueError("a leave transition needs a group or tasks")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "action": self.action,
            "workload": None if self.workload is None
            else self.workload.to_dict(),
            "group": self.group,
            "tasks": list(self.tasks),
            "fifos": list(self.fifos),
            "frames": list(self.frames),
            "budget": self.budget,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransitionSpec":
        workload = payload.get("workload")
        return cls(
            at=payload["at"],
            action=payload["action"],
            workload=None if workload is None
            else WorkloadSpec.from_dict(workload),
            group=payload.get("group", ""),
            tasks=tuple(payload.get("tasks", ())),
            fifos=tuple(payload.get("fifos", ())),
            frames=tuple(payload.get("frames", ())),
            budget=payload.get("budget"),
        )


def _cake_to_dict(config: CakeConfig, engine: bool = True) -> Dict[str, Any]:
    payload = asdict(config)
    if not engine:
        # The hierarchy engine is an execution detail, not part of any
        # experiment's identity: all engines are bit-identical (the
        # differential suite enforces it), so identities, cache keys
        # and records deliberately exclude it -- an engine sweep reuses
        # every measurement and reproduces every fingerprint.
        payload["hierarchy"].pop("engine")
    return payload


def _cake_from_dict(payload: Mapping[str, Any]) -> CakeConfig:
    hierarchy = payload["hierarchy"]
    return CakeConfig(
        n_cpus=payload["n_cpus"],
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(**hierarchy["l1_geometry"]),
            l2_geometry=CacheGeometry(**hierarchy["l2_geometry"]),
            issue_cpi=hierarchy["issue_cpi"],
            l2_hit_cycles=hierarchy["l2_hit_cycles"],
            dram=DramConfig(**hierarchy["dram"]),
            bus=BusConfig(**hierarchy["bus"]),
            l2_policy=hierarchy["l2_policy"],
            # Canonical (record) dicts strip the engine; default it.
            engine=hierarchy.get("engine", "fast"),
        ),
        switch_cycles=payload["switch_cycles"],
        quantum_cycles=payload["quantum_cycles"],
        scheduling=payload["scheduling"],
        allocation_unit_sets=payload["allocation_unit_sets"],
        seed=payload["seed"],
    )


def _method_to_dict(config: MethodConfig) -> Dict[str, Any]:
    return {
        "sizes": None if config.sizes is None else list(config.sizes),
        "fifo_policy": config.fifo_policy.value,
        "solver": config.solver,
        "profile_repeats": config.profile_repeats,
    }


def _method_from_dict(payload: Mapping[str, Any]) -> MethodConfig:
    from repro.core.allocation import BufferPolicy

    return MethodConfig(
        sizes=payload["sizes"],
        fifo_policy=BufferPolicy(payload["fifo_policy"]),
        solver=payload["solver"],
        profile_repeats=payload["profile_repeats"],
    )


# -- measurement payloads ------------------------------------------------------
#
# The runner's persistent cache and remote-capable backends move
# measurements as JSON, not pickles.  ProfileResult payloads come from
# :mod:`repro.analysis.export` (re-exported above); RunMetrics -- the
# shared-cache baseline runs -- serialise here.  Both round-trips are
# *exact* (every sample, in measurement order; every counter), so a
# record computed from a deserialised measurement is byte-identical to
# one computed from the in-process original.


def run_metrics_to_payload(
    metrics: RunMetrics, task_stats: bool = True
) -> Dict[str, Any]:
    """The JSON-serialisable form of one run's measurements.

    ``task_stats=False`` produces the *baseline* envelope: nothing
    downstream reads per-task statistics out of a cached shared-cache
    baseline (records are built from the L2/CPU counters alone), so
    the persistent cache stores baselines without them -- roughly
    halving the entry size.  The inverse tolerates either form.
    """
    payload = {
        "cpus": [asdict(cpu) for cpu in metrics.cpus],
        "l2_by_owner": {
            owner: asdict(stats)
            for owner, stats in metrics.l2_by_owner.items()
        },
        "elapsed_cycles": metrics.elapsed_cycles,
        "l2_cross_evictions": metrics.l2_cross_evictions,
        "dram_lines": metrics.dram_lines,
    }
    if task_stats:
        payload["task_stats"] = {
            name: asdict(stats)
            for name, stats in metrics.task_stats.items()
        }
    return payload


def run_metrics_from_payload(payload: Mapping[str, Any]) -> RunMetrics:
    """Inverse of :func:`run_metrics_to_payload` (either form)."""
    return RunMetrics(
        cpus=[CpuMetrics(**cpu) for cpu in payload["cpus"]],
        l2_by_owner={
            owner: OwnerStats(**stats)
            for owner, stats in payload["l2_by_owner"].items()
        },
        task_stats={
            name: TaskStats(**stats)
            for name, stats in payload.get("task_stats", {}).items()
        },
        elapsed_cycles=payload["elapsed_cycles"],
        l2_cross_evictions=payload["l2_cross_evictions"],
        dram_lines=payload["dram_lines"],
    )


@dataclass(frozen=True)
class Scenario:
    """One experiment point: workload x platform x method x mode x seed."""

    workload: WorkloadSpec
    cake: CakeConfig = field(default_factory=CakeConfig)
    method: MethodConfig = field(default_factory=MethodConfig)
    partition_mode: PartitionMode = PartitionMode.SET_PARTITIONED
    #: Root seed override; ``None`` keeps ``cake.seed``.
    seed: Optional[int] = None
    #: Free-form label for reports; not part of the scenario identity.
    tag: str = ""
    #: Scheduled online transitions (empty = the classic static run).
    #: Content-hashed into :attr:`scenario_id` when present; static
    #: scenarios keep their exact pre-transition identities.
    transitions: tuple = ()

    # -- derived configuration ---------------------------------------------

    @property
    def effective_cake(self) -> CakeConfig:
        """The platform config with the scenario seed folded in."""
        if self.seed is None or self.seed == self.cake.seed:
            return self.cake
        return replace(self.cake, seed=self.seed)

    @property
    def resolved_sizes(self) -> List[int]:
        """The allocation-size menu, with the default menu materialised.

        ``MethodConfig.sizes=None`` means "powers of two up to a quarter
        of the allocatable units", which depends on the L2 set count --
        resolving it here keeps the profile key honest across L2 sizes.
        """
        if self.method.sizes is not None:
            return list(self.method.sizes)
        sizes: List[int] = []
        size = 1
        while size <= self.effective_cake.n_allocation_units // 4:
            sizes.append(size)
            size *= 2
        return sizes

    @property
    def resolved_method(self) -> MethodConfig:
        """The method config with the size menu materialised."""
        if self.method.sizes is not None:
            return self.method
        return replace(self.method, sizes=self.resolved_sizes)

    def build_method(self) -> CompositionalMethod:
        """The single-scenario execution engine for this spec."""
        return CompositionalMethod(
            self.workload.build(), self.effective_cake, self.resolved_method
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self, canonical: bool = False) -> Dict[str, Any]:
        """The JSON-serialisable spec (round-trips via from_dict).

        ``canonical=True`` drops the hierarchy engine -- the form used
        for identities and stored records, which must be invariant
        under the (bit-identical) execution engines.  The default form
        keeps it, so workers and sessions replay with the engine the
        caller picked.
        """
        payload = {
            "workload": self.workload.to_dict(),
            "cake": _cake_to_dict(self.effective_cake, engine=not canonical),
            "method": _method_to_dict(self.method),
            "partition_mode": self.partition_mode.value,
            "tag": self.tag,
        }
        # Only dynamic scenarios carry the key at all: every static
        # scenario's payload -- and therefore its scenario_id and every
        # stored fingerprint -- is unchanged by the transitions feature.
        if self.transitions:
            payload["transitions"] = [t.to_dict() for t in self.transitions]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        return cls(
            workload=WorkloadSpec.from_dict(payload["workload"]),
            cake=_cake_from_dict(payload["cake"]),
            method=_method_from_dict(payload["method"]),
            partition_mode=PartitionMode(payload["partition_mode"]),
            tag=payload.get("tag", ""),
            transitions=tuple(
                TransitionSpec.from_dict(t)
                for t in payload.get("transitions", ())
            ),
        )

    # -- identity ----------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        """Content hash of the spec (minus the presentation tag and
        the execution engine, neither of which changes any result)."""
        payload = self.to_dict(canonical=True)
        payload.pop("tag")
        return content_hash(payload)

    @property
    def needs_profile(self) -> bool:
        """Whether executing this scenario requires miss curves."""
        return self.partition_mode is not PartitionMode.SHARED

    @property
    def is_dynamic(self) -> bool:
        """Whether this scenario schedules online transitions."""
        return bool(self.transitions)

    def profile_requirements(self) -> List[tuple]:
        """``(group, static scenario)`` pairs whose curves this point needs.

        The base workload profiles as group ``""``; every join
        transition profiles its workload *standalone*, with the same
        cake and method -- so each derived :attr:`profile_key` equals
        the one a static scenario of that workload uses, and a warm
        :class:`~repro.exp.cache.ProfileCache` makes the arrival of an
        already-profiled task set cost zero profiling passes.
        """
        base = replace(self, transitions=())
        requirements: List[tuple] = [("", base)]
        for transition in self.transitions:
            if transition.action == "join":
                requirements.append(
                    (transition.group,
                     replace(base, workload=transition.workload))
                )
        return requirements

    @property
    def profile_key(self) -> str:
        """Content hash of the profiling work this scenario needs.

        Excludes the L2 set count (profiling uses a virtual L2; curves
        are set-count independent in a fully partitioned cache), the
        solver (profiling happens before optimization) and the
        execution engine (bit-identical by contract), so capacity
        sweeps, solver comparisons and engine comparisons share one
        profiling pass.
        """
        cake = _cake_to_dict(self.effective_cake, engine=False)
        cake["hierarchy"]["l2_geometry"].pop("sets")
        return content_hash({
            "workload": self.workload.to_dict(),
            "cake": cake,
            "sizes": self.resolved_sizes,
            "fifo_policy": self.method.fifo_policy.value,
            "profile_repeats": self.method.profile_repeats,
        })

    @property
    def baseline_key(self) -> str:
        """Content hash of the shared-cache baseline run it needs."""
        return content_hash({
            "workload": self.workload.to_dict(),
            "cake": _cake_to_dict(self.effective_cake, engine=False),
        })

    # -- convenience -------------------------------------------------------

    def with_cake(self, **changes) -> "Scenario":
        """A copy with platform-config fields replaced."""
        return replace(self, cake=replace(self.cake, **changes))

    def with_method(self, **changes) -> "Scenario":
        """A copy with method-config fields replaced."""
        return replace(self, method=replace(self.method, **changes))

    def with_engine(self, engine: str) -> "Scenario":
        """A copy running on a different hierarchy engine.

        Engines are bit-identical, so the copy shares this scenario's
        identity, profile key and baseline key -- an engine axis reuses
        every cached measurement and reproduces every fingerprint.
        """
        return replace(
            self,
            cake=replace(
                self.cake,
                hierarchy=replace(self.cake.hierarchy, engine=engine),
            ),
        )

    def describe(self) -> str:
        """One-line human description."""
        geometry = self.effective_cake.hierarchy.l2_geometry
        menu = self.method.sizes
        return (
            f"{self.workload.name}"
            f"[{self.partition_mode.value}]"
            f" l2={geometry.size_bytes // 1024}KB/{geometry.ways}w"
            f" cpus={self.effective_cake.n_cpus}"
            f" solver={self.method.solver}"
            f" sizes={'auto' if menu is None else list(menu)}"
            f" seed={self.effective_cake.seed}"
            + (f" transitions={len(self.transitions)}"
               if self.transitions else "")
            + (f" tag={self.tag}" if self.tag else "")
        )
