"""Distributed sweeps: a work-queue server, workers, and RemoteBackend.

The missing half the transport seam was built for.  Since PR 3 every
backend has moved *only* JSON task dicts that reference measurements
by cache path + content key; this package adds the network transport
so those same tasks cross machines:

- :mod:`repro.exp.service.queue` -- :class:`WorkQueue`: leases with
  deadlines, bounded retry with exponential backoff, content-addressed
  task dedupe, first-result-wins collection, draining.
- :mod:`repro.exp.service.server` -- :class:`SweepServer`: a
  hand-rolled asyncio HTTP/1.1 face over the queue (stdlib only),
  with ``/status`` observability and a lease-expiry sweeper.
- :mod:`repro.exp.service.worker` -- the pulling worker loop
  (``python -m repro.exp.service worker``): heartbeats, graceful
  shutdown, per-task profiling-pass accounting.
- :mod:`repro.exp.service.backend` -- :class:`RemoteBackend`, the
  :class:`~repro.exp.runner.AsyncBackend` subclass whose ``_dispatch``
  awaits the network instead of a thread pool; plug it in with
  ``ExperimentRunner(backend="remote")`` (``$REPRO_SWEEP_SERVER``) or
  ``backend=RemoteBackend(url)``.
- :mod:`repro.exp.service.client` / :mod:`~repro.exp.service.cli` --
  the synchronous client and the ``serve``/``worker``/``submit``/
  ``status``/``drain`` CLI.

The contract mirrors the rest of the platform: a grid run via server
plus N workers produces a :class:`~repro.exp.store.ResultStore`
fingerprint byte-identical to :class:`~repro.exp.runner.InlineBackend`,
and against a warm shared :class:`~repro.exp.cache.ProfileCache` the
fleet performs zero profiling passes (observable at ``/status``).
"""

from repro.exp.service.backend import RemoteBackend
from repro.exp.service.client import SERVER_ENV_VAR, ServiceClient
from repro.exp.service.queue import WorkQueue, task_identity
from repro.exp.service.server import SweepServer
from repro.exp.service.worker import TASK_FUNCTIONS, run_worker

__all__ = [
    "RemoteBackend",
    "SERVER_ENV_VAR",
    "ServiceClient",
    "SweepServer",
    "TASK_FUNCTIONS",
    "WorkQueue",
    "run_worker",
    "task_identity",
]
