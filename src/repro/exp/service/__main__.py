"""Entry point for ``python -m repro.exp.service``."""

import sys

from repro.exp.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
