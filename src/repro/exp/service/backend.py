"""RemoteBackend: the network face of the execution-backend seam.

:class:`~repro.exp.runner.AsyncBackend` documented its own successor:
"a remote/queue backend can replace ``run_in_executor`` with a network
await and keep the rest."  That is literally this class -- it
subclasses :class:`AsyncBackend` and overrides only the
:meth:`~repro.exp.runner.AsyncBackend._dispatch` coroutine: each task
is submitted to the sweep server (content-addressed, so re-submission
is free) and its result awaited by polling.  Ordering, streaming,
laziness, concurrency gating and loop cleanup are all inherited.

Because ``shares_memory`` is False, the runner already does the right
thing: execute tasks reference measurements by cache path + content
key when the shared :class:`~repro.exp.cache.ProfileCache` holds them,
and carry inline JSON payloads otherwise -- so a fleet works with a
shared cache directory (the intended data plane) *and*, degraded but
correct, entirely without one.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.exp.runner import AsyncBackend
from repro.exp.service.client import resolve_server_url
from repro.exp.service.wire import arequest, parse_server_url
from repro.exp.service.worker import worker_fn_name

__all__ = ["RemoteBackend"]


class RemoteBackend(AsyncBackend):
    """Ships sweep tasks to a :class:`~repro.exp.service.SweepServer`.

    ``url`` defaults to ``$REPRO_SWEEP_SERVER``.  ``concurrency`` caps
    *client-side* tasks in flight -- keep it at least the worker fleet
    size or the client becomes the bottleneck.  ``connect_retries``
    tolerates a server that is still starting (CI launches both at
    once); ``task_timeout`` bounds how long one task may stay
    non-terminal before the sweep errors out (it spans the server-side
    retry/backoff budget, so keep it generous).
    """

    name = "remote"
    shares_memory = False

    def __init__(
        self,
        url: Optional[str] = None,
        concurrency: int = 16,
        poll_interval: float = 0.05,
        task_timeout: float = 600.0,
        connect_retries: int = 20,
    ):
        super().__init__(concurrency=concurrency)
        self.url = resolve_server_url(url)
        self.host, self.port = parse_server_url(self.url)
        self.poll_interval = poll_interval
        self.task_timeout = task_timeout
        self.connect_retries = connect_retries

    async def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        """One request, retrying connection-level failures briefly."""
        attempt = 0
        while True:
            try:
                return await arequest(
                    self.host, self.port, method, path, payload
                )
            except ServiceError:
                attempt += 1
                if attempt > self.connect_retries:
                    raise
                await asyncio.sleep(min(0.25 * attempt, 2.0))

    async def _dispatch(
        self, worker, task: Dict[str, Any]
    ) -> Dict[str, Any]:
        fn = worker_fn_name(worker)
        reply = await self._call(
            "POST", "/submit", {"tasks": [{"fn": fn, "task": task}]}
        )
        task_id = reply["ids"][0]
        deadline = asyncio.get_running_loop().time() + self.task_timeout
        while True:
            outcome = await self._call("GET", f"/result?id={task_id}")
            state = outcome.get("state")
            if state == "done":
                return outcome["result"]
            if state == "failed":
                raise ServiceError(
                    f"remote task {task_id} ({fn}) failed after "
                    f"{outcome.get('attempts')} attempts: "
                    f"{outcome.get('error')}"
                )
            if state == "unknown":
                # Evicted between submit and poll (result-budget churn):
                # re-submit -- content addressing makes this idempotent.
                await self._call(
                    "POST", "/submit", {"tasks": [{"fn": fn, "task": task}]}
                )
            if asyncio.get_running_loop().time() > deadline:
                raise ServiceError(
                    f"remote task {task_id} ({fn}) still {state!r} after "
                    f"{self.task_timeout}s -- are any workers attached "
                    f"to {self.url}? (see {self.url}/status)"
                )
            await asyncio.sleep(self.poll_interval)

    def __repr__(self) -> str:
        return (
            f"<RemoteBackend {self.url} concurrency={self.concurrency}>"
        )
