"""``python -m repro.exp.service`` -- serve / worker / submit / status / drain.

The operational face of the distributed sweep service:

- ``serve``    run the work-queue server in the foreground,
- ``worker``   run one pulling worker (start N processes for a fleet),
- ``submit``   run a grid of scenario specs (JSON file) through
  :class:`RemoteBackend` and write the result store JSONL,
- ``status``   print ``/status`` (``--json`` for scripts, ``--wait``
  to block until the server is healthy first),
- ``drain``    stop leasing and tell workers to exit.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError
from repro.exp.service.client import SERVER_ENV_VAR, ServiceClient

__all__ = ["main"]


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default=None,
        help=f"server URL (default: ${SERVER_ENV_VAR})",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp.service",
        description="Distributed sweep service: work-queue server, "
        "workers, grid submission.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the work-queue server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a worker may hold a task without heartbeating",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="lease grants per task before it fails terminally",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.5,
        help="base of the exponential re-lease backoff (seconds)",
    )
    serve.add_argument(
        "--cache", default=None,
        help="ProfileCache root reported by /status (default: the "
        "last cache_dir seen in a submitted task)",
    )

    worker = sub.add_parser("worker", help="run one pulling worker")
    _add_server_argument(worker)
    worker.add_argument("--id", default=None, help="worker id for /status")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="idle poll interval (seconds)")
    worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after this many tasks (default: run until drained)",
    )

    submit = sub.add_parser(
        "submit", help="run a JSON grid of scenarios via the service"
    )
    _add_server_argument(submit)
    submit.add_argument(
        "grid", help="JSON file: a list of Scenario.to_dict() specs"
    )
    submit.add_argument(
        "--store", default=None, help="result store JSONL to write"
    )
    submit.add_argument(
        "--cache", default=None,
        help="shared ProfileCache root (the fleet's data plane)",
    )
    submit.add_argument("--concurrency", type=int, default=16,
                        help="client-side tasks in flight")

    status = sub.add_parser("status", help="print the server's /status")
    _add_server_argument(status)
    status.add_argument("--json", action="store_true",
                        help="raw JSON for scripts")
    status.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="poll /health up to this long before asking",
    )

    drain = sub.add_parser(
        "drain", help="stop leasing; workers exit after their task"
    )
    _add_server_argument(drain)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exp.service.server import SweepServer

    server = SweepServer(
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        cache_dir=args.cache,
    )
    print(f"sweep server on {server.url} "
          f"(lease ttl {args.lease_ttl}s, {args.max_attempts} attempts)")
    server.serve_forever()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.exp.service.worker import run_worker

    stop = threading.Event()
    # SIGTERM/SIGINT request a *graceful* exit: finish the task in
    # flight, report it, then leave.
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    executed = run_worker(
        url=args.server,
        worker_id=args.id,
        poll_interval=args.poll,
        stop=stop,
        max_tasks=args.max_tasks,
        quiet=False,
    )
    print(f"worker exiting after {executed} tasks")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.exp import ExperimentRunner, Scenario
    from repro.exp.service.backend import RemoteBackend

    specs = json.loads(Path(args.grid).read_text())
    if not isinstance(specs, list):
        raise ReproError(
            f"{args.grid} must hold a JSON list of scenario specs"
        )
    scenarios = [Scenario.from_dict(spec) for spec in specs]
    runner = ExperimentRunner(
        backend=RemoteBackend(args.server, concurrency=args.concurrency),
        store_path=args.store,
        cache=args.cache,
    )
    store = runner.run(scenarios)
    header, rows = store.to_table()
    print(" | ".join(header))
    for row in rows:
        print(" | ".join(
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
        ))
    print(f"{len(store)} records, fingerprint {store.fingerprint()}")
    print(f"stats: {runner.last_stats}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.server)
    if args.wait is not None:
        client.wait_healthy(timeout=args.wait)
    status = client.status()
    if args.json:
        print(json.dumps(status, sort_keys=True))
        return 0
    queue = status["queue"]
    print(f"sweep server {client.url} "
          f"{'(draining)' if status['draining'] else ''}")
    print(
        f"  queue: {queue['pending']} pending, {queue['leased']} leased, "
        f"{queue['done']} done, {queue['failed']} failed"
    )
    counters = status["counters"]
    print(
        f"  traffic: {counters['submitted']} submitted "
        f"({counters['deduped']} deduped), {counters['completed']} "
        f"completed, {counters['retries']} retries, "
        f"{counters['expired_leases']} expired leases, "
        f"{counters['duplicate_results']} duplicate results, "
        f"{counters['profiling_passes']} profiling passes"
    )
    for name, info in status["workers"].items():
        print(
            f"  worker {name}: {info['completed']} done, "
            f"{info['failed']} failed, seen "
            f"{info['last_seen_s_ago']:.1f}s ago"
        )
    cache = status.get("cache")
    if cache:
        print(
            f"  cache {cache['root']}: {cache['entries']} entries, "
            f"{cache['bytes']} bytes"
        )
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    client = ServiceClient(args.server)
    client.drain()
    print(f"draining {client.url}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "drain": _cmd_drain,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
