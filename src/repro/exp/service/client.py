"""Synchronous client for the sweep service (workers, CLI, scripts).

A thin typed veneer over the wire protocol: every method is one JSON
request.  The only stateful nicety is :meth:`wait_healthy`, which
polls ``/health`` so scripts can start a server and a client without
choreographing startup order.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.exp.service.wire import parse_server_url, request

__all__ = ["SERVER_ENV_VAR", "ServiceClient", "resolve_server_url"]

#: Environment override naming the sweep server, honoured by
#: ``RemoteBackend(url=None)`` and every service CLI subcommand.
SERVER_ENV_VAR = "REPRO_SWEEP_SERVER"


def resolve_server_url(url: Optional[str]) -> str:
    """An explicit URL, else ``$REPRO_SWEEP_SERVER``, else an error."""
    resolved = url or os.environ.get(SERVER_ENV_VAR)
    if not resolved:
        raise ServiceError(
            f"no sweep server named: pass url= (e.g. "
            f"http://127.0.0.1:8642) or set ${SERVER_ENV_VAR}"
        )
    return resolved


class ServiceClient:
    """Blocking JSON client bound to one server URL."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0):
        self.url = resolve_server_url(url)
        self.host, self.port = parse_server_url(self.url)
        self.timeout = timeout

    def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        return request(
            self.host, self.port, method, path, payload,
            timeout=self.timeout,
        )

    # -- submitting + collecting -------------------------------------------

    def submit(self, tasks: List[Dict[str, Any]]) -> List[str]:
        """Submit ``[{"fn", "task"}, ...]``; returns task ids in order."""
        return self._call("POST", "/submit", {"tasks": tasks})["ids"]

    def result(self, task_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/result?id={task_id}")

    def wait_result(
        self,
        task_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the task is terminal; returns its result payload.

        Raises :class:`ServiceError` when the task failed (bounded
        retries exhausted) or the timeout elapses.
        """
        deadline = time.monotonic() + timeout
        while True:
            reply = self.result(task_id)
            state = reply.get("state")
            if state == "done":
                return reply["result"]
            if state == "failed":
                raise ServiceError(
                    f"task {task_id} failed after "
                    f"{reply.get('attempts')} attempts: {reply.get('error')}"
                )
            if state == "unknown":
                raise ServiceError(
                    f"task {task_id} is unknown to {self.url} "
                    f"(evicted or never submitted)"
                )
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting on task "
                    f"{task_id} (state: {state})"
                )
            time.sleep(poll_interval)

    # -- worker side -------------------------------------------------------

    def lease(self, worker: str) -> Dict[str, Any]:
        """``{"task": {...}|None, "draining": bool}``."""
        return self._call("POST", "/lease", {"worker": worker})

    def heartbeat(
        self, worker: str, lease_id: Optional[str] = None
    ) -> Dict[str, Any]:
        return self._call(
            "POST", "/heartbeat", {"worker": worker, "lease_id": lease_id}
        )

    def complete(
        self,
        task_id: str,
        result: Any,
        worker: Optional[str] = None,
        stats: Optional[Dict[str, Any]] = None,
    ) -> bool:
        reply = self._call("POST", "/complete", {
            "task_id": task_id, "result": result,
            "worker": worker, "stats": stats,
        })
        return reply["accepted"]

    def fail(
        self, task_id: str, error: str, worker: Optional[str] = None
    ) -> bool:
        reply = self._call("POST", "/fail", {
            "task_id": task_id, "error": error, "worker": worker,
        })
        return reply["retry"]

    # -- operations --------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return self._call("GET", "/status")

    def drain(self) -> None:
        self._call("POST", "/drain", {})

    def health(self) -> bool:
        try:
            return bool(self._call("GET", "/health").get("ok"))
        except ServiceError:
            return False

    def wait_healthy(
        self, timeout: float = 10.0, poll_interval: float = 0.1
    ) -> None:
        """Block until ``/health`` answers; for startup choreography."""
        deadline = time.monotonic() + timeout
        while not self.health():
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"no healthy sweep service at {self.url} "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)

    def __repr__(self) -> str:
        return f"<ServiceClient {self.url}>"
