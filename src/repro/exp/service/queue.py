"""The work queue: leased tasks, bounded retries, idempotent results.

:class:`WorkQueue` is the server's whole brain, kept deliberately free
of any transport so every contract is unit-testable with a fake clock:

- **Content-addressed task identity.**  A submission is
  ``{"fn": <protocol function>, "task": <JSON task dict>}`` and its id
  is the content hash of exactly that payload.  Re-submitting a task --
  same grid from a second client, a retried client call, a duplicated
  scenario inside one grid -- lands on the *same* id: at most one
  execution, every submitter collects the one result.  This is safe
  because every task in the JSON protocol is a pure function of its
  payload (the same property that makes backend fingerprints agree).
- **Leases, not assignments.**  A worker *leases* a task for
  ``lease_ttl`` seconds and must heartbeat to keep it; a lease that
  expires (worker killed, wedged, partitioned) silently requeues the
  task for the next worker.  Requeues are bounded (``max_attempts``)
  with exponential backoff, so a task that genuinely cannot run ends
  in a terminal ``failed`` state instead of looping forever.
- **First result wins.**  A completion is accepted exactly once per
  task; late duplicates -- the classic expired-lease race where the
  presumed-dead worker finishes anyway -- are counted and dropped.
  Both results are identical by purity, so dropping is lossless.
- **Draining.**  ``drain()`` stops new leases and tells pulling
  workers to exit; pending results stay collectable.

Done results are kept for idempotent re-submission but bounded by
``result_budget``: beyond it the oldest done entries are evicted, and
an evicted task simply re-executes if someone re-submits it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.exp.scenario import content_hash

__all__ = ["WorkQueue", "task_identity"]

#: Task lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


def task_identity(fn: str, task: Dict[str, Any]) -> str:
    """The content-addressed id of one submission."""
    return content_hash({"fn": fn, "task": task})


class _Entry:
    """One task's full server-side state."""

    __slots__ = (
        "task_id", "fn", "task", "state", "attempts", "not_before",
        "worker", "lease_id", "deadline", "result", "error",
    )

    def __init__(self, task_id: str, fn: str, task: Dict[str, Any]):
        self.task_id = task_id
        self.fn = fn
        self.task = task
        self.state = PENDING
        self.attempts = 0          # leases consumed (expiry or failure)
        self.not_before = 0.0      # backoff gate for re-leasing
        self.worker: Optional[str] = None
        self.lease_id: Optional[str] = None
        self.deadline = 0.0
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None


class WorkQueue:
    """Thread-safe lease queue with deadlines, retries and dedupe."""

    def __init__(
        self,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        result_budget: int = 100_000,
        clock: Callable[[], float] = time.monotonic,
    ):
        if lease_ttl <= 0:
            raise ServiceError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.result_budget = result_budget
        self.clock = clock
        self._lock = threading.Lock()
        #: task_id -> entry, in submission order (OrderedDict so result
        #: eviction is oldest-first without a second structure).
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: FIFO of pending task ids (may hold ids re-queued by expiry).
        self._pending: List[str] = []
        self._lease_counter = 0
        self.draining = False
        #: worker id -> liveness + work accounting (heartbeats land here).
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.counters = {
            "submitted": 0, "deduped": 0, "completed": 0,
            "failed_tasks": 0, "retries": 0, "expired_leases": 0,
            "duplicate_results": 0, "profiling_passes": 0,
        }

    # -- submission --------------------------------------------------------

    def submit(self, fn: str, task: Dict[str, Any]) -> str:
        """Enqueue one task; returns its content-addressed id.

        Idempotent: a known id (pending, leased, done or failed) is
        returned as-is and counted as a dedupe -- except a *failed*
        task, which a fresh submission revives for another full round
        of attempts (the submitter is asking again; the transient that
        killed it may be gone).
        """
        task_id = task_identity(fn, task)
        with self._lock:
            entry = self._entries.get(task_id)
            if entry is not None:
                if entry.state == FAILED:
                    entry.state = PENDING
                    entry.attempts = 0
                    entry.error = None
                    entry.not_before = 0.0
                    self._pending.append(task_id)
                else:
                    self.counters["deduped"] += 1
                return task_id
            self.counters["submitted"] += 1
            self._entries[task_id] = _Entry(task_id, fn, task)
            self._pending.append(task_id)
            self._evict_done()
            return task_id

    def _evict_done(self) -> None:
        """Drop oldest done results beyond the retention budget."""
        done = [
            tid for tid, e in self._entries.items() if e.state == DONE
        ]
        excess = len(done) - self.result_budget
        for tid in done[:max(0, excess)]:
            del self._entries[tid]

    # -- leasing -----------------------------------------------------------

    def lease(self, worker: str) -> Optional[Dict[str, Any]]:
        """Hand the oldest eligible pending task to ``worker``.

        Returns ``{"task_id", "lease_id", "fn", "task", "attempt",
        "lease_ttl"}`` or ``None`` when nothing is ready (empty queue,
        everything backing off, or draining).
        """
        now = self.clock()
        with self._lock:
            self._touch_worker(worker, now)
            if self.draining:
                return None
            for index, task_id in enumerate(self._pending):
                entry = self._entries.get(task_id)
                if entry is None or entry.state != PENDING:
                    continue  # stale id (completed inline / evicted)
                if entry.not_before > now:
                    continue  # backing off after a failure
                del self._pending[index]
                self._lease_counter += 1
                entry.state = LEASED
                entry.worker = worker
                entry.lease_id = f"L{self._lease_counter}"
                entry.deadline = now + self.lease_ttl
                return {
                    "task_id": entry.task_id,
                    "lease_id": entry.lease_id,
                    "fn": entry.fn,
                    "task": entry.task,
                    "attempt": entry.attempts + 1,
                    "lease_ttl": self.lease_ttl,
                }
            return None

    def heartbeat(
        self, worker: str, lease_id: Optional[str] = None
    ) -> bool:
        """Record worker liveness; extend the named lease if still held.

        Returns whether the lease is still valid (a worker whose lease
        expired and was re-queued learns here that its work is moot).
        """
        now = self.clock()
        with self._lock:
            self._touch_worker(worker, now)
            if lease_id is None:
                return True
            for entry in self._entries.values():
                if entry.state == LEASED and entry.lease_id == lease_id:
                    entry.deadline = now + self.lease_ttl
                    return True
            return False

    def _touch_worker(self, worker: str, now: float) -> None:
        info = self.workers.setdefault(
            worker,
            {"completed": 0, "failed": 0, "profiling_passes": 0,
             "wall_s": 0.0, "last_seen": now},
        )
        info["last_seen"] = now

    # -- completion --------------------------------------------------------

    def complete(
        self,
        task_id: str,
        result: Dict[str, Any],
        worker: Optional[str] = None,
        stats: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Store ``result`` for ``task_id``; first completion wins.

        A duplicate (late finish after lease expiry and re-execution)
        is dropped and counted.  Returns whether this result was the
        one accepted.
        """
        now = self.clock()
        with self._lock:
            if worker is not None:
                self._touch_worker(worker, now)
                info = self.workers[worker]
                info["completed"] += 1
                for key in ("profiling_passes", "wall_s"):
                    if stats and key in stats:
                        info[key] += stats[key]
                if stats and "profiling_passes" in stats:
                    self.counters["profiling_passes"] += \
                        stats["profiling_passes"]
            entry = self._entries.get(task_id)
            if entry is None:
                return False  # evicted: nothing waits on it
            if entry.state == DONE:
                self.counters["duplicate_results"] += 1
                return False
            entry.state = DONE
            entry.result = result
            entry.worker = None
            entry.lease_id = None
            self.counters["completed"] += 1
            return True

    def fail(
        self,
        task_id: str,
        error: str,
        worker: Optional[str] = None,
    ) -> bool:
        """Report a task execution failure; requeue or give up.

        Counts one attempt.  Under ``max_attempts`` the task re-enters
        the queue after an exponential backoff; at the bound it turns
        terminally ``failed`` and collectors see ``error``.  Returns
        whether the task will be retried.
        """
        now = self.clock()
        with self._lock:
            if worker is not None:
                self._touch_worker(worker, now)
                self.workers[worker]["failed"] += 1
            entry = self._entries.get(task_id)
            if entry is None or entry.state == DONE:
                return False
            return self._requeue(entry, error, now)

    def _requeue(self, entry: _Entry, error: str, now: float) -> bool:
        """One consumed attempt: back off and retry, or fail for good."""
        entry.attempts += 1
        entry.worker = None
        entry.lease_id = None
        if entry.attempts >= self.max_attempts:
            entry.state = FAILED
            entry.error = error
            self.counters["failed_tasks"] += 1
            return False
        entry.state = PENDING
        entry.error = error
        entry.not_before = now + self.backoff_base * (
            2 ** (entry.attempts - 1)
        )
        self._pending.append(entry.task_id)
        self.counters["retries"] += 1
        return True

    def expire(self) -> int:
        """Requeue every lease past its deadline; returns how many."""
        now = self.clock()
        expired = 0
        with self._lock:
            for entry in self._entries.values():
                if entry.state == LEASED and entry.deadline < now:
                    self.counters["expired_leases"] += 1
                    self._requeue(
                        entry,
                        f"lease {entry.lease_id} by {entry.worker!r} "
                        f"expired after {self.lease_ttl}s",
                        now,
                    )
                    expired += 1
            return expired

    # -- collection --------------------------------------------------------

    def get_result(self, task_id: str) -> Dict[str, Any]:
        """The task's state, plus its result or error when terminal."""
        with self._lock:
            entry = self._entries.get(task_id)
            if entry is None:
                return {"state": "unknown"}
            payload: Dict[str, Any] = {
                "state": entry.state, "attempts": entry.attempts,
            }
            if entry.state == DONE:
                payload["result"] = entry.result
            elif entry.state == FAILED:
                payload["error"] = entry.error
            return payload

    # -- lifecycle / introspection ----------------------------------------

    def drain(self) -> None:
        """Stop leasing; pulling workers are told to shut down."""
        with self._lock:
            self.draining = True

    def status(self) -> Dict[str, Any]:
        """Queue depths, in-flight leases, worker liveness, counters."""
        now = self.clock()
        with self._lock:
            by_state = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
            leases = []
            for entry in self._entries.values():
                by_state[entry.state] += 1
                if entry.state == LEASED:
                    leases.append({
                        "task_id": entry.task_id,
                        "worker": entry.worker,
                        "attempt": entry.attempts + 1,
                        "expires_in_s": round(entry.deadline - now, 3),
                    })
            workers = {
                name: {
                    "completed": info["completed"],
                    "failed": info["failed"],
                    "profiling_passes": info["profiling_passes"],
                    "wall_s": round(info["wall_s"], 3),
                    "last_seen_s_ago": round(now - info["last_seen"], 3),
                }
                for name, info in sorted(self.workers.items())
            }
            return {
                "draining": self.draining,
                "lease_ttl": self.lease_ttl,
                "max_attempts": self.max_attempts,
                "queue": dict(by_state, **{"depth": by_state[PENDING]}),
                "leases": leases,
                "workers": workers,
                "counters": dict(self.counters),
            }
