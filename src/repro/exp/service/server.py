"""The sweep server: an asyncio HTTP face over :class:`WorkQueue`.

One process, one event loop, one queue.  All mutation goes through the
queue's lock-guarded methods (each O(queue) at worst and free of IO),
so handlers never block the loop; the only background work is the
lease-expiry sweep, a periodic coroutine on the same loop.

Endpoints (JSON in, JSON out, one request per connection):

=======  ============  =====================================================
method   path          meaning
=======  ============  =====================================================
POST     /submit       ``{"tasks": [{"fn", "task"}, ...]}`` -> ``{"ids"}``
POST     /lease        ``{"worker"}`` -> ``{"task": {...}|null, "draining"}``
POST     /heartbeat    ``{"worker", "lease_id"?}`` -> ``{"lease_valid"}``
POST     /complete     ``{"task_id", "result", "worker"?, "stats"?}``
POST     /fail         ``{"task_id", "error", "worker"?}`` -> ``{"retry"}``
GET      /result       ``?id=<task_id>`` -> ``{"state", "result"?/"error"?}``
GET      /status       queue depth, leases, workers, counters, cache stats
GET      /health       ``{"ok": true}``
POST     /drain        stop leasing; workers are told to exit
=======  ============  =====================================================

The server executes nothing itself: workers pull ``{"fn", "task"}``
pairs and run them through the existing JSON task protocol against the
shared :class:`~repro.exp.cache.ProfileCache` data plane.  ``/status``
reports that cache's on-disk stats (the explicitly configured root, or
the most recent ``cache_dir`` seen in a submitted task).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.exp.service.queue import WorkQueue
from repro.exp.service.wire import (
    BadRequest,
    Request,
    read_request,
    write_response,
)

__all__ = ["SweepServer"]


class SweepServer:
    """Serve a :class:`WorkQueue` over localhost-grade HTTP.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    startup).  Use :meth:`serve_forever` from a CLI process, or
    :meth:`start_in_background` / :meth:`stop` to host the server on a
    private loop thread inside tests and examples.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        cache_dir: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.queue = WorkQueue(
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
        )
        #: Cache root reported by /status; submissions update it when
        #: not pinned explicitly, so status follows the live data plane.
        self.cache_dir = cache_dir
        self._cache_dir_pinned = cache_dir is not None
        self._server: Optional[asyncio.base_events.Server] = None
        self._expiry_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling --------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                status, payload = self._route(request)
            except BadRequest as exc:
                status, payload = 400, {"error": str(exc)}
            except asyncio.IncompleteReadError:
                return  # peer hung up mid-request
            except Exception as exc:  # a handler bug must not kill serving
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            await write_response(writer, status, payload)
        except (ConnectionError, OSError):
            pass  # peer gone before the response landed
        finally:
            writer.close()

    def _route(self, request: Request):
        routes = {
            ("POST", "/submit"): self._submit,
            ("POST", "/lease"): self._lease,
            ("POST", "/heartbeat"): self._heartbeat,
            ("POST", "/complete"): self._complete,
            ("POST", "/fail"): self._fail,
            ("GET", "/result"): self._result,
            ("GET", "/status"): self._status,
            ("GET", "/health"): lambda _request: (200, {"ok": True}),
            ("POST", "/drain"): self._drain,
        }
        handler = routes.get((request.method, request.path))
        if handler is None:
            if any(path == request.path for _method, path in routes):
                return 405, {"error": f"wrong method for {request.path}"}
            return 404, {"error": f"unknown endpoint {request.path}"}
        return handler(request)

    @staticmethod
    def _body(request: Request) -> Dict[str, Any]:
        if not isinstance(request.body, dict):
            raise BadRequest(f"{request.path} expects a JSON object body")
        return request.body

    def _submit(self, request: Request):
        body = self._body(request)
        tasks = body.get("tasks")
        if not isinstance(tasks, list):
            raise BadRequest('/submit expects {"tasks": [...]}')
        ids = []
        for item in tasks:
            if (
                not isinstance(item, dict)
                or not isinstance(item.get("fn"), str)
                or not isinstance(item.get("task"), dict)
            ):
                raise BadRequest(
                    'each submission must be {"fn": str, "task": {...}}'
                )
            ids.append(self.queue.submit(item["fn"], item["task"]))
            cache_dir = item["task"].get("cache_dir")
            if cache_dir and not self._cache_dir_pinned:
                self.cache_dir = cache_dir
        return 200, {"ids": ids}

    def _lease(self, request: Request):
        body = self._body(request)
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            raise BadRequest('/lease expects {"worker": "<id>"}')
        leased = self.queue.lease(worker)
        return 200, {"task": leased, "draining": self.queue.draining}

    def _heartbeat(self, request: Request):
        body = self._body(request)
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            raise BadRequest('/heartbeat expects {"worker": "<id>"}')
        valid = self.queue.heartbeat(worker, body.get("lease_id"))
        return 200, {"lease_valid": valid, "draining": self.queue.draining}

    def _complete(self, request: Request):
        body = self._body(request)
        task_id = body.get("task_id")
        if not isinstance(task_id, str) or "result" not in body:
            raise BadRequest(
                '/complete expects {"task_id": str, "result": ...}'
            )
        accepted = self.queue.complete(
            task_id, body["result"],
            worker=body.get("worker"), stats=body.get("stats"),
        )
        return 200, {"accepted": accepted}

    def _fail(self, request: Request):
        body = self._body(request)
        task_id = body.get("task_id")
        if not isinstance(task_id, str):
            raise BadRequest('/fail expects {"task_id": str, "error": str}')
        retry = self.queue.fail(
            task_id, str(body.get("error", "unknown error")),
            worker=body.get("worker"),
        )
        return 200, {"retry": retry}

    def _result(self, request: Request):
        task_id = request.query.get("id")
        if not task_id:
            raise BadRequest("/result expects ?id=<task_id>")
        return 200, self.queue.get_result(task_id)

    def _status(self, _request: Request):
        status = self.queue.status()
        status["cache"] = self._cache_stats()
        return 200, status

    def _cache_stats(self) -> Optional[Dict[str, Any]]:
        if not self.cache_dir:
            return None
        from repro.exp.cache import ProfileCache

        try:
            return ProfileCache(self.cache_dir).stats()
        except OSError:  # pragma: no cover - unreadable root
            return {"root": str(self.cache_dir), "error": "unreadable"}

    def _drain(self, _request: Request):
        self.queue.drain()
        return 200, {"draining": True}

    # -- lifecycle ---------------------------------------------------------

    async def _expiry_loop(self) -> None:
        interval = max(0.05, self.queue.lease_ttl / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.queue.expire()

    async def start(self) -> None:
        """Bind and start serving on the running event loop."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._expiry_task = asyncio.ensure_future(self._expiry_loop())

    async def _shutdown(self) -> None:
        if self._expiry_task is not None:
            self._expiry_task.cancel()
            try:
                await self._expiry_task
            except asyncio.CancelledError:
                pass
            self._expiry_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self) -> None:
        await self.start()
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await self._shutdown()

    def serve_forever(self) -> None:
        """Blocking entry point for ``python -m repro.exp.service serve``."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start_in_background(self) -> "SweepServer":
        """Host the server on a private daemon loop thread; returns self.

        :attr:`port` is resolved (ephemeral binds included) before this
        returns, so callers can hand out :attr:`url` immediately.
        """
        if self._loop is not None:
            raise ServiceError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="sweep-server", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.start(), self._loop).result()
        return self

    def stop(self) -> None:
        """Stop a background server and retire its loop thread."""
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._shutdown(), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "SweepServer":
        return self.start_in_background()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"<SweepServer {self.url}>"
