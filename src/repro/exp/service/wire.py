"""Minimal HTTP/1.1 JSON framing -- stdlib only, both directions.

The sweep service speaks the smallest useful slice of HTTP/1.1: one
request per connection (``Connection: close``), JSON bodies, explicit
``Content-Length``.  The server side parses requests off asyncio
streams; the client side ships both a synchronous request (built on
:mod:`http.client`, used by workers and the CLI) and a coroutine one
(built on asyncio streams, used by :class:`RemoteBackend` so a network
await replaces ``run_in_executor`` without any thread hops).

No third-party dependency, no framework: the protocol surface is six
tiny endpoints and the whole point of hand-rolling is that the wire
format stays visible and testable.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ServiceError

__all__ = [
    "Request",
    "arequest",
    "parse_server_url",
    "read_request",
    "request",
    "write_response",
]

#: Largest accepted request body; a grid submission is a few MB at the
#: extreme, so this mostly guards the server against garbage traffic.
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    """One parsed request: method, path, query dict, JSON body."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Any],
    ):
        self.method = method
        self.path = path
        self.query = query
        self.body = body

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.path}>"


class BadRequest(ServiceError):
    """The peer sent something that is not a well-formed request."""


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    line = await reader.readline()
    if not line:
        return None  # peer connected and went away
    try:
        method, target, _version = line.decode("ascii").split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise BadRequest("malformed request line")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("bad Content-Length")
    if not 0 <= length <= MAX_BODY_BYTES:
        raise BadRequest(f"refusing body of {length} bytes")
    body: Optional[Any] = None
    if length:
        data = await reader.readexactly(length)
        try:
            body = json.loads(data)
        except ValueError:
            raise BadRequest("body is not valid JSON")
    path, _, query_string = target.partition("?")
    return Request(method.upper(), path, dict(parse_qsl(query_string)), body)


def _encode_response(status: int, payload: Any) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


async def write_response(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    """Send one JSON response and flush (the connection then closes)."""
    writer.write(_encode_response(status, payload))
    await writer.drain()


def parse_server_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` (or bare ``host:port``) -> ``(host, port)``."""
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    if parts.scheme not in ("", "http"):
        raise ServiceError(
            f"sweep service URLs are plain http, got {url!r}"
        )
    if not parts.hostname or not parts.port:
        raise ServiceError(
            f"server URL needs host and port, got {url!r} "
            f"(expected e.g. http://127.0.0.1:8642)"
        )
    return parts.hostname, parts.port


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    timeout: float = 30.0,
) -> Any:
    """One synchronous JSON request; returns the decoded response body.

    Raises :class:`ServiceError` on any non-200 status or transport
    problem (connection refused surfaces as ``ServiceError`` too, so
    callers retry one exception type).
    """
    body = None if payload is None else json.dumps(payload)
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json",
                         "Connection": "close"},
            )
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
    except (OSError, http.client.HTTPException) as exc:
        raise ServiceError(
            f"sweep service at {host}:{port} unreachable: {exc}"
        ) from exc
    return _decode_reply(response.status, data, host, port, path)


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Any] = None,
    timeout: float = 30.0,
) -> Any:
    """The coroutine twin of :func:`request`, over asyncio streams."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ServiceError(
            f"sweep service at {host}:{port} unreachable: {exc}"
        ) from exc
    try:
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        try:
            status = int(status_line.decode("ascii").split(" ", 2)[1])
        except (IndexError, UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"garbled response from {host}:{port}: {status_line!r}"
            ) from exc
        length = 0
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await asyncio.wait_for(
            reader.readexactly(length), timeout
        ) if length else b""
    except (OSError, asyncio.IncompleteReadError,
            asyncio.TimeoutError) as exc:
        raise ServiceError(
            f"sweep service at {host}:{port} dropped the connection: {exc}"
        ) from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, socket.error):  # pragma: no cover - close race
            pass
    return _decode_reply(status, data, host, port, path)


def _decode_reply(
    status: int, data: bytes, host: str, port: int, path: str
) -> Any:
    try:
        decoded = json.loads(data) if data else None
    except ValueError as exc:
        raise ServiceError(
            f"non-JSON response from {host}:{port}{path}: {data[:200]!r}"
        ) from exc
    if status != 200:
        detail = decoded.get("error") if isinstance(decoded, dict) else decoded
        raise ServiceError(
            f"sweep service {host}:{port}{path} returned {status}: {detail}"
        )
    return decoded
