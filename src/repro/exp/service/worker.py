"""The worker loop: pull, execute, heartbeat, report.

A worker is a plain process (or thread, in tests) that pulls
``{"fn", "task"}`` pairs from the server and runs them through the
*existing* JSON task protocol -- exactly the module-level callables
the in-process backends map (:func:`repro.exp.runner._measure_task` /
:func:`repro.exp.runner._execute_task`), resolved here by protocol
name.  Measurements flow through the shared
:class:`~repro.exp.cache.ProfileCache` named inside each task, so a
fleet against one warm cache re-profiles nothing.

Robustness contract:

- a background thread heartbeats the active lease at a fraction of the
  server's ``lease_ttl``, so long simulations survive short TTLs while
  a *killed* worker's lease still expires promptly;
- task exceptions are reported via ``/fail`` (the server retries with
  backoff, bounded) and never kill the loop;
- an unreachable server is retried with capped backoff -- workers may
  start before the server and simply wait for it;
- a drain notice or the ``stop`` event ends the loop after the current
  task, never mid-task (graceful shutdown).

Each completion reports the profiling passes the task actually
performed (ground truth from :func:`repro.core.profiling.profiling_passes`),
which the server aggregates -- the "warm fleet re-profiles nothing"
claim is observable at ``/status``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.core.profiling import profiling_passes
from repro.errors import ConfigurationError, ServiceError
from repro.exp.runner import _execute_task, _measure_task
from repro.exp.service.client import ServiceClient

__all__ = ["TASK_FUNCTIONS", "run_worker", "worker_fn_name"]

#: Protocol name -> the module-level JSON task callable it ships.
TASK_FUNCTIONS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "measure": _measure_task,
    "execute": _execute_task,
}

#: Retreat cap for an unreachable server.
_MAX_SERVER_BACKOFF_S = 5.0


def worker_fn_name(worker: Callable) -> str:
    """The protocol name of a runner task callable.

    Only the JSON task protocol crosses the network -- arbitrary
    callables cannot (and must not) be pickled across machines.
    """
    for name, fn in TASK_FUNCTIONS.items():
        if fn is worker:
            return name
    raise ConfigurationError(
        f"RemoteBackend can only ship the JSON task protocol "
        f"({', '.join(sorted(TASK_FUNCTIONS))}), not {worker!r}"
    )


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{threading.get_ident()}"


class _Heartbeat:
    """Beats one lease on a background thread until stopped."""

    def __init__(
        self, client: ServiceClient, worker_id: str, lease_id: str,
        interval: float,
    ):
        self._client = client
        self._worker_id = worker_id
        self._lease_id = lease_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{lease_id}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat(self._worker_id, self._lease_id)
            except ServiceError:
                pass  # transient; the next beat retries

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()


def _run_one(
    client: ServiceClient, worker_id: str, leased: Dict[str, Any]
) -> None:
    """Execute one leased task and report its outcome."""
    heartbeat = _Heartbeat(
        client, worker_id, leased["lease_id"],
        interval=max(0.05, leased["lease_ttl"] / 3.0),
    )
    started = time.time()
    passes_before = profiling_passes()
    try:
        fn = TASK_FUNCTIONS.get(leased["fn"])
        if fn is None:
            raise ConfigurationError(
                f"unknown task function {leased['fn']!r} "
                f"(this worker speaks: {', '.join(sorted(TASK_FUNCTIONS))})"
            )
        result = fn(leased["task"])
    except Exception as exc:
        heartbeat.stop()
        try:
            client.fail(
                leased["task_id"],
                f"{type(exc).__name__}: {exc}",
                worker=worker_id,
            )
        except ServiceError:
            pass  # lease expiry will requeue it
    else:
        heartbeat.stop()
        try:
            client.complete(
                leased["task_id"], result, worker=worker_id,
                stats={
                    "profiling_passes": profiling_passes() - passes_before,
                    "wall_s": time.time() - started,
                },
            )
        except ServiceError:
            pass  # result lost with the connection; a retry recomputes


def run_worker(
    url: Optional[str] = None,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    stop: Optional[threading.Event] = None,
    max_tasks: Optional[int] = None,
    quiet: bool = True,
) -> int:
    """Pull and execute tasks until drained/stopped; returns tasks run.

    ``stop`` (an external :class:`threading.Event`) ends the loop after
    the task in flight; ``max_tasks`` bounds the run for tests.
    """
    client = ServiceClient(url)
    me = worker_id or _default_worker_id()
    stop = stop or threading.Event()
    executed = 0
    backoff = poll_interval
    while not stop.is_set():
        if max_tasks is not None and executed >= max_tasks:
            break
        try:
            reply = client.lease(me)
        except ServiceError:
            # Server not up (yet) or restarting: retreat, capped.
            if stop.wait(backoff):
                break
            backoff = min(backoff * 2.0, _MAX_SERVER_BACKOFF_S)
            continue
        backoff = poll_interval
        if reply.get("draining"):
            if not quiet:
                print(f"worker {me}: server draining, exiting")
            break
        leased = reply.get("task")
        if leased is None:
            stop.wait(poll_interval)
            continue
        if not quiet:
            print(
                f"worker {me}: {leased['fn']} task "
                f"{leased['task_id']} (attempt {leased['attempt']})"
            )
        _run_one(client, me, leased)
        executed += 1
    return executed
