"""CI mini-grid smoke: ``python -m repro.exp.smoke``.

Runs a 2x2 scenario grid (two L2 sizes x two solvers) on the parallel
runner with ``workers=2`` at test scale, then asserts the experiment
pipeline's contracts end to end:

- the JSONL schema round-trips through :meth:`ResultStore.load`,
- profiling ran once for the whole grid (the L2 axis and the solver
  axis share one profile key),
- every set-partitioned record removed cross-owner interference.

Finishes in well under 30 seconds; exits non-zero on any violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.exp import ExperimentRunner, ResultStore, Scenario, WorkloadSpec, sweep
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


def build_grid():
    """The 2x2 smoke grid: L2 capacity x solver, one profile key."""
    # Four 12 KB stages against a 64/128 KB L2: the stages genuinely
    # contend for the cache, so partitioning has something to win.
    base = Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 4, "n_tokens": 24, "token_bytes": 1024,
             "work_bytes": 12 * 1024},
        ),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(sizes=[1, 2, 4, 8]),
    )
    return sweep(base, l2_size_kb=[64, 128], solver=["dp", "greedy"])


def main() -> int:
    scenarios = build_grid()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.jsonl"
        runner = ExperimentRunner(workers=2, store_path=str(path))
        store = runner.run(scenarios)

        problems = []
        if len(store) != 4:
            problems.append(f"expected 4 records, got {len(store)}")
        if runner.last_stats["profiles_computed"] != 1:
            problems.append(
                f"expected exactly 1 profiling pass for the grid, got "
                f"{runner.last_stats['profiles_computed']}"
            )
        loaded = ResultStore.load(path)
        if loaded.fingerprint() != store.fingerprint():
            problems.append("JSONL round-trip changed the store fingerprint")
        if loaded.canonical() != store.canonical():
            problems.append("JSONL round-trip changed record contents")
        for record in store:
            if record.partitioned["cross_evictions"] != 0:
                problems.append(
                    f"{record.scenario_id}: set partitioning left "
                    f"{record.partitioned['cross_evictions']} cross-evictions"
                )
            if record.miss_reduction_factor < 1.2:
                problems.append(
                    f"{record.scenario_id}: no miss reduction "
                    f"({record.miss_reduction_factor})"
                )

    header, rows = store.to_table(
        ("l2_kb", "solver", "shared_miss_rate", "partitioned_miss_rate",
         "miss_reduction_factor")
    )
    print("mini-grid smoke (2x2 scenarios, workers=2)")
    print("  " + " | ".join(header))
    for row in rows:
        print("  " + " | ".join(
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
        ))
    if problems:
        for problem in problems:
            print(f"SMOKE FAILURE: {problem}", file=sys.stderr)
        return 1
    print("smoke ok: schema round-trips, 1 profile pass, interference-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
