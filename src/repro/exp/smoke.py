"""CI mini-grid smoke: ``python -m repro.exp.smoke``.

Runs a 2x2 scenario grid (two L2 sizes x two solvers) *twice* against
a persistent profile cache, then asserts the experiment pipeline's
contracts end to end:

- the JSONL schema round-trips through :meth:`ResultStore.load`,
- profiling ran once for the whole grid (the L2 axis and the solver
  axis share one profile key) -- and on the second pass, with the memo
  tables cleared, ran *zero* times: everything resolves from the
  on-disk cache, and the store fingerprint is byte-identical,
- a third pass re-runs the grid with ``engine="compiled"`` (the
  schedule-compiled execution tier): cache keys and records exclude
  the engine, so it must re-measure nothing and reproduce the cold
  fingerprint bit for bit,
- every set-partitioned record removed cross-owner interference.

The cache root honours ``$REPRO_PROFILE_CACHE``; without it a temp
directory keeps local runs hermetic.  CI points the env var at a
workspace path and invokes the smoke twice -- the second invocation
passes ``--expect-warm``, which additionally asserts that the *first*
pass of that process performed zero profiling passes AND that its
store fingerprint matches the one the cold invocation recorded next
to the cache (cross-process identity, not just cross-runner).

Finishes in well under 30 seconds; exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.core.profiling import profiling_passes
from repro.exp import (
    ExperimentRunner,
    ProfileCache,
    ResultStore,
    Scenario,
    TransitionSpec,
    WorkloadSpec,
    clear_caches,
    content_hash,
    run_scenario,
    sweep,
)
from repro.exp.cache import CACHE_ENV_VAR
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


def _base_scenario() -> Scenario:
    # Four 12 KB stages against a 64/128 KB L2: the stages genuinely
    # contend for the cache, so partitioning has something to win.
    return Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 4, "n_tokens": 24, "token_bytes": 1024,
             "work_bytes": 12 * 1024},
        ),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(sizes=[1, 2, 4, 8]),
    )


def build_grid():
    """The 2x2 smoke grid: L2 capacity x solver, one profile key."""
    return sweep(_base_scenario(), l2_size_kb=[64, 128], solver=["dp", "greedy"])


def build_dynamic_scenario() -> Scenario:
    """One online transition: the smoke pipeline joins itself mid-run.

    The join group's profile requirement is *exactly* the profile key
    the static grid caches, so against a warm cache the arrival costs
    zero profiling passes -- the compositional online contract.
    """
    base = _base_scenario()
    return Scenario(
        workload=base.workload,
        cake=base.cake,
        method=base.method,
        transitions=(
            TransitionSpec(
                at=200_000.0, action="join",
                workload=base.workload, group="late",
            ),
        ),
    )


def _check_records(store: ResultStore, problems: List[str]) -> None:
    """The per-record contracts both passes must satisfy."""
    if len(store) != 4:
        problems.append(f"expected 4 records, got {len(store)}")
    for record in store:
        if record.partitioned["cross_evictions"] != 0:
            problems.append(
                f"{record.scenario_id}: set partitioning left "
                f"{record.partitioned['cross_evictions']} cross-evictions"
            )
        if record.miss_reduction_factor < 1.2:
            problems.append(
                f"{record.scenario_id}: no miss reduction "
                f"({record.miss_reduction_factor})"
            )


def run_smoke(
    cache_dir: Path,
    tmp: Path,
    expect_warm: bool,
    backend: Optional[str] = None,
) -> int:
    scenarios = build_grid()
    cache = ProfileCache(cache_dir)
    problems: List[str] = []

    # Pass 1: parallel runner against the (possibly pre-warmed) cache.
    # ``backend`` overrides the transport (the CI service job passes
    # "remote" to ship this pass through a server + worker fleet); the
    # later passes stay inline, so their fingerprint checks double as
    # a transport-vs-inline differential gate.
    runner = ExperimentRunner(
        workers=2, store_path=str(tmp / "smoke.jsonl"), cache=cache,
        backend=backend,
    )
    store = runner.run(scenarios)
    stats = runner.last_stats
    measured = stats["profiles_computed"] + stats["profiles_from_disk"]
    if measured != 1:
        problems.append(
            f"expected exactly 1 profile for the grid (computed or "
            f"cached), got {stats}"
        )
    if expect_warm and (
        stats["profiles_computed"] != 0 or stats["baselines_computed"] != 0
    ):
        problems.append(
            f"--expect-warm: first pass still computed "
            f"{stats['profiles_computed']} profiles / "
            f"{stats['baselines_computed']} baselines (cache at "
            f"{cache.root} was cold or partial)"
        )
    # Pin the store fingerprint *across processes*: each invocation
    # records it next to the cache, and --expect-warm compares against
    # what the cold invocation recorded -- cached measurements must
    # reproduce the cold run's records bit for bit.
    marker = cache_dir / "smoke.fingerprint"
    if expect_warm:
        if not marker.exists():
            problems.append(
                f"--expect-warm: no fingerprint recorded at {marker} "
                f"(was the cold smoke run against this cache?)"
            )
        elif marker.read_text().strip() != store.fingerprint():
            problems.append(
                f"cross-process fingerprint drift: cold run recorded "
                f"{marker.read_text().strip()}, warm cache reproduced "
                f"{store.fingerprint()}"
            )
    cache_dir.mkdir(parents=True, exist_ok=True)
    marker.write_text(store.fingerprint() + "\n")
    loaded = ResultStore.load(tmp / "smoke.jsonl")
    if loaded.fingerprint() != store.fingerprint():
        problems.append("JSONL round-trip changed the store fingerprint")
    if loaded.canonical() != store.canonical():
        problems.append("JSONL round-trip changed record contents")
    _check_records(store, problems)

    # Pass 2: memo tables cleared, fresh inline runner -- everything
    # must come from the disk cache, with zero profiling passes.
    clear_caches()
    passes_before = profiling_passes()
    second_runner = ExperimentRunner(
        workers=1, store_path=str(tmp / "smoke_warm.jsonl"), cache=cache
    )
    second = second_runner.run(scenarios)
    warm_stats = second_runner.last_stats
    warm_passes = profiling_passes() - passes_before
    if warm_passes != 0:
        problems.append(
            f"warm pass performed {warm_passes} profiling passes "
            f"(expected 0)"
        )
    if warm_stats["profiles_computed"] != 0 or warm_stats["baselines_computed"] != 0:
        problems.append(f"warm pass recomputed work: {warm_stats}")
    if warm_stats["profiles_from_disk"] != 1:
        problems.append(
            f"warm pass expected 1 profile from disk, got {warm_stats}"
        )
    if second.fingerprint() != store.fingerprint():
        problems.append(
            "warm-cache fingerprint differs from the cold run "
            f"({second.fingerprint()} != {store.fingerprint()})"
        )

    # Pass 3: the same grid on the schedule-compiled engine.  Engines
    # are bit-identical and excluded from every identity, so this pass
    # must (a) reuse every cached measurement -- profile and baseline
    # keys are engine-invariant -- and (b) reproduce the cold store
    # fingerprint record for record.  (Without a C toolchain the
    # compiled engine degrades to the fast walker, which keeps both
    # contracts; the gate holds either way.)
    compiled_runner = ExperimentRunner(
        workers=1, store_path=str(tmp / "smoke_compiled.jsonl"), cache=cache
    )
    compiled = compiled_runner.run(
        [scenario.with_engine("compiled") for scenario in scenarios]
    )
    compiled_stats = compiled_runner.last_stats
    if compiled_stats["profiles_computed"] or \
            compiled_stats["baselines_computed"]:
        problems.append(
            f"engine='compiled' pass re-measured work (engine must be "
            f"excluded from cache keys): {compiled_stats}"
        )
    if compiled.fingerprint() != store.fingerprint():
        problems.append(
            "engine='compiled' fingerprint differs from the cold run "
            f"({compiled.fingerprint()} != {store.fingerprint()})"
        )

    # Pass 4: one online transition.  The dynamic scenario's two
    # profile requirements (base + join group) both map to the profile
    # key the grid already measured, so the arrival of the
    # already-profiled task set performs zero profiling passes; and its
    # record (canonical form, timing excluded) must be deterministic
    # across processes, pinned like the grid fingerprint.
    passes_before = profiling_passes()
    dynamic_outcome = run_scenario(build_dynamic_scenario(), cache=cache)
    dynamic_passes = profiling_passes() - passes_before
    if dynamic_passes != 0:
        problems.append(
            f"dynamic scenario performed {dynamic_passes} profiling passes "
            f"(a warm-cache arrival must re-profile nothing)"
        )
    payload = dynamic_outcome.record.payload
    transitions = payload.get("transitions") or []
    if len(transitions) != 1 or not transitions[0]["admitted"]:
        problems.append(f"dynamic join was not admitted: {transitions}")
    epochs = payload.get("epochs") or []
    if len(epochs) != 2:
        problems.append(f"expected 2 epochs (join + end), got {len(epochs)}")
    dynamic_fp = content_hash(dynamic_outcome.record.canonical())
    dynamic_marker = cache_dir / "smoke.dynamic.fingerprint"
    if expect_warm:
        if not dynamic_marker.exists():
            problems.append(
                f"--expect-warm: no dynamic fingerprint at {dynamic_marker}"
            )
        elif dynamic_marker.read_text().strip() != dynamic_fp:
            problems.append(
                f"dynamic record fingerprint drift: cold run recorded "
                f"{dynamic_marker.read_text().strip()}, warm reproduced "
                f"{dynamic_fp}"
            )
    dynamic_marker.write_text(dynamic_fp + "\n")

    header, rows = store.to_table(
        ("l2_kb", "solver", "shared_miss_rate", "partitioned_miss_rate",
         "miss_reduction_factor")
    )
    print("mini-grid smoke (2x2 scenarios, workers=2, then warm re-run)")
    print("  " + " | ".join(header))
    for row in rows:
        print("  " + " | ".join(
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
        ))
    print(
        f"  cache {cache.root}: "
        f"profiles computed={stats['profiles_computed']} "
        f"from_disk={stats['profiles_from_disk']}; warm pass "
        f"computed={warm_stats['profiles_computed']} "
        f"from_disk={warm_stats['profiles_from_disk']} "
        f"(profiling passes: {warm_passes})"
    )
    if problems:
        for problem in problems:
            print(f"SMOKE FAILURE: {problem}", file=sys.stderr)
        return 1
    print(
        "smoke ok: schema round-trips, 1 profile pass, warm re-run "
        "re-profiled nothing, compiled engine reproduced the "
        "fingerprint from cache, online join admitted with zero "
        "re-profiling, interference-free"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp.smoke",
        description="CI mini-grid smoke over the cached sweep pipeline.",
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="assert the profile cache is already warm (zero profiling "
        "passes even on the first run of this process)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend for the first grid pass (e.g. 'remote' "
        "to ship it through a running sweep server + worker fleet; "
        "default: a 2-worker process pool)",
    )
    args = parser.parse_args(argv)

    env_dir = os.environ.get(CACHE_ENV_VAR)
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(env_dir) if env_dir else Path(tmp) / "cache"
        return run_smoke(
            cache_dir, Path(tmp), args.expect_warm, backend=args.backend
        )


if __name__ == "__main__":
    sys.exit(main())
