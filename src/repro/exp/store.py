"""The unified result store: append-only JSONL with a stable schema.

Every executed scenario becomes one :class:`ScenarioRecord` -- a plain
JSON object with a ``schema`` version, the full scenario spec, a flat
``axes`` view for filtering, raw metric counters for the shared and
partitioned runs, the partition plan, and a ``timing`` block that is
explicitly *excluded* from identity comparisons (wall times differ
between runs; everything else must not).

Derived quantities (miss-reduction factor, CPI improvement) are
computed from the raw counters on access rather than stored, so the
JSONL stays pure JSON (no ``Infinity`` literals) and derived
definitions can evolve without invalidating old stores.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.method import cpi_improvement, reduction_factor
from repro.errors import ConfigurationError
from repro.exp.scenario import Scenario, content_hash

__all__ = ["ResultStore", "ScenarioRecord", "SCHEMA_VERSION"]

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

_PathLike = Union[str, Path]


class ScenarioRecord:
    """One scenario's result: a schema-stable dict with typed accessors."""

    def __init__(self, payload: Dict[str, Any]):
        if payload.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"record schema {payload.get('schema')!r} != "
                f"{SCHEMA_VERSION} (regenerate the store)"
            )
        self.payload = payload

    # -- identity ----------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        return self.payload["scenario_id"]

    @property
    def profile_key(self) -> Optional[str]:
        return self.payload["profile_key"]

    @property
    def scenario(self) -> Scenario:
        """The spec, reconstructed."""
        return Scenario.from_dict(self.payload["scenario"])

    @property
    def axes(self) -> Dict[str, Any]:
        """Flat view of the record for filtering and tables."""
        return self.payload["axes"]

    @property
    def mode(self) -> str:
        return self.payload["axes"]["mode"]

    # -- metrics -----------------------------------------------------------

    @property
    def shared(self) -> Optional[Dict[str, Any]]:
        """Raw counters of the shared-cache run (None if not run)."""
        return self.payload["metrics"]["shared"]

    @property
    def partitioned(self) -> Optional[Dict[str, Any]]:
        """Raw counters of the partitioned run (None for shared mode)."""
        return self.payload["metrics"]["partitioned"]

    @property
    def plan(self) -> Optional[Dict[str, int]]:
        """owner -> units of the optimized plan (set mode only)."""
        plan = self.payload["plan"]
        return None if plan is None else plan["units_by_owner"]

    @property
    def predicted_misses(self) -> Optional[float]:
        plan = self.payload["plan"]
        return None if plan is None else plan["predicted_misses"]

    @property
    def compositionality_max_rel_diff(self) -> Optional[float]:
        comp = self.payload["compositionality"]
        return None if comp is None else comp["max_relative_difference"]

    # -- derived headline numbers -----------------------------------------

    @property
    def shared_miss_rate(self) -> Optional[float]:
        shared = self.shared
        return None if shared is None else shared["miss_rate"]

    @property
    def partitioned_miss_rate(self) -> Optional[float]:
        part = self.partitioned
        return None if part is None else part["miss_rate"]

    @property
    def miss_reduction_factor(self) -> Optional[float]:
        """Shared misses / partitioned misses; ``inf`` for a perfect run."""
        if self.shared is None or self.partitioned is None:
            return None
        return reduction_factor(
            self.shared["misses"], self.partitioned["misses"]
        )

    @property
    def cpi_improvement(self) -> Optional[float]:
        if self.shared is None or self.partitioned is None:
            return None
        return cpi_improvement(
            self.shared["mean_cpi"], self.partitioned["mean_cpi"]
        )

    # -- comparisons -------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The record minus the timing block (for identity checks)."""
        return {k: v for k, v in self.payload.items() if k != "timing"}

    def to_json_line(self) -> str:
        return json.dumps(self.payload, sort_keys=True)

    def __repr__(self) -> str:
        return f"<ScenarioRecord {self.scenario_id} {self.axes}>"


class ResultStore:
    """Append-only collection of scenario records, optionally on disk.

    With a ``path`` the store mirrors every appended record to a JSONL
    file as it arrives (results stream; a crashed sweep keeps what it
    finished).  ``ResultStore.load(path)`` reads one back.
    """

    #: Filter keys served by the in-memory identity index (record
    #: fields, not ``axes`` entries) instead of the linear scan.
    INDEXED_KEYS = ("scenario_id", "profile_key")

    def __init__(self, path: Optional[_PathLike] = None, append: bool = False):
        self.path = Path(path) if path is not None else None
        self.records: List[ScenarioRecord] = []
        #: value -> ascending record positions, per indexed key.  Built
        #: lazily and extended incrementally: records are append-only,
        #: so positions never invalidate.
        self._identity_index: Dict[str, Dict[str, List[int]]] = {
            key: {} for key in self.INDEXED_KEYS
        }
        self._indexed_upto = 0
        if self.path is not None:
            if self.path.exists() and append:
                for record in self._read(self.path):
                    self.records.append(record)
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.path.write_text("")

    # -- building ----------------------------------------------------------

    def append(self, record: Union[ScenarioRecord, Dict[str, Any]]) -> ScenarioRecord:
        """Add one record, mirroring it to the JSONL file if attached.

        The mirror write is one ``os.write`` on an ``O_APPEND``
        descriptor -- the kernel serialises the offset update, so
        concurrent appenders (a sweep service worker fleet and a local
        run sharing one store file) interleave whole lines, never
        torn ones.  No userspace buffering: the line is durable in the
        page cache when this returns, so a crashed sweep keeps every
        record it streamed.
        """
        if not isinstance(record, ScenarioRecord):
            record = ScenarioRecord(record)
        self.records.append(record)
        if self.path is not None:
            data = (record.to_json_line() + "\n").encode("utf-8")
            fd = os.open(
                str(self.path),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                os.write(fd, data)
            finally:
                os.close(fd)
        return record

    @staticmethod
    def _read(path: Path) -> Iterator[ScenarioRecord]:
        for line in path.read_text().splitlines():
            line = line.strip()
            if line:
                yield ScenarioRecord(json.loads(line))

    @classmethod
    def load(cls, path: _PathLike) -> "ResultStore":
        """Read a store back from its JSONL file (in-memory copy)."""
        store = cls()
        for record in cls._read(Path(path)):
            store.records.append(record)
        return store

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ScenarioRecord]:
        return iter(self.records)

    def _ensure_index(self) -> None:
        """Extend the identity index over records appended since last use."""
        while self._indexed_upto < len(self.records):
            position = self._indexed_upto
            record = self.records[position]
            by_id = self._identity_index["scenario_id"]
            by_id.setdefault(record.scenario_id, []).append(position)
            # None indexes like any value: filter(profile_key=None)
            # means "records that needed no profiling" (shared mode).
            by_key = self._identity_index["profile_key"]
            by_key.setdefault(record.profile_key, []).append(position)
            self._indexed_upto += 1

    def filter(
        self,
        predicate: Optional[Callable[[ScenarioRecord], bool]] = None,
        **axes: Any,
    ) -> "ResultStore":
        """Records matching every given axis value (and ``predicate``).

        ``store.filter(workload="mpeg2", solver="dp")`` matches against
        the flat ``axes`` view of each record.  ``scenario_id`` and
        ``profile_key`` match the record identity fields through an
        in-memory index -- O(matches), not O(records), so point
        lookups stay cheap on stores with many thousands of records.
        Result order is append order either way.
        """
        identity = {
            key: axes.pop(key) for key in self.INDEXED_KEYS if key in axes
        }
        if identity:
            self._ensure_index()
            positions: Optional[List[int]] = None
            for key, value in identity.items():
                hits = self._identity_index[key].get(value, [])
                if positions is None:
                    positions = list(hits)
                else:
                    keep = set(hits)
                    positions = [p for p in positions if p in keep]
            candidates = [self.records[p] for p in positions or []]
        else:
            candidates = self.records
        subset = ResultStore()
        for record in candidates:
            if any(record.axes.get(k) != v for k, v in axes.items()):
                continue
            if predicate is not None and not predicate(record):
                continue
            subset.records.append(record)
        return subset

    #: Columns to_table understands beyond raw axis names.
    DERIVED_COLUMNS: Dict[str, Callable[[ScenarioRecord], Any]] = {
        "scenario_id": lambda r: r.scenario_id,
        "shared_miss_rate": lambda r: r.shared_miss_rate,
        "partitioned_miss_rate": lambda r: r.partitioned_miss_rate,
        "miss_reduction_factor": lambda r: r.miss_reduction_factor,
        "cpi_improvement": lambda r: r.cpi_improvement,
        "compositionality": lambda r: r.compositionality_max_rel_diff,
        "predicted_misses": lambda r: r.predicted_misses,
        "shared_misses": lambda r: None if r.shared is None else r.shared["misses"],
        "partitioned_misses":
            lambda r: None if r.partitioned is None else r.partitioned["misses"],
    }

    #: Default to_table columns.
    DEFAULT_COLUMNS = (
        "workload", "mode", "l2_kb", "l2_ways", "n_cpus", "solver", "seed",
        "shared_miss_rate", "partitioned_miss_rate", "miss_reduction_factor",
        "cpi_improvement",
    )

    def to_table(
        self, columns: Optional[Sequence[str]] = None
    ) -> Tuple[List[str], List[List[Any]]]:
        """(header, rows) over all records.

        Columns name either a flat axis (``workload``, ``l2_kb``, ...)
        or a derived metric (see :attr:`DERIVED_COLUMNS`).
        """
        columns = list(columns if columns is not None else self.DEFAULT_COLUMNS)
        rows = []
        for record in self.records:
            row = []
            for column in columns:
                if column in self.DERIVED_COLUMNS:
                    row.append(self.DERIVED_COLUMNS[column](record))
                else:
                    row.append(record.axes.get(column))
            rows.append(row)
        return columns, rows

    # -- identity ----------------------------------------------------------

    def canonical(self) -> List[Dict[str, Any]]:
        """All records minus timing blocks, in append order."""
        return [record.canonical() for record in self.records]

    def fingerprint(self) -> str:
        """Stable hash of the canonical records (timing excluded).

        Two runs of the same grid -- any worker count -- must agree.
        """
        return content_hash(self.canonical())
