"""Named workload builders.

A :class:`~repro.exp.scenario.Scenario` refers to its application by
*name* rather than by a bare callable so that scenarios are

- **serializable** -- a scenario spec round-trips through JSON and can
  be replayed by another process (the parallel runner's workers) or a
  later session, and
- **hashable** -- the scenario content hash covers the workload
  identity and its keyword arguments, not a Python object id.

The registry ships with the paper's two evaluation applications plus
the synthetic pipeline generator; custom applications register under
their own name (at module import time, so process-pool workers see
them too).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Tuple

from repro.apps.synthetic import make_pipeline
from repro.apps.workloads import mpeg2_workload, two_jpeg_canny_workload
from repro.errors import ConfigurationError
from repro.kpn.graph import ProcessNetwork

__all__ = [
    "register_workload",
    "registered_workloads",
    "workload_builder",
]

#: name -> builder taking keyword arguments and returning a network.
_REGISTRY: Dict[str, Callable[..., ProcessNetwork]] = {}


def register_workload(
    name: str,
    builder: Callable[..., ProcessNetwork],
    overwrite: bool = False,
) -> None:
    """Register ``builder`` under ``name`` for use in scenarios.

    Registration must happen at import time of a module the workers
    also import (workers inherit the registry via fork, but a spawned
    interpreter rebuilds it from imports alone).
    """
    if not overwrite and name in _REGISTRY:
        raise ConfigurationError(f"workload {name!r} is already registered")
    _REGISTRY[name] = builder


def registered_workloads() -> Tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def workload_builder(name: str, **kwargs) -> Callable[[], ProcessNetwork]:
    """A zero-argument network builder for ``name`` with ``kwargs``."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_workloads()) or "<none>"
        raise ConfigurationError(
            f"unknown workload {name!r}; registered: {known}"
        ) from None
    return partial(builder, **kwargs)


register_workload("two_jpeg_canny", two_jpeg_canny_workload)
register_workload("mpeg2", mpeg2_workload)
register_workload("pipeline", make_pipeline)
