"""YAPI-like Kahn-process-network application model.

The paper describes applications with the Y-chart Applications
Programmers Interface (YAPI): parallel tasks communicating through
bounded FIFOs, synchronising implicitly by blocking on read-from-empty
and write-to-full, plus frame buffers that are produced completely
before being consumed (§4.1).

This package provides:

- :mod:`repro.kpn.graph` -- the static application description
  (:class:`ProcessNetwork` of :class:`TaskSpec` / :class:`FifoSpec` /
  :class:`FrameBufferSpec`), convertible to a :mod:`networkx` digraph
  (the task graph ``G = (V, E)`` of §3.1).
- :mod:`repro.kpn.ops` -- the operation protocol task programs yield
  (``Compute`` / ``ReadToken`` / ``WriteToken`` / ``Delay``).
- :mod:`repro.kpn.fifo` -- the run-time bounded-FIFO channel, which
  turns token transfers into address-accurate memory traffic.
- :mod:`repro.kpn.process` -- :class:`TaskContext`, the facade a task
  program uses to reach its regions, ports and pattern helpers.
"""

from repro.kpn.fifo import FifoChannel
from repro.kpn.graph import FifoSpec, FrameBufferSpec, ProcessNetwork, TaskSpec
from repro.kpn.ops import Compute, Delay, Op, ReadToken, WriteToken
from repro.kpn.process import TaskContext

__all__ = [
    "Compute",
    "Delay",
    "FifoChannel",
    "FifoSpec",
    "FrameBufferSpec",
    "Op",
    "ProcessNetwork",
    "ReadToken",
    "TaskContext",
    "TaskSpec",
    "WriteToken",
]
