"""Run-time bounded FIFO channels.

A :class:`FifoChannel` owns a ring buffer region in shared memory plus a
64-byte administration block inside the RTOS data region (read/write
pointers, token count -- the structures the operating system maintains
for YAPI FIFOs).  Reading or writing tokens therefore produces two kinds
of memory traffic, both of which the paper's partitioning must cover:

- payload accesses in the FIFO's own region, which the interval table
  resolves to the *FIFO's* owner id, and
- administration accesses in ``rt.data``, resolved to the RTOS owner.

The channel itself enforces KPN synchronisation state (token counts);
blocking/waking of tasks is orchestrated by the CPU runner, which parks
blocked tasks on ``waiting_readers`` / ``waiting_writers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import NetworkError
from repro.kpn.graph import FifoSpec
from repro.mem.address import Region
from repro.mem.trace import AccessBatch
from repro.patterns.streams import ring

__all__ = ["FifoChannel", "FifoStats"]

#: Bytes of the per-FIFO administration block in rt.data.
ADMIN_BLOCK_BYTES = 64

#: Payload element size (a 32-bit word per access).
PAYLOAD_ELEM_BYTES = 4


@dataclass
class FifoStats:
    """Observable behaviour of one FIFO channel."""

    tokens_produced: int = 0
    tokens_consumed: int = 0
    blocked_reads: int = 0
    blocked_writes: int = 0
    max_occupancy: int = 0


class FifoChannel:
    """Bounded FIFO with address-accurate token transfers."""

    def __init__(
        self,
        spec: FifoSpec,
        buffer_region: Region,
        admin_region: Region,
        admin_offset: int,
    ):
        if buffer_region.size < spec.buffer_bytes:
            raise NetworkError(
                f"fifo {spec.name!r}: region {buffer_region.name!r} smaller "
                f"than the ring buffer"
            )
        if admin_offset + ADMIN_BLOCK_BYTES > admin_region.size:
            raise NetworkError(
                f"fifo {spec.name!r}: admin block outside {admin_region.name!r}"
            )
        self.spec = spec
        self.buffer_region = buffer_region
        self.admin_region = admin_region
        self.admin_offset = admin_offset
        self.tokens = 0
        self.read_ptr = 0
        self.write_ptr = 0
        self.stats = FifoStats()
        #: Tasks suspended on this channel (runner-managed).
        self.waiting_readers: List = []
        self.waiting_writers: List = []

    # -- state ---------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Capacity in tokens."""
        return self.spec.capacity_tokens

    @property
    def free_tokens(self) -> int:
        """Tokens that can still be written."""
        return self.capacity - self.tokens

    def can_read(self, n: int) -> bool:
        """True when ``n`` tokens are available."""
        return self.tokens >= n

    def can_write(self, n: int) -> bool:
        """True when there is space for ``n`` tokens."""
        return self.free_tokens >= n

    # -- traffic -----------------------------------------------------------

    def _admin_batch(self) -> AccessBatch:
        """Reads+update of the FIFO control block (pointers, counters)."""
        base = self.admin_region.base + self.admin_offset
        # Read rd/wr pointers + count + limit, then write back two words.
        addrs = base + np.array([0, 8, 16, 24, 0, 16], dtype=np.int64)
        writes = np.array([False, False, False, False, True, True])
        return AccessBatch(addrs=addrs, writes=writes, instructions=24)

    def read_batch(self, n: int) -> AccessBatch:
        """Traffic of consuming ``n`` tokens (call only when readable)."""
        if not self.can_read(n):
            raise NetworkError(f"fifo {self.spec.name!r}: read of {n} underflows")
        payload = ring(
            self.buffer_region,
            head=self.read_ptr,
            nbytes=n * self.spec.token_bytes,
            elem=PAYLOAD_ELEM_BYTES,
            write=False,
        )
        return AccessBatch.concat([self._admin_batch(), payload])

    def write_batch(self, n: int) -> AccessBatch:
        """Traffic of producing ``n`` tokens (call only when writable)."""
        if not self.can_write(n):
            raise NetworkError(f"fifo {self.spec.name!r}: write of {n} overflows")
        payload = ring(
            self.buffer_region,
            head=self.write_ptr,
            nbytes=n * self.spec.token_bytes,
            elem=PAYLOAD_ELEM_BYTES,
            write=True,
        )
        return AccessBatch.concat([self._admin_batch(), payload])

    # -- commits -----------------------------------------------------------

    def commit_read(self, n: int) -> None:
        """Consume ``n`` tokens (state change only)."""
        if not self.can_read(n):
            raise NetworkError(f"fifo {self.spec.name!r}: read of {n} underflows")
        self.tokens -= n
        self.read_ptr = (
            self.read_ptr + n * self.spec.token_bytes
        ) % self.buffer_region.size
        self.stats.tokens_consumed += n

    def commit_write(self, n: int) -> None:
        """Produce ``n`` tokens (state change only)."""
        if not self.can_write(n):
            raise NetworkError(f"fifo {self.spec.name!r}: write of {n} overflows")
        self.tokens += n
        self.write_ptr = (
            self.write_ptr + n * self.spec.token_bytes
        ) % self.buffer_region.size
        self.stats.tokens_produced += n
        if self.tokens > self.stats.max_occupancy:
            self.stats.max_occupancy = self.tokens

    def __repr__(self) -> str:
        return (
            f"<FifoChannel {self.spec.name!r} {self.tokens}/{self.capacity} "
            f"tokens>"
        )
