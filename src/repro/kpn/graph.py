"""Static description of a process network.

A :class:`ProcessNetwork` is the application model of §3.1: a graph
``G = (V, E)`` whose nodes are tasks and whose edges are FIFO channels,
plus frame buffers and the sizes of the shared static-data regions
(application data/bss and run-time-system data/bss) that the paper's
Tables 1 and 2 also give partitions to.

The description is purely static -- it owns no simulator state.  The
platform builder (:mod:`repro.cake.platform`) instantiates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import NetworkError

__all__ = ["FifoSpec", "FrameBufferSpec", "ProcessNetwork", "TaskSpec"]


@dataclass
class TaskSpec:
    """A task: its program and its private memory footprint.

    ``program`` is a callable taking a
    :class:`~repro.kpn.process.TaskContext` and returning a generator of
    ops (see :mod:`repro.kpn.ops`).
    """

    name: str
    program: Callable
    code_bytes: int = 16 * 1024
    data_bytes: int = 4 * 1024
    bss_bytes: int = 4 * 1024
    stack_bytes: int = 8 * 1024
    heap_bytes: int = 16 * 1024
    params: dict = field(default_factory=dict)
    #: Pin the task to a CPU (used by the static-assignment scheduler);
    #: ``None`` lets the scheduler decide.
    affinity: Optional[int] = None

    def __post_init__(self) -> None:
        for attr in ("code_bytes", "data_bytes", "bss_bytes", "stack_bytes",
                     "heap_bytes"):
            if getattr(self, attr) <= 0:
                raise NetworkError(f"task {self.name!r}: {attr} must be positive")


@dataclass
class FifoSpec:
    """A bounded FIFO edge between two task ports."""

    name: str
    producer: str
    producer_port: str
    consumer: str
    consumer_port: str
    token_bytes: int
    capacity_tokens: int

    def __post_init__(self) -> None:
        if self.token_bytes <= 0:
            raise NetworkError(f"fifo {self.name!r}: token_bytes must be positive")
        if self.capacity_tokens <= 0:
            raise NetworkError(
                f"fifo {self.name!r}: capacity_tokens must be positive"
            )

    @property
    def buffer_bytes(self) -> int:
        """Size of the ring buffer backing the FIFO."""
        return self.token_bytes * self.capacity_tokens


@dataclass
class FrameBufferSpec:
    """A frame buffer: produced completely, then consumed (§4.1).

    ``window_bytes`` declares the buffer's *live access window*: the
    amount of the buffer that is re-referenced close together in time.
    Sequentially written output frames have a window of one strip;
    motion-compensated reference frames have a window of a few dozen
    rows around the current macroblock row.  The buffer-sizing policy
    (:mod:`repro.core.allocation`) gives each frame buffer a partition
    covering its window, which is what makes frame accesses hit without
    letting the frame wash anyone else -- the paper's frame-buffer rule
    made concrete.
    """

    name: str
    size_bytes: int
    window_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise NetworkError(f"frame {self.name!r}: size_bytes must be positive")
        if self.window_bytes <= 0:
            raise NetworkError(
                f"frame {self.name!r}: window_bytes must be positive"
            )
        if self.window_bytes > self.size_bytes:
            self.window_bytes = self.size_bytes


class ProcessNetwork:
    """The application: tasks, FIFOs, frame buffers, shared regions."""

    def __init__(
        self,
        name: str,
        appl_data_bytes: int = 16 * 1024,
        appl_bss_bytes: int = 16 * 1024,
        rt_data_bytes: int = 8 * 1024,
        rt_bss_bytes: int = 8 * 1024,
    ):
        self.name = name
        self.appl_data_bytes = appl_data_bytes
        self.appl_bss_bytes = appl_bss_bytes
        self.rt_data_bytes = rt_data_bytes
        self.rt_bss_bytes = rt_bss_bytes
        self.tasks: Dict[str, TaskSpec] = {}
        self.fifos: Dict[str, FifoSpec] = {}
        self.frames: Dict[str, FrameBufferSpec] = {}

    # -- construction --------------------------------------------------------

    def add_task(self, spec: TaskSpec) -> TaskSpec:
        """Register a task (names must be unique)."""
        if spec.name in self.tasks:
            raise NetworkError(f"duplicate task {spec.name!r}")
        self.tasks[spec.name] = spec
        return spec

    def add_fifo(self, spec: FifoSpec) -> FifoSpec:
        """Register a FIFO edge (names and port bindings must be unique)."""
        if spec.name in self.fifos:
            raise NetworkError(f"duplicate fifo {spec.name!r}")
        self.fifos[spec.name] = spec
        return spec

    def add_frame_buffer(self, spec: FrameBufferSpec) -> FrameBufferSpec:
        """Register a frame buffer."""
        if spec.name in self.frames:
            raise NetworkError(f"duplicate frame buffer {spec.name!r}")
        self.frames[spec.name] = spec
        return spec

    # -- queries ----------------------------------------------------------

    def ports_of(self, task_name: str) -> Dict[str, FifoSpec]:
        """Map of port name -> FIFO spec for one task."""
        ports: Dict[str, FifoSpec] = {}
        for fifo in self.fifos.values():
            if fifo.producer == task_name:
                ports[fifo.producer_port] = fifo
            if fifo.consumer == task_name:
                ports[fifo.consumer_port] = fifo
        return ports

    def task_graph(self) -> nx.DiGraph:
        """The §3.1 application graph: nodes = tasks, edges = FIFOs."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self.tasks)
        for fifo in self.fifos.values():
            graph.add_edge(fifo.producer, fifo.consumer, fifo=fifo.name)
        return graph

    def validate(self) -> None:
        """Check referential integrity of the network description."""
        seen_ports: set = set()
        for fifo in self.fifos.values():
            for endpoint, port in (
                (fifo.producer, fifo.producer_port),
                (fifo.consumer, fifo.consumer_port),
            ):
                if endpoint not in self.tasks:
                    raise NetworkError(
                        f"fifo {fifo.name!r} references unknown task {endpoint!r}"
                    )
                key = (endpoint, port)
                if key in seen_ports:
                    raise NetworkError(
                        f"port {port!r} of task {endpoint!r} bound twice"
                    )
                seen_ports.add(key)
            if fifo.producer == fifo.consumer:
                raise NetworkError(f"fifo {fifo.name!r} is a self-loop")

    def communication_volume(self) -> List[Tuple[str, int]]:
        """Per-FIFO buffer sizes, largest first (for reports)."""
        return sorted(
            ((f.name, f.buffer_bytes) for f in self.fifos.values()),
            key=lambda item: -item[1],
        )

    def __repr__(self) -> str:
        return (
            f"<ProcessNetwork {self.name!r}: {len(self.tasks)} tasks, "
            f"{len(self.fifos)} fifos, {len(self.frames)} frames>"
        )
