"""Operations a task program yields to the CPU runner.

A task program is a generator.  Each ``yield`` hands one operation to
the processor model, which prices it in cycles (and may suspend the task
when a FIFO operation cannot proceed -- the KPN blocking semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import NetworkError
from repro.mem.trace import AccessBatch

__all__ = ["Compute", "Delay", "Op", "ReadToken", "WriteToken"]


@dataclass(frozen=True)
class Compute:
    """Execute a batch of memory accesses (plus its instructions)."""

    batch: AccessBatch
    label: str = ""


@dataclass(frozen=True)
class ReadToken:
    """Consume ``tokens`` tokens from the FIFO bound to ``port``.

    Blocks (suspends the task) while fewer tokens are available --
    read-from-empty synchronisation.
    """

    port: str
    tokens: int = 1

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise NetworkError(f"ReadToken needs tokens >= 1, got {self.tokens}")


@dataclass(frozen=True)
class WriteToken:
    """Produce ``tokens`` tokens into the FIFO bound to ``port``.

    Blocks while the FIFO lacks space -- write-to-full synchronisation
    (the practical, bounded-FIFO variant of KPN).
    """

    port: str
    tokens: int = 1

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise NetworkError(f"WriteToken needs tokens >= 1, got {self.tokens}")


@dataclass(frozen=True)
class Delay:
    """Pure computation delay with no modelled memory traffic."""

    cycles: int = 0
    label: str = field(default="")

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise NetworkError(f"Delay needs cycles >= 0, got {self.cycles}")


Op = Union[Compute, ReadToken, WriteToken, Delay]
