"""TaskContext: the facade a task program sees.

A task program is a plain generator function::

    def idct_program(ctx):
        for _ in range(ctx.params["n_blocks"]):
            yield ctx.read("coef_in")
            yield ctx.compute(
                ctx.block(ctx.heap, row_stride=64, x0=0, y0=0,
                          width=8, height=8, elem=4, passes=2),
                ctx.fetch(2000),
            )
            yield ctx.write("pix_out")

The context carries the task's memory regions, its bound ports, a
deterministic RNG stream and thin wrappers around the pattern kit that
keep the programs readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import NetworkError
from repro.kpn.fifo import FifoChannel
from repro.kpn.ops import Compute, Delay, ReadToken, WriteToken
from repro.mem.address import Region
from repro.mem.trace import AccessBatch
from repro.patterns import block2d, gather_blocks, loop_code, stencil, stream, table_lookup

__all__ = ["TaskContext"]


class TaskContext:
    """Everything a task program may touch."""

    def __init__(
        self,
        name: str,
        params: dict,
        rng: np.random.Generator,
        regions: Dict[str, Region],
        shared_regions: Dict[str, Region],
        frame_regions: Dict[str, Region],
    ):
        self.name = name
        self.params = dict(params)
        self.rng = rng
        self._regions = regions
        self._shared = shared_regions
        self._frames = frame_regions
        self._ports: Dict[str, FifoChannel] = {}

    # -- regions -----------------------------------------------------------

    @property
    def code(self) -> Region:
        """The task's code region."""
        return self._regions["code"]

    @property
    def data(self) -> Region:
        """The task's initialised static data."""
        return self._regions["data"]

    @property
    def bss(self) -> Region:
        """The task's uninitialised static data."""
        return self._regions["bss"]

    @property
    def stack(self) -> Region:
        """The task's stack."""
        return self._regions["stack"]

    @property
    def heap(self) -> Region:
        """The task's private heap."""
        return self._regions["heap"]

    def shared(self, name: str) -> Region:
        """A shared static region: ``appl.data``/``appl.bss``/``rt.data``/``rt.bss``."""
        try:
            return self._shared[name]
        except KeyError:
            raise NetworkError(f"unknown shared region {name!r}") from None

    def frame(self, name: str) -> Region:
        """A frame buffer region by its spec name.

        Resolution is namespace-aware: a task an online union network
        calls ``group.x`` finds the frame its program names ``f`` under
        ``group.f`` -- programs stay oblivious to whether they joined a
        running platform or started with it.
        """
        candidates = [name]
        parts = self.name.split(".")
        for i in range(len(parts) - 1, 0, -1):
            candidates.append(".".join(parts[:i]) + "." + name)
        for candidate in candidates:
            try:
                return self._frames[candidate]
            except KeyError:
                continue
        raise NetworkError(f"unknown frame buffer {name!r}")

    # -- ports ---------------------------------------------------------------

    def bind_port(self, port: str, channel: FifoChannel) -> None:
        """Attach a FIFO channel to a port name (platform builder)."""
        if port in self._ports:
            raise NetworkError(f"port {port!r} of task {self.name!r} bound twice")
        self._ports[port] = channel

    def port(self, name: str) -> FifoChannel:
        """The channel bound to ``name``."""
        try:
            return self._ports[name]
        except KeyError:
            raise NetworkError(
                f"task {self.name!r} has no port {name!r}"
            ) from None

    @property
    def ports(self) -> Dict[str, FifoChannel]:
        """All bound ports."""
        return dict(self._ports)

    # -- op shorthands -------------------------------------------------------

    def compute(self, *batches: AccessBatch, label: str = "") -> Compute:
        """A Compute op from one or more access batches."""
        if len(batches) == 1:
            return Compute(batch=batches[0], label=label)
        return Compute(batch=AccessBatch.concat(batches), label=label)

    def read(self, port: str, tokens: int = 1) -> ReadToken:
        """Blocking read of ``tokens`` tokens."""
        return ReadToken(port=port, tokens=tokens)

    def write(self, port: str, tokens: int = 1) -> WriteToken:
        """Blocking write of ``tokens`` tokens."""
        return WriteToken(port=port, tokens=tokens)

    def delay(self, cycles: int, label: str = "") -> Delay:
        """Pure delay without memory traffic."""
        return Delay(cycles=cycles, label=label)

    # -- pattern shorthands -----------------------------------------------

    def fetch(self, n_instructions: int, loop_bytes: Optional[int] = None,
              loop_offset: int = 0) -> AccessBatch:
        """Instruction fetch of a loop body in the code region."""
        if loop_bytes is None:
            loop_bytes = min(self.code.size, 2048)
        return loop_code(self.code, loop_offset, loop_bytes, n_instructions)

    def stream(self, region: Region, offset: int = 0, nbytes: Optional[int] = None,
               elem: int = 4, stride: Optional[int] = None,
               write: bool = False) -> AccessBatch:
        """Sequential walk (see :func:`repro.patterns.streams.stream`)."""
        return stream(region, offset=offset, nbytes=nbytes, elem=elem,
                      stride=stride, write=write)

    def block(self, region: Region, row_stride: int, x0: int, y0: int,
              width: int, height: int, elem: int = 1, write: bool = False,
              passes: int = 1) -> AccessBatch:
        """2-D tile walk (see :func:`repro.patterns.blocks.block2d`)."""
        return block2d(region, row_stride, x0, y0, width, height, elem=elem,
                       write=write, passes=passes)

    def gather(self, region: Region, row_stride: int, positions: Iterable,
               width: int, height: int, elem: int = 1) -> AccessBatch:
        """Gather tiles (see :func:`repro.patterns.blocks.gather_blocks`)."""
        return gather_blocks(region, row_stride, positions, width, height,
                             elem=elem)

    def stencil(self, src: Region, dst: Region, row_stride: int, width: int,
                rows: int, y0: int = 0, taps_x: int = 3, taps_y: int = 3,
                elem: int = 1) -> AccessBatch:
        """Convolution rows (see :func:`repro.patterns.stencil.stencil`)."""
        return stencil(src, dst, row_stride, width, rows, y0=y0, taps_x=taps_x,
                       taps_y=taps_y, elem=elem)

    def table(self, region: Region, n: int, entry_bytes: int = 8,
              table_bytes: Optional[int] = None, offset: int = 0,
              skew: float = 1.2, uniform: bool = False) -> AccessBatch:
        """Data-dependent table lookups using the task's RNG stream."""
        return table_lookup(region, self.rng, n, entry_bytes=entry_bytes,
                            table_bytes=table_bytes, offset=offset, skew=skew,
                            uniform=uniform)

    def __repr__(self) -> str:
        return f"<TaskContext {self.name!r} ports={sorted(self._ports)}>"
