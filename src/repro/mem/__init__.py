"""Memory-system substrate.

This package models everything between the CPU and DRAM:

- :mod:`repro.mem.address` -- linear address space, regions, memory maps.
- :mod:`repro.mem.intervals` -- the OS-loaded table of shared-memory
  intervals used to resolve buffer ids (the paper's third
  implementation alternative for identifying communication buffers).
- :mod:`repro.mem.trace` -- memory-access batches and run-length
  coalescing of the address stream.
- :mod:`repro.mem.cache` -- set-associative caches (LRU / FIFO / random
  replacement) with per-owner statistics and eviction attribution.
- :mod:`repro.mem.partition` -- the paper's set-index translation
  mechanism, plus a way-partitioning (column caching) baseline.
- :mod:`repro.mem.memory` -- DRAM latency/traffic model.
- :mod:`repro.mem.bus` -- deterministic shared-bus contention model.
- :mod:`repro.mem.hierarchy` -- the L1 + shared-L2 + DRAM walker that
  prices a batch of accesses in cycles.
"""

from repro.mem.address import AddressSpace, MemoryMap, Region, RegionKind
from repro.mem.cache import CacheGeometry, CacheStats, SetAssociativeCache
from repro.mem.hierarchy import BatchResult, MemorySystem, SegmentEntry
from repro.mem.intervals import IntervalTable
from repro.mem.partition import (
    OWNER_SHARED,
    OwnerRegistry,
    OwnerResolver,
    PartitionMode,
    SetPartition,
    SetPartitionMap,
    WayPartitionMap,
)
from repro.mem.trace import AccessBatch

__all__ = [
    "AccessBatch",
    "AddressSpace",
    "BatchResult",
    "CacheGeometry",
    "CacheStats",
    "IntervalTable",
    "MemoryMap",
    "MemorySystem",
    "OWNER_SHARED",
    "OwnerRegistry",
    "OwnerResolver",
    "PartitionMode",
    "SegmentEntry",
    "Region",
    "RegionKind",
    "SetAssociativeCache",
    "SetPartition",
    "SetPartitionMap",
    "WayPartitionMap",
]
