/* Fast hierarchy walker: the L1/L2 walk of repro.mem.hierarchy in C.
 *
 * Compiled on demand by repro.mem.cwalker with the system C compiler
 * and loaded through ctypes; when no compiler is available the Python
 * walker in hierarchy.py runs instead.  Two entry tiers live here,
 * sharing ONE replay body (`walk_entry_runs`):
 *
 * - `walk_batch`: the stateless per-batch kernel of the fast engine.
 *   Cache state arrives flattened per call and is marshalled back
 *   afterwards -- economical only above a batch-size threshold.  It is
 *   a thin wrapper that builds a stack-local walker_state over its
 *   arguments and runs the shared body once.
 * - `walker_state_new` / `walk_segment`: the schedule-compiled tier.
 *   A persistent state handle keeps the L1s of every CPU, the shared
 *   L2 (set-associative LRU/FIFO *or* the way-managed column cache),
 *   the DRAM bank timers and the shared-bus demand model resident in C
 *   between calls, so batches of any size -- and whole schedule
 *   segments of consecutive deterministic ops -- run without
 *   re-marshalling.
 *
 * The replay body executes, run by run, exactly the state sequence of
 * the reference engine:
 *
 *   L1 probe -> (miss) L1 fill + eviction -> dirty-victim writeback
 *   probe into the L2 -> L2 probe (demand or store fill) -> L2 fill +
 *   eviction -> DRAM bank timing.
 *
 * Cache state lives in flat arrays (one row of `ways` slots per set,
 * slot 0 = MRU, parallel owner/dirty arrays, per-set lengths); the
 * caller rebuilds the Python-side dict/list state from the mutated
 * arrays when it needs that view.  Statistics are not computed here:
 * the kernel emits one flag byte and victim-owner slots per run, which
 * the caller reduces with numpy.  Cold-miss classification needs no
 * support at all -- a line's first-ever access always misses, so the
 * caller can derive cold runs from batch-first occurrences and its
 * seen-sets.
 *
 * Flag bits per run (matching repro.mem.cwalker.FLAG_*):
 *   1  L1 miss (implies one L2 probe: demand or store fill)
 *   2  L2 demand miss (DRAM line read)
 *   4  L1 eviction (victim owner in l1_victim_owner[i])
 *   8  L2 eviction (victim owner in l2_victim_owner[i])
 *  16  the L1 victim was dirty (writeback transfer towards the L2)
 *  32  the L2 victim was dirty (DRAM line write)
 *  64  the L2 probe missed (demand or store fill; drives the caller's
 *      seen-set bookkeeping -- only misses mark a line "seen")
 *
 * counters[0..2] = DRAM line writes, read bank conflicts, write bank
 * conflicts.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define FLAG_L1_MISS 1
#define FLAG_L2_DEMAND_MISS 2
#define FLAG_L1_EVICT 4
#define FLAG_L2_EVICT 8
#define FLAG_L1_WB 16
#define FLAG_L2_WB 32
#define FLAG_L2_PROBE_MISS 64

#define ENTRY_COMPUTE 0
#define ENTRY_DELAY 1
#define ENTRY_SWITCH 2

#define L2_MODE_LRU 0
#define L2_MODE_FIFO 1
#define L2_MODE_WAY 2

/* Mark the first occurrence of every distinct value (open-addressing
 * hash set; values must be non-negative -- line addresses are).  The
 * numpy equivalent, np.unique(..., return_index=True), needs a stable
 * argsort and costs ~20x more.  Returns 0, or 1 when allocation fails
 * (the caller then falls back to numpy). */
int first_occurrence(const int64_t *values, int64_t n, uint8_t *is_first) {
    uint64_t capacity = 16;
    while (capacity < (uint64_t)(2 * n)) capacity <<= 1;
    int64_t *table = (int64_t *)malloc(capacity * sizeof(int64_t));
    if (table == NULL) return 1;
    memset(table, 0xff, capacity * sizeof(int64_t)); /* all slots = -1 */
    uint64_t mask = capacity - 1;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        uint64_t slot = ((uint64_t)v * 0x9E3779B97F4A7C15ULL) >> 17 & mask;
        for (;;) {
            int64_t entry = table[slot];
            if (entry == v) {
                is_first[i] = 0;
                break;
            }
            if (entry == -1) {
                table[slot] = v;
                is_first[i] = 1;
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    free(table);
    return 0;
}

/* One bank-model update; mirrors MainMemory.access timing exactly. */
static inline int bank_touch(double *bank_free, int64_t bank, double now,
                             int64_t bank_busy) {
    double free_at = bank_free[bank];
    int conflict = now < free_at;
    bank_free[bank] = (free_at > now ? free_at : now) + (double)bank_busy;
    return conflict;
}

/* The whole memory system as flat state.  The persistent-handle tier
 * mallocs one and keeps it across calls (the pointers reference
 * numpy-owned arrays the Python side keeps alive); `walk_batch` builds
 * a throwaway one on the stack per call. */
typedef struct {
    int64_t n_cpus;
    int64_t l1_sets, l1_ways;
    int64_t *l1_lines, *l1_owners;
    uint8_t *l1_dirty;
    int32_t *l1_len;
    int64_t l2_sets, l2_ways, l2_mode, l2_mask;
    int64_t *l2_lines, *l2_owners;
    uint8_t *l2_dirty;
    int32_t *l2_len;
    int64_t *l2_stamp;      /* way mode: per-slot LRU stamps */
    int64_t *way_clock;     /* way mode: 1-slot global clock */
    /* DRAM */
    int64_t bank_mask, bank_busy, dram_access, bank_penalty;
    double *bank_free;
    /* shared bus (mirrors repro.mem.bus.SharedBus) */
    int64_t bus_transfer_cycles;
    double bus_lines_per_cycle, bus_decay, bus_max_surcharge;
    double *bus_demand, *bus_last;
    int64_t *bus_transfers_total;   /* 1-slot accumulators, C-resident so  */
    double *bus_surcharge_total;    /* float addition order matches the    */
                                    /* reference exactly                   */
    /* timing */
    double issue_cpi;
    int64_t l2_hit_cycles;
} walker_state;

/* Per-entry walk outcome (feeds the cycle formula and BatchResult). */
typedef struct {
    int64_t l1_misses;
    int64_t store_fills;
    int64_t dram_reads;
    int64_t dram_writes;
    int64_t read_conflicts;
    int64_t write_conflicts;
    int64_t transfers;
} entry_tally;

/* THE replay body: walk the runs [start, end) of one entry against the
 * state.  The L1 is selected by cpu id; l2_mode picks the
 * set-associative LRU/FIFO walk or the way-managed column cache (hit
 * on any way, allocate only into the owner's columns, LRU by global
 * stamp).  Both the stateless batch kernel and the segment walker call
 * this -- there is exactly one copy of the replay semantics in C. */
static void walk_entry_runs(
    walker_state *st, int64_t cpu, int64_t start, int64_t end,
    const int64_t *lines, const int64_t *l1_idx, const int64_t *l2_idx,
    const uint8_t *write_any, const uint8_t *store_fill,
    const int64_t *run_owners,
    int64_t use_table, int64_t n_table,
    const int64_t *table_base, const int64_t *table_size,
    const uint8_t *table_pow2,
    const int64_t *way_table, int64_t way_rows,
    double now,
    uint8_t *flags, int64_t *l1_victim_owner, int64_t *l2_victim_owner,
    entry_tally *tally)
{
    const int64_t l1_ways = st->l1_ways;
    const int64_t l2_ways = st->l2_ways;
    const int64_t l2_mask = st->l2_mask;
    const int64_t l2_mode = st->l2_mode;
    int64_t *l1_lines = st->l1_lines + cpu * st->l1_sets * l1_ways;
    int64_t *l1_owners = st->l1_owners + cpu * st->l1_sets * l1_ways;
    uint8_t *l1_dirty = st->l1_dirty + cpu * st->l1_sets * l1_ways;
    int32_t *l1_len = st->l1_len + cpu * st->l1_sets;

    for (int64_t i = start; i < end; i++) {
        int64_t line = lines[i];
        int64_t si = l1_idx[i];
        int64_t *row = l1_lines + si * l1_ways;
        int32_t len = l1_len[si];
        int64_t k;
        uint8_t f = 0;
        int write = write_any[i];

        /* ---- L1 probe (always LRU) ----------------------------------- */
        for (k = 0; k < len; k++) {
            if (row[k] == line) break;
        }
        if (k < len) {
            if (k > 0) {
                int64_t *orow = l1_owners + si * l1_ways;
                uint8_t *drow = l1_dirty + si * l1_ways;
                int64_t own = orow[k];
                uint8_t dir = drow[k];
                memmove(row + 1, row, k * sizeof(int64_t));
                memmove(orow + 1, orow, k * sizeof(int64_t));
                memmove(drow + 1, drow, k * sizeof(uint8_t));
                row[0] = line;
                orow[0] = own;
                drow[0] = dir;
            }
            if (write) l1_dirty[si * l1_ways] = 1;
            flags[i] = 0;
            continue;
        }

        /* ---- L1 miss + fill ------------------------------------------ */
        f = FLAG_L1_MISS;
        tally->l1_misses++;
        tally->transfers++;
        int64_t owner = run_owners[i];
        int64_t *orow = l1_owners + si * l1_ways;
        uint8_t *drow = l1_dirty + si * l1_ways;
        int64_t wb_line = -1, wb_owner = 0;
        if (len >= l1_ways) {
            int64_t victim = row[len - 1];
            f |= FLAG_L1_EVICT;
            l1_victim_owner[i] = orow[len - 1];
            if (drow[len - 1]) {
                f |= FLAG_L1_WB;
                wb_line = victim;
                wb_owner = orow[len - 1];
                tally->transfers++;
            }
            len--;
        }
        memmove(row + 1, row, len * sizeof(int64_t));
        memmove(orow + 1, orow, len * sizeof(int64_t));
        memmove(drow + 1, drow, len * sizeof(uint8_t));
        row[0] = line;
        orow[0] = owner;
        drow[0] = (uint8_t)write;
        l1_len[si] = len + 1;

        /* ---- dirty L1 victim written back through the L2 ------------- */
        if (wb_line >= 0) {
            int64_t wb_si;
            if (l2_mode == L2_MODE_WAY || !use_table) {
                wb_si = wb_line & l2_mask;
            } else {
                int64_t r = wb_owner < n_table ? wb_owner : n_table;
                int64_t size = table_size[r];
                wb_si = table_base[r] + (table_pow2[r]
                                             ? (wb_line & (size - 1))
                                             : (wb_line % size));
            }
            int64_t *wrow = st->l2_lines + wb_si * l2_ways;
            int64_t j, wlen;
            wlen = l2_mode == L2_MODE_WAY ? l2_ways : st->l2_len[wb_si];
            for (j = 0; j < wlen; j++) {
                if (wrow[j] == wb_line) break;
            }
            if (j < wlen) {
                /* probe_writeback: dirty in place, no recency change */
                st->l2_dirty[wb_si * l2_ways + j] = 1;
            } else {
                tally->write_conflicts += bank_touch(
                    st->bank_free, wb_line & st->bank_mask, now,
                    st->bank_busy);
                tally->dram_writes++;
            }
        }

        /* ---- L2 probe (demand access or store fill) ------------------ */
        int sfill = store_fill[i];
        if (sfill) tally->store_fills++;
        int64_t l2i = l2_idx[i];
        int64_t *row2 = st->l2_lines + l2i * l2_ways;
        int64_t *orow2 = st->l2_owners + l2i * l2_ways;
        uint8_t *drow2 = st->l2_dirty + l2i * l2_ways;

        if (l2_mode == L2_MODE_WAY) {
            /* WayManagedCache.access: clock tick, hit on any way,
             * allocate into the owner's columns only. */
            int64_t *srow2 = st->l2_stamp + l2i * l2_ways;
            int64_t clock = ++st->way_clock[0];
            for (k = 0; k < l2_ways; k++) {
                if (row2[k] == line) break;
            }
            if (k < l2_ways) {
                srow2[k] = clock;
                if (write) drow2[k] = 1;
                flags[i] = f;
                continue;
            }
            f |= FLAG_L2_PROBE_MISS;
            const int64_t *ways_row =
                way_table + (owner < way_rows ? owner : way_rows) * l2_ways;
            int64_t victim_way = -1;
            int64_t lru_way = -1, lru_stamp = 0;
            for (k = 0; k < l2_ways; k++) {
                int64_t w = ways_row[k];
                if (w < 0) break;
                if (row2[w] == -1) {
                    victim_way = w;
                    break;
                }
                if (lru_way < 0 || srow2[w] < lru_stamp) {
                    lru_way = w;
                    lru_stamp = srow2[w];
                }
            }
            if (victim_way < 0) victim_way = lru_way;
            if (row2[victim_way] != -1) {
                f |= FLAG_L2_EVICT;
                l2_victim_owner[i] = orow2[victim_way];
                if (drow2[victim_way]) {
                    f |= FLAG_L2_WB;
                    tally->write_conflicts += bank_touch(
                        st->bank_free, row2[victim_way] & st->bank_mask,
                        now, st->bank_busy);
                    tally->dram_writes++;
                }
            }
            row2[victim_way] = line;
            orow2[victim_way] = owner;
            srow2[victim_way] = clock;
            drow2[victim_way] = (uint8_t)write;
            if (!sfill) {
                f |= FLAG_L2_DEMAND_MISS;
                tally->dram_reads++;
                tally->read_conflicts += bank_touch(
                    st->bank_free, line & st->bank_mask, now, st->bank_busy);
            }
            flags[i] = f;
            continue;
        }

        /* set-associative L2 (LRU or FIFO) */
        int32_t len2 = st->l2_len[l2i];
        for (k = 0; k < len2; k++) {
            if (row2[k] == line) break;
        }
        if (k < len2) {
            if (l2_mode == L2_MODE_LRU && k > 0) {
                int64_t own = orow2[k];
                uint8_t dir = drow2[k];
                memmove(row2 + 1, row2, k * sizeof(int64_t));
                memmove(orow2 + 1, orow2, k * sizeof(int64_t));
                memmove(drow2 + 1, drow2, k * sizeof(uint8_t));
                row2[0] = line;
                orow2[0] = own;
                drow2[0] = dir;
                k = 0;
            }
            if (write) drow2[k] = 1;
            flags[i] = f;
            continue;
        }

        f |= FLAG_L2_PROBE_MISS;
        if (len2 >= l2_ways) {
            f |= FLAG_L2_EVICT;
            l2_victim_owner[i] = orow2[len2 - 1];
            if (drow2[len2 - 1]) {
                f |= FLAG_L2_WB;
                int64_t victim = row2[len2 - 1];
                tally->write_conflicts += bank_touch(
                    st->bank_free, victim & st->bank_mask, now,
                    st->bank_busy);
                tally->dram_writes++;
            }
            len2--;
        }
        memmove(row2 + 1, row2, len2 * sizeof(int64_t));
        memmove(orow2 + 1, orow2, len2 * sizeof(int64_t));
        memmove(drow2 + 1, drow2, len2 * sizeof(uint8_t));
        row2[0] = line;
        orow2[0] = owner;
        drow2[0] = (uint8_t)write;
        st->l2_len[l2i] = len2 + 1;

        if (!sfill) {
            f |= FLAG_L2_DEMAND_MISS;
            tally->dram_reads++;
            tally->read_conflicts += bank_touch(
                st->bank_free, line & st->bank_mask, now, st->bank_busy);
        }
        flags[i] = f;
    }
}

/* The stateless per-batch kernel of the fast engine: one shot of the
 * shared replay body over a stack-local state built from the caller's
 * flattened single-L1, set-associative-L2 arrays. */
void walk_batch(
    int64_t n_runs,
    const int64_t *lines, const int64_t *l1_idx, const int64_t *l2_idx,
    const uint8_t *write_any, const uint8_t *store_fill,
    /* L1 state (always LRU) */
    int64_t l1_ways,
    int64_t *l1_lines, int64_t *l1_owners, uint8_t *l1_dirty,
    int32_t *l1_len,
    /* L2 state */
    int64_t l2_ways, int64_t l2_is_lru,
    int64_t *l2_lines, int64_t *l2_owners, uint8_t *l2_dirty,
    int32_t *l2_len,
    const int64_t *run_owners,
    /* writeback index translation: owner -> set group.  With
     * use_table == 0 the conventional mask applies; otherwise owner o
     * uses row min(o, n_table) (row n_table is the default mapping). */
    int64_t use_table, int64_t n_table,
    const int64_t *table_base, const int64_t *table_size,
    const uint8_t *table_pow2,
    int64_t l2_mask,
    /* DRAM banks */
    double now, int64_t bank_mask, int64_t bank_busy, double *bank_free,
    /* outputs */
    uint8_t *flags, int64_t *l1_victim_owner, int64_t *l2_victim_owner,
    int64_t *counters)
{
    walker_state st;
    entry_tally tally = {0, 0, 0, 0, 0, 0, 0};
    memset(&st, 0, sizeof st);
    st.n_cpus = 1;
    st.l1_ways = l1_ways;       /* l1_sets stays 0: cpu 0 offset is 0 */
    st.l1_lines = l1_lines;
    st.l1_owners = l1_owners;
    st.l1_dirty = l1_dirty;
    st.l1_len = l1_len;
    st.l2_ways = l2_ways;
    st.l2_mode = l2_is_lru ? L2_MODE_LRU : L2_MODE_FIFO;
    st.l2_mask = l2_mask;
    st.l2_lines = l2_lines;
    st.l2_owners = l2_owners;
    st.l2_dirty = l2_dirty;
    st.l2_len = l2_len;
    st.bank_mask = bank_mask;
    st.bank_busy = bank_busy;
    st.bank_free = bank_free;
    walk_entry_runs(
        &st, 0, 0, n_runs,
        lines, l1_idx, l2_idx, write_any, store_fill, run_owners,
        use_table, n_table, table_base, table_size, table_pow2,
        NULL, 0, now,
        flags, l1_victim_owner, l2_victim_owner, &tally);
    counters[0] = tally.dram_writes;
    counters[1] = tally.read_conflicts;
    counters[2] = tally.write_conflicts;
}

/* ====================================================================
 * Schedule-compiled tier: persistent state handle + whole-segment walk
 * ====================================================================
 *
 * A walker_state aggregates pointers into numpy-owned arrays (the
 * Python side keeps them alive for the handle's lifetime) plus the
 * scalar model parameters.  Nothing is copied: the arrays ARE the
 * authoritative cache/bank/bus state between calls, which is what
 * removes the per-batch marshalling cost of `walk_batch`.
 *
 * `walk_segment` executes an ordered sequence of schedule entries --
 * compute batches, pure delays, context-switch traffic -- advancing a
 * local clock entry by entry exactly as the event-driven reference
 * would, and stops early at a foreign-event horizon or on quantum
 * expiry so the caller can hand control back to the simulation kernel
 * with bit-identical interleaving.  Statistics are again flag-based:
 * the caller reduces the per-run flag/victim outputs with numpy.
 */

void *walker_state_new(
    int64_t n_cpus,
    int64_t l1_sets, int64_t l1_ways,
    int64_t *l1_lines, int64_t *l1_owners, uint8_t *l1_dirty,
    int32_t *l1_len,
    int64_t l2_sets, int64_t l2_ways, int64_t l2_mode,
    int64_t *l2_lines, int64_t *l2_owners, uint8_t *l2_dirty,
    int32_t *l2_len,
    int64_t *l2_stamp, int64_t *way_clock,
    int64_t bank_mask, int64_t bank_busy, int64_t dram_access,
    int64_t bank_penalty, double *bank_free,
    int64_t bus_transfer_cycles, double bus_lines_per_cycle,
    double bus_decay, double bus_max_surcharge,
    double *bus_demand, double *bus_last,
    int64_t *bus_transfers_total, double *bus_surcharge_total,
    double issue_cpi, int64_t l2_hit_cycles)
{
    walker_state *st = (walker_state *)malloc(sizeof(walker_state));
    if (st == NULL) return NULL;
    st->n_cpus = n_cpus;
    st->l1_sets = l1_sets;
    st->l1_ways = l1_ways;
    st->l1_lines = l1_lines;
    st->l1_owners = l1_owners;
    st->l1_dirty = l1_dirty;
    st->l1_len = l1_len;
    st->l2_sets = l2_sets;
    st->l2_ways = l2_ways;
    st->l2_mode = l2_mode;
    st->l2_mask = l2_sets - 1;
    st->l2_lines = l2_lines;
    st->l2_owners = l2_owners;
    st->l2_dirty = l2_dirty;
    st->l2_len = l2_len;
    st->l2_stamp = l2_stamp;
    st->way_clock = way_clock;
    st->bank_mask = bank_mask;
    st->bank_busy = bank_busy;
    st->dram_access = dram_access;
    st->bank_penalty = bank_penalty;
    st->bank_free = bank_free;
    st->bus_transfer_cycles = bus_transfer_cycles;
    st->bus_lines_per_cycle = bus_lines_per_cycle;
    st->bus_decay = bus_decay;
    st->bus_max_surcharge = bus_max_surcharge;
    st->bus_demand = bus_demand;
    st->bus_last = bus_last;
    st->bus_transfers_total = bus_transfers_total;
    st->bus_surcharge_total = bus_surcharge_total;
    st->issue_cpi = issue_cpi;
    st->l2_hit_cycles = l2_hit_cycles;
    return st;
}

void walker_state_free(void *state) {
    free(state);
}

/* SharedBus.price_transfers, term for term (same exp(), same addition
 * order over CPUs, same truncation), accumulating the totals into the
 * C-resident slots so the running float sums match the reference. */
static int64_t bus_price(walker_state *st, int64_t cpu, int64_t n,
                         double now) {
    if (n <= 0) return 0;
    double other_rate = 0.0;
    for (int64_t c = 0; c < st->n_cpus; c++) {
        double elapsed, decayed;
        if (c == cpu) continue;
        elapsed = now - st->bus_last[c];
        if (elapsed < 0.0) elapsed = 0.0;
        decayed = st->bus_demand[c] * exp(-elapsed / st->bus_decay);
        other_rate += decayed / st->bus_decay;
    }
    double utilisation = other_rate / st->bus_lines_per_cycle;
    if (utilisation > 1.0) utilisation = 1.0;
    double surcharge = utilisation < st->bus_max_surcharge
                           ? utilisation : st->bus_max_surcharge;
    int64_t base = n * st->bus_transfer_cycles;
    double extra = (double)base * surcharge;
    {
        double elapsed = now - st->bus_last[cpu];
        if (elapsed < 0.0) elapsed = 0.0;
        st->bus_demand[cpu] =
            st->bus_demand[cpu] * exp(-elapsed / st->bus_decay) + (double)n;
        st->bus_last[cpu] = now;
    }
    st->bus_transfers_total[0] += n;
    st->bus_surcharge_total[0] += extra;
    return (int64_t)((double)base + extra);
}

/* Execute up to n_entries schedule entries; returns how many ran.
 *
 * Entry kinds: ENTRY_COMPUTE walks its runs and advances the clock by
 * the computed cycle cost; ENTRY_DELAY advances by entry_advance[e]
 * without touching memory; ENTRY_SWITCH walks its runs (context-switch
 * TCB traffic) but advances by the fixed entry_advance[e] and does not
 * count against the quantum -- exactly the CPU runner's dispatch path.
 *
 * Early exit, checked before starting entry e >= 1 (entry 0 always
 * runs -- the caller was just resumed and acts before anyone else):
 * - horizon: once any simulated time has elapsed, no entry may start
 *   at or after the earliest foreign event (`now >= horizon`); the
 *   pending entries are handed back so the event kernel interleaves
 *   them bit-identically with the other actors.
 * - quantum: with use_quantum set (the ready queue was non-empty when
 *   the segment was collected, and it cannot change before `horizon`),
 *   stop once the accumulated compute/delay cycles exhaust it --
 *   the runner's round-robin preemption point.
 */
int64_t walk_segment(
    void *state_ptr,
    int64_t n_entries,
    const int64_t *entry_kind, const int64_t *entry_cpu,
    const int64_t *entry_start, const int64_t *entry_end,
    const int64_t *entry_instr, const int64_t *entry_advance,
    const int64_t *lines, const int64_t *l1_idx, const int64_t *l2_idx,
    const uint8_t *write_any, const uint8_t *store_fill,
    const int64_t *run_owners,
    int64_t use_table, int64_t n_table,
    const int64_t *table_base, const int64_t *table_size,
    const uint8_t *table_pow2,
    const int64_t *way_table, int64_t way_rows,
    double now, double horizon,
    int64_t quantum, int64_t use_quantum,
    uint8_t *flags, int64_t *l1_victim_owner, int64_t *l2_victim_owner,
    int64_t *out_cycles, int64_t *out_l1_misses, int64_t *out_l2_misses,
    int64_t *out_dram_lines, int64_t *out_bus_cycles,
    int64_t *out_store_fills,
    int64_t *counters)
{
    walker_state *st = (walker_state *)state_ptr;
    int64_t dram_writes = 0, read_conflicts = 0, write_conflicts = 0;
    int64_t elapsed = 0;
    int64_t e;

    for (e = 0; e < n_entries; e++) {
        if (e > 0) {
            if (elapsed > 0 && now >= horizon) break;
            if (use_quantum && quantum <= 0) break;
        }
        int64_t kind = entry_kind[e];
        int64_t cycles, advance;
        if (kind == ENTRY_DELAY) {
            cycles = entry_advance[e];
            advance = cycles;
            out_cycles[e] = cycles;
            out_l1_misses[e] = 0;
            out_l2_misses[e] = 0;
            out_dram_lines[e] = 0;
            out_bus_cycles[e] = 0;
            out_store_fills[e] = 0;
        } else {
            entry_tally tally = {0, 0, 0, 0, 0, 0, 0};
            walk_entry_runs(
                st, entry_cpu[e], entry_start[e], entry_end[e],
                lines, l1_idx, l2_idx, write_any, store_fill, run_owners,
                use_table, n_table, table_base, table_size, table_pow2,
                way_table, way_rows, now,
                flags, l1_victim_owner, l2_victim_owner, &tally);
            int64_t stall =
                (tally.l1_misses - tally.store_fills) * st->l2_hit_cycles
                + tally.dram_reads * st->dram_access
                + tally.read_conflicts * st->bank_penalty;
            int64_t bus = bus_price(st, entry_cpu[e], tally.transfers, now);
            cycles = (int64_t)llrint(
                         (double)entry_instr[e] * st->issue_cpi)
                     + stall + bus;
            advance = kind == ENTRY_SWITCH ? entry_advance[e] : cycles;
            out_cycles[e] = cycles;
            out_l1_misses[e] = tally.l1_misses;
            out_l2_misses[e] = tally.dram_reads;
            out_dram_lines[e] = tally.dram_reads + tally.dram_writes;
            out_bus_cycles[e] = bus;
            out_store_fills[e] = tally.store_fills;
            dram_writes += tally.dram_writes;
            read_conflicts += tally.read_conflicts;
            write_conflicts += tally.write_conflicts;
        }
        now += (double)advance;
        elapsed += advance;
        if (kind != ENTRY_SWITCH) quantum -= cycles;
    }

    counters[0] = dram_writes;
    counters[1] = read_conflicts;
    counters[2] = write_conflicts;
    return e;
}
