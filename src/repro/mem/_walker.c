/* Fast hierarchy walker: the L1/L2 walk of repro.mem.hierarchy in C.
 *
 * Compiled on demand by repro.mem.cwalker with the system C compiler
 * and loaded through ctypes; when no compiler is available the Python
 * walker in hierarchy.py runs instead.  The routine replays, run by
 * run, exactly the state sequence of the reference engine:
 *
 *   L1 probe -> (miss) L1 fill + eviction -> dirty-victim writeback
 *   probe into the L2 -> L2 probe (demand or store fill) -> L2 fill +
 *   eviction -> DRAM bank timing.
 *
 * Cache state arrives as flat arrays (one row of `ways` slots per set,
 * slot 0 = MRU, parallel owner/dirty arrays, per-set lengths); the
 * caller rebuilds the Python-side dict/list state from the mutated
 * arrays afterwards.  Statistics are not computed here: the kernel
 * emits one flag byte and victim-owner slots per run, which the caller
 * reduces with numpy.  Cold-miss classification needs no support at
 * all -- a line's first-ever access always misses, so the caller can
 * derive cold runs from batch-first occurrences and its seen-sets.
 *
 * Flag bits per run (matching repro.mem.cwalker.FLAG_*):
 *   1  L1 miss (implies one L2 probe: demand or store fill)
 *   2  L2 demand miss (DRAM line read)
 *   4  L1 eviction (victim owner in l1_victim_owner[i])
 *   8  L2 eviction (victim owner in l2_victim_owner[i])
 *  16  the L1 victim was dirty (writeback transfer towards the L2)
 *  32  the L2 victim was dirty (DRAM line write)
 *  64  the L2 probe missed (demand or store fill; drives the caller's
 *      seen-set bookkeeping -- only misses mark a line "seen")
 *
 * counters[0..2] = DRAM line writes, read bank conflicts, write bank
 * conflicts.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define FLAG_L1_MISS 1
#define FLAG_L2_DEMAND_MISS 2
#define FLAG_L1_EVICT 4
#define FLAG_L2_EVICT 8
#define FLAG_L1_WB 16
#define FLAG_L2_WB 32
#define FLAG_L2_PROBE_MISS 64

/* Mark the first occurrence of every distinct value (open-addressing
 * hash set; values must be non-negative -- line addresses are).  The
 * numpy equivalent, np.unique(..., return_index=True), needs a stable
 * argsort and costs ~20x more.  Returns 0, or 1 when allocation fails
 * (the caller then falls back to numpy). */
int first_occurrence(const int64_t *values, int64_t n, uint8_t *is_first) {
    uint64_t capacity = 16;
    while (capacity < (uint64_t)(2 * n)) capacity <<= 1;
    int64_t *table = (int64_t *)malloc(capacity * sizeof(int64_t));
    if (table == NULL) return 1;
    memset(table, 0xff, capacity * sizeof(int64_t)); /* all slots = -1 */
    uint64_t mask = capacity - 1;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        uint64_t slot = ((uint64_t)v * 0x9E3779B97F4A7C15ULL) >> 17 & mask;
        for (;;) {
            int64_t entry = table[slot];
            if (entry == v) {
                is_first[i] = 0;
                break;
            }
            if (entry == -1) {
                table[slot] = v;
                is_first[i] = 1;
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    free(table);
    return 0;
}

/* One bank-model update; mirrors MainMemory.access timing exactly. */
static inline int bank_touch(double *bank_free, int64_t bank, double now,
                             int64_t bank_busy) {
    double free_at = bank_free[bank];
    int conflict = now < free_at;
    bank_free[bank] = (free_at > now ? free_at : now) + (double)bank_busy;
    return conflict;
}

void walk_batch(
    int64_t n_runs,
    const int64_t *lines, const int64_t *l1_idx, const int64_t *l2_idx,
    const uint8_t *write_any, const uint8_t *store_fill,
    /* L1 state (always LRU) */
    int64_t l1_ways,
    int64_t *l1_lines, int64_t *l1_owners, uint8_t *l1_dirty,
    int32_t *l1_len,
    /* L2 state */
    int64_t l2_ways, int64_t l2_is_lru,
    int64_t *l2_lines, int64_t *l2_owners, uint8_t *l2_dirty,
    int32_t *l2_len,
    const int64_t *run_owners,
    /* writeback index translation: owner -> set group.  With
     * use_table == 0 the conventional mask applies; otherwise owner o
     * uses row min(o, n_table) (row n_table is the default mapping). */
    int64_t use_table, int64_t n_table,
    const int64_t *table_base, const int64_t *table_size,
    const uint8_t *table_pow2,
    int64_t l2_mask,
    /* DRAM banks */
    double now, int64_t bank_mask, int64_t bank_busy, double *bank_free,
    /* outputs */
    uint8_t *flags, int64_t *l1_victim_owner, int64_t *l2_victim_owner,
    int64_t *counters)
{
    int64_t dram_writes = 0, read_conflicts = 0, write_conflicts = 0;

    for (int64_t i = 0; i < n_runs; i++) {
        int64_t line = lines[i];
        int64_t si = l1_idx[i];
        int64_t *row = l1_lines + si * l1_ways;
        int32_t len = l1_len[si];
        int64_t k;
        uint8_t f = 0;
        int write = write_any[i];

        /* ---- L1 probe ------------------------------------------------ */
        for (k = 0; k < len; k++) {
            if (row[k] == line) break;
        }
        if (k < len) {
            /* Hit: LRU rotation of the slot triple to position 0. */
            if (k > 0) {
                int64_t *orow = l1_owners + si * l1_ways;
                uint8_t *drow = l1_dirty + si * l1_ways;
                int64_t own = orow[k];
                uint8_t dir = drow[k];
                memmove(row + 1, row, k * sizeof(int64_t));
                memmove(orow + 1, orow, k * sizeof(int64_t));
                memmove(drow + 1, drow, k * sizeof(uint8_t));
                row[0] = line;
                orow[0] = own;
                drow[0] = dir;
            }
            if (write) l1_dirty[si * l1_ways] = 1;
            flags[i] = 0;
            continue;
        }

        /* ---- L1 miss + fill ------------------------------------------ */
        f = FLAG_L1_MISS;
        int64_t owner = run_owners[i];
        int64_t *orow = l1_owners + si * l1_ways;
        uint8_t *drow = l1_dirty + si * l1_ways;
        int64_t wb_line = -1, wb_owner = 0;
        if (len >= l1_ways) {
            int64_t victim = row[len - 1];
            f |= FLAG_L1_EVICT;
            l1_victim_owner[i] = orow[len - 1];
            if (drow[len - 1]) {
                f |= FLAG_L1_WB;
                wb_line = victim;
                wb_owner = orow[len - 1];
            }
            len--;
        }
        memmove(row + 1, row, len * sizeof(int64_t));
        memmove(orow + 1, orow, len * sizeof(int64_t));
        memmove(drow + 1, drow, len * sizeof(uint8_t));
        row[0] = line;
        orow[0] = owner;
        drow[0] = (uint8_t)write;
        l1_len[si] = len + 1;

        /* ---- dirty L1 victim written back through the L2 ------------- */
        if (wb_line >= 0) {
            int64_t wb_si;
            if (use_table) {
                int64_t r = wb_owner < n_table ? wb_owner : n_table;
                int64_t size = table_size[r];
                wb_si = table_base[r] + (table_pow2[r]
                                             ? (wb_line & (size - 1))
                                             : (wb_line % size));
            } else {
                wb_si = wb_line & l2_mask;
            }
            int64_t *wrow = l2_lines + wb_si * l2_ways;
            int32_t wlen = l2_len[wb_si];
            int64_t j;
            for (j = 0; j < wlen; j++) {
                if (wrow[j] == wb_line) break;
            }
            if (j < wlen) {
                /* probe_writeback: update in place, no recency change */
                l2_dirty[wb_si * l2_ways + j] = 1;
            } else {
                write_conflicts +=
                    bank_touch(bank_free, wb_line & bank_mask, now, bank_busy);
                dram_writes++;
            }
        }

        /* ---- L2 probe (demand access or store fill) ------------------ */
        int sfill = store_fill[i];
        int64_t l2i = l2_idx[i];
        int64_t *row2 = l2_lines + l2i * l2_ways;
        int64_t *orow2 = l2_owners + l2i * l2_ways;
        uint8_t *drow2 = l2_dirty + l2i * l2_ways;
        int32_t len2 = l2_len[l2i];
        for (k = 0; k < len2; k++) {
            if (row2[k] == line) break;
        }
        if (k < len2) {
            /* L2 hit (FIFO keeps its order; LRU rotates to MRU). */
            if (l2_is_lru && k > 0) {
                int64_t own = orow2[k];
                uint8_t dir = drow2[k];
                memmove(row2 + 1, row2, k * sizeof(int64_t));
                memmove(orow2 + 1, orow2, k * sizeof(int64_t));
                memmove(drow2 + 1, drow2, k * sizeof(uint8_t));
                row2[0] = line;
                orow2[0] = own;
                drow2[0] = dir;
                k = 0;
            }
            if (write) drow2[k] = 1;
            flags[i] = f;
            continue;
        }

        /* L2 miss: store fills allocate but fetch nothing. */
        f |= FLAG_L2_PROBE_MISS;
        if (len2 >= l2_ways) {
            f |= FLAG_L2_EVICT;
            l2_victim_owner[i] = orow2[len2 - 1];
            if (drow2[len2 - 1]) {
                f |= FLAG_L2_WB;
                int64_t victim = row2[len2 - 1];
                write_conflicts +=
                    bank_touch(bank_free, victim & bank_mask, now, bank_busy);
                dram_writes++;
            }
            len2--;
        }
        memmove(row2 + 1, row2, len2 * sizeof(int64_t));
        memmove(orow2 + 1, orow2, len2 * sizeof(int64_t));
        memmove(drow2 + 1, drow2, len2 * sizeof(uint8_t));
        row2[0] = line;
        orow2[0] = owner;
        drow2[0] = (uint8_t)write;
        l2_len[l2i] = len2 + 1;

        if (!sfill) {
            f |= FLAG_L2_DEMAND_MISS;
            read_conflicts +=
                bank_touch(bank_free, line & bank_mask, now, bank_busy);
        }
        flags[i] = f;
    }

    counters[0] = dram_writes;
    counters[1] = read_conflicts;
    counters[2] = write_conflicts;
}
