"""Linear address space, regions and memory maps.

The CAKE platform has a single linear address space (paper §4.2).  Every
memory-active entity -- a task's code/data/bss/stack/heap, each FIFO
buffer, each frame buffer, the application-wide and run-time-system
data/bss -- occupies a :class:`Region` carved out of one
:class:`AddressSpace` by a deterministic bump allocator.

Determinism of the layout matters: the paper (§4.1) points out that with
a shared heap the addresses of task data depend on allocation order,
which breaks compositionality of a *shared* cache.  Our
:class:`AddressSpace` therefore records the allocation order, and the
malloc-order ablation permutes it explicitly.
"""

from __future__ import annotations

import enum
import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import AddressError, MemoryModelError

__all__ = ["AddressSpace", "MemoryMap", "Region", "RegionKind"]


class RegionKind(enum.Enum):
    """Classification of a memory region by its role."""

    CODE = "code"
    DATA = "data"  # statically initialised variables
    BSS = "bss"  # statically uninitialised variables
    STACK = "stack"
    HEAP = "heap"
    FIFO = "fifo"
    FRAME = "frame"  # frame buffer

    def is_shared_buffer(self) -> bool:
        """True for kinds that the OS registers in the interval table."""
        return self in (RegionKind.FIFO, RegionKind.FRAME)


@dataclass(frozen=True)
class Region:
    """A contiguous, immutable address range ``[base, base + size)``."""

    name: str
    base: int
    size: int
    kind: RegionKind
    owner_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemoryModelError(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise MemoryModelError(f"region {self.name!r} has base {self.base}")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside the region."""
        return self.base <= addr < self.end

    def offset(self, addr: int) -> int:
        """Byte offset of ``addr`` from the region base."""
        if not self.contains(addr):
            raise AddressError(f"{addr:#x} outside region {self.name!r}")
        return addr - self.base

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, base={self.base:#x}, size={self.size}, "
            f"kind={self.kind.value})"
        )


class AddressSpace:
    """A linear address space with a deterministic bump allocator.

    Regions are allocated upward from ``base``; each allocation is
    aligned (default: 64-byte cache lines, so distinct regions never
    share a line, mirroring the paper's assumption that buffers can be
    cached independently).

    Two placement modes:

    - ``placement="bump"`` -- dense sequential packing.  Unrealistically
      uniform over cache indices: consecutive regions never collide in
      the same sets, which hides exactly the inter-task conflicts the
      paper is about.
    - ``placement="scatter"`` (the platform default) -- each region gets
      an independent, name-derived page-aligned base inside ``arena``
      bytes, with deterministic linear probing to avoid overlap.  This
      models what real allocators/linkers produce: regions landing at
      arbitrary page offsets whose cache-index footprints overlap
      unevenly, so some sets are oversubscribed -- the "tasks may flush
      each other's data out of the cache in an unpredictable manner"
      phenomenon, and the address-placement sensitivity §4.1 discusses.
      Placement depends only on ``(seed, region name)``, keeping
      layouts bit-reproducible.
    """

    PAGE = 4096
    PLACEMENTS = ("bump", "scatter")

    def __init__(
        self,
        base: int = 0x1000_0000,
        alignment: int = 64,
        placement: str = "bump",
        arena: int = 64 * 1024 * 1024,
        seed: int = 0,
    ):
        if alignment <= 0 or alignment & (alignment - 1):
            raise MemoryModelError(f"alignment must be a power of two: {alignment}")
        if placement not in self.PLACEMENTS:
            raise MemoryModelError(
                f"placement must be one of {self.PLACEMENTS}, got {placement!r}"
            )
        if arena <= 0:
            raise MemoryModelError("arena must be positive")
        self.base = base
        self.alignment = alignment
        self.placement = placement
        self.arena = arena
        self.seed = seed
        self._cursor = base
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}

    @property
    def regions(self) -> tuple:
        """Regions in allocation order."""
        return tuple(self._regions)

    @property
    def used_bytes(self) -> int:
        """Total bytes consumed (including alignment padding)."""
        return self._cursor - self.base

    def allocate(
        self,
        name: str,
        size: int,
        kind: RegionKind,
        owner_name: Optional[str] = None,
        alignment: Optional[int] = None,
    ) -> Region:
        """Carve a new region off the top of the space."""
        if name in self._by_name:
            raise MemoryModelError(f"duplicate region name {name!r}")
        align = alignment or self.alignment
        if align <= 0 or align & (align - 1):
            raise MemoryModelError(f"alignment must be a power of two: {align}")
        if self.placement == "scatter":
            base = self._scatter_base(name, size)
        else:
            base = (self._cursor + align - 1) & ~(align - 1)
            self._cursor = base + size
        region = Region(name=name, base=base, size=size, kind=kind,
                        owner_name=owner_name)
        self._regions.append(region)
        self._by_name[name] = region
        return region

    def _scatter_base(self, name: str, size: int) -> int:
        """Deterministic page-aligned placement with linear probing."""
        n_pages = max(1, self.arena // self.PAGE)
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        page = int.from_bytes(digest[:8], "little") % n_pages
        size_pages = -(-size // self.PAGE)
        occupied = sorted((r.base, r.end) for r in self._regions)
        for _attempt in range(n_pages):
            candidate = self.base + (page % n_pages) * self.PAGE
            cand_end = candidate + size_pages * self.PAGE
            if cand_end <= self.base + self.arena and not any(
                candidate < end and start < cand_end for start, end in occupied
            ):
                return candidate
            page += 1
        raise MemoryModelError(
            f"arena of {self.arena} bytes cannot fit region {name!r}"
        )

    def region(self, name: str) -> Region:
        """Look a region up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise AddressError(f"unknown region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)


@dataclass
class MemoryMap:
    """A finished memory layout with fast address-to-region lookup."""

    space: AddressSpace
    _bases: List[int] = field(default_factory=list, repr=False)
    _sorted: List[Region] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._sorted = sorted(self.space.regions, key=lambda r: r.base)
        self._bases = [r.base for r in self._sorted]

    def find(self, addr: int) -> Region:
        """Region containing ``addr`` (raises :class:`AddressError`)."""
        idx = bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._sorted[idx]
            if region.contains(addr):
                return region
        raise AddressError(f"address {addr:#x} maps to no region")

    def find_or_none(self, addr: int) -> Optional[Region]:
        """Like :meth:`find` but returns ``None`` instead of raising."""
        idx = bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._sorted[idx]
            if region.contains(addr):
                return region
        return None

    def regions_of_kind(self, kind: RegionKind) -> List[Region]:
        """All regions of the given kind, in address order."""
        return [r for r in self._sorted if r.kind is kind]

    def footprint(self) -> int:
        """Total bytes covered by all regions (without padding)."""
        return sum(r.size for r in self._sorted)
