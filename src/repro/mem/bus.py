"""Deterministic shared-bus contention model.

The CAKE tile connects CPUs to the L2 and memory through a "fast,
high-bandwidth snooping interconnection network"; the paper's analytic
model *neglects* bus contention and cites it as one of the residual
effects behind the small expected-vs-simulated differences of Figure 3.

The model here is intentionally mild and fully deterministic: each CPU's
recent line-transfer demand decays exponentially with simulated time;
when a CPU executes a batch, every one of its transfers pays a surcharge
proportional to the *other* CPUs' current demand relative to the bus
capacity.  Two properties matter:

- with a single active CPU the surcharge is zero (no self-contention),
  so solo profiling is unaffected; and
- the surcharge is a few percent of total stall cycles for the paper's
  workloads, the right order of magnitude for a "neglected effect".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import MemoryModelError

__all__ = ["BusConfig", "SharedBus"]


@dataclass(frozen=True)
class BusConfig:
    """Parameters of the contention approximation."""

    #: Cycles to move one cache line across the bus.
    transfer_cycles: int = 4
    #: Lines per cycle the bus can sustain (aggregate capacity).
    lines_per_cycle: float = 0.25
    #: Time constant (cycles) of the demand decay.
    decay_cycles: float = 2000.0
    #: Cap on the per-transfer surcharge factor.
    max_surcharge: float = 2.0

    def __post_init__(self) -> None:
        if self.transfer_cycles < 0:
            raise MemoryModelError("transfer_cycles must be >= 0")
        if self.lines_per_cycle <= 0:
            raise MemoryModelError("lines_per_cycle must be positive")
        if self.decay_cycles <= 0:
            raise MemoryModelError("decay_cycles must be positive")


class SharedBus:
    """Tracks per-CPU demand and prices batches of line transfers."""

    def __init__(self, config: BusConfig = BusConfig(), n_cpus: int = 4):
        self.config = config
        self.n_cpus = n_cpus
        self._demand: Dict[int, float] = {cpu: 0.0 for cpu in range(n_cpus)}
        self._last_update: Dict[int, float] = {cpu: 0.0 for cpu in range(n_cpus)}
        self.total_transfers = 0
        self.total_surcharge_cycles = 0.0

    def _decayed_demand(self, cpu: int, now: float) -> float:
        elapsed = max(0.0, now - self._last_update[cpu])
        return self._demand[cpu] * math.exp(-elapsed / self.config.decay_cycles)

    def price_transfers(self, cpu: int, n_transfers: int, now: float) -> int:
        """Cycles of bus delay for ``n_transfers`` lines issued by ``cpu``.

        Also records the demand so later batches observe it.
        """
        if n_transfers <= 0:
            return 0
        config = self.config
        other_rate = 0.0
        for other in self._demand:
            if other == cpu:
                continue
            other_rate += self._decayed_demand(other, now) / config.decay_cycles
        utilisation = min(1.0, other_rate / config.lines_per_cycle)
        surcharge = min(config.max_surcharge, utilisation)
        base = n_transfers * config.transfer_cycles
        extra = base * surcharge
        # Record own demand after pricing (no self-contention).
        self._demand[cpu] = self._decayed_demand(cpu, now) + n_transfers
        self._last_update[cpu] = now
        self.total_transfers += n_transfers
        self.total_surcharge_cycles += extra
        return int(base + extra)

    def reset(self) -> None:
        """Forget all recorded demand and counters."""
        for cpu in self._demand:
            self._demand[cpu] = 0.0
            self._last_update[cpu] = 0.0
        self.total_transfers = 0
        self.total_surcharge_cycles = 0.0
