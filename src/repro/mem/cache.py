"""Set-associative cache models with per-owner accounting.

Two cache classes share one statistics implementation:

- :class:`SetAssociativeCache` -- the main model.  Hit probes are O(1):
  a dict maps each resident line address to the set index it lives in,
  so membership is one hash lookup instead of a scan over the ways.
  Each set additionally keeps a plain Python list of line addresses in
  recency order (index 0 = MRU) -- the array-based LRU/FIFO order used
  for victim selection (the tail is the victim for both policies).
  The *set index is supplied by the caller*, because under the paper's
  partitioning scheme the index is computed by translating the
  conventional index field through a per-owner table
  (:mod:`repro.mem.partition`).  Consequently lines are identified by
  their full line address ("full-line tags"): with index translation,
  two addresses with different natural indices can land in the same set,
  so the usual truncated tag would alias.  The model assumes the
  line-to-set mapping is stable between accesses; reprogramming the
  partition map requires invalidating affected lines first (see
  :meth:`SetAssociativeCache.invalidate_owner` and
  :meth:`~repro.mem.hierarchy.MemorySystem.repartition`).

- :class:`WayManagedCache` -- the column-caching baseline ([10], [8] in
  the paper).  Sets are arrays of explicit ways; an owner may *hit* on
  any way but may only *allocate* into the ways it owns.

Both record, per owner id: accesses, hits, misses, cold misses,
evictions suffered and writebacks, plus an eviction-attribution matrix
``(evictor, victim) -> count``.  The matrix is the measurable definition
of inter-task interference: exclusive partitions must drive every
cross-owner entry to zero (this is unit-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryModelError

__all__ = [
    "CacheGeometry",
    "CacheStats",
    "OwnerStats",
    "SetAssociativeCache",
    "WayManagedCache",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a cache: number of sets, ways and the line size."""

    sets: int
    ways: int
    line_size: int

    def __post_init__(self) -> None:
        for name, value in (("sets", self.sets), ("ways", self.ways),
                            ("line_size", self.line_size)):
            if value <= 0:
                raise MemoryModelError(f"{name} must be positive, got {value}")
        if self.sets & (self.sets - 1):
            raise MemoryModelError(f"sets must be a power of two, got {self.sets}")
        if self.line_size & (self.line_size - 1):
            raise MemoryModelError(
                f"line_size must be a power of two, got {self.line_size}"
            )

    @classmethod
    def from_size(cls, size_bytes: int, ways: int, line_size: int) -> "CacheGeometry":
        """Build a geometry from a total capacity in bytes."""
        sets = size_bytes // (ways * line_size)
        if sets * ways * line_size != size_bytes:
            raise MemoryModelError(
                f"{size_bytes} bytes is not divisible into {ways} ways of "
                f"{line_size}-byte lines"
            )
        return cls(sets=sets, ways=ways, line_size=line_size)

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.sets * self.ways * self.line_size

    @property
    def line_shift(self) -> int:
        """log2 of the line size."""
        return self.line_size.bit_length() - 1

    @property
    def index_mask(self) -> int:
        """Mask extracting the natural set index from a line address."""
        return self.sets - 1

    def natural_index(self, line_addr: int) -> int:
        """Conventional set index of a line address (no translation)."""
        return line_addr & (self.sets - 1)

    def __str__(self) -> str:
        kib = self.size_bytes / 1024
        return f"{kib:g}KiB/{self.ways}way/{self.line_size}B({self.sets} sets)"


@dataclass
class OwnerStats:
    """Access statistics attributed to one owner id."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cold_misses: int = 0
    evictions_suffered: int = 0
    writebacks: int = 0

    @property
    def conflict_misses(self) -> int:
        """Misses that are not cold (capacity or conflict)."""
        return self.misses - self.cold_misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0.0 for an idle owner)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "OwnerStats") -> None:
        """Accumulate another stats record into this one."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.cold_misses += other.cold_misses
        self.evictions_suffered += other.evictions_suffered
        self.writebacks += other.writebacks


@dataclass
class CacheStats:
    """Aggregate and per-owner statistics of one cache instance."""

    per_owner: Dict[int, OwnerStats] = field(default_factory=dict)
    eviction_matrix: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def owner(self, owner_id: int) -> OwnerStats:
        """Stats record for ``owner_id`` (created on first use)."""
        stats = self.per_owner.get(owner_id)
        if stats is None:
            stats = OwnerStats()
            self.per_owner[owner_id] = stats
        return stats

    @property
    def total(self) -> OwnerStats:
        """Sum over all owners."""
        result = OwnerStats()
        for stats in self.per_owner.values():
            result.merge(stats)
        return result

    def cross_owner_evictions(self) -> int:
        """Evictions where evictor and victim differ (interference)."""
        return sum(
            count
            for (evictor, victim), count in self.eviction_matrix.items()
            if evictor != victim
        )

    def reset(self) -> None:
        """Zero every counter (keeps cache contents intact)."""
        self.per_owner.clear()
        self.eviction_matrix.clear()


class SetAssociativeCache:
    """Set-associative cache with externally supplied set indices.

    Parameters
    ----------
    geometry:
        Sets/ways/line-size shape.
    policy:
        ``"lru"`` (default), ``"fifo"`` or ``"random"`` replacement.
    name:
        For diagnostics.
    rng:
        Required for the random policy; a ``numpy`` generator.
    """

    REPLACEMENT_POLICIES = ("lru", "fifo", "random")

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: str = "lru",
        name: str = "cache",
        rng: Optional[np.random.Generator] = None,
    ):
        if policy not in self.REPLACEMENT_POLICIES:
            raise MemoryModelError(
                f"unknown replacement policy {policy!r}; "
                f"pick one of {self.REPLACEMENT_POLICIES}"
            )
        if policy == "random" and rng is None:
            raise MemoryModelError("random replacement needs an rng")
        self.geometry = geometry
        self.policy = policy
        self.name = name
        self._rng = rng
        self.stats = CacheStats()
        # One recency-ordered list of line addresses per set (0 = MRU).
        self._sets: List[List[int]] = [[] for _ in range(geometry.sets)]
        # line address -> set index it is resident in: the O(1) hit probe.
        self._where: Dict[int, int] = {}
        # line address -> owner id, for eviction attribution.
        self._owner_of: Dict[int, int] = {}
        # Dirty lines (write-back policy).
        self._dirty: set = set()
        # Lines ever seen, to classify cold misses.
        self._seen: set = set()

    # -- queries ------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return len(self._owner_of)

    def contains(self, line_addr: int) -> bool:
        """True if the line is currently resident."""
        return line_addr in self._owner_of

    def set_contents(self, set_index: int) -> tuple:
        """Snapshot of the lines of one set in recency order."""
        return tuple(self._sets[set_index])

    # -- the hot path --------------------------------------------------------

    def access(
        self,
        line_addr: int,
        set_index: int,
        write: bool,
        owner: int,
        n: int = 1,
    ) -> Tuple[bool, bool, Optional[Tuple[int, int, bool]]]:
        """Perform ``n`` back-to-back accesses to one line.

        The first access decides hit or miss; the remaining ``n - 1``
        are guaranteed hits (the caller got them from run-length
        coalescing).  Returns ``(hit, cold, evicted)`` where ``evicted``
        is ``(victim_line, victim_owner, victim_dirty)`` when the fill
        displaced a line.
        """
        lines = self._sets[set_index]
        stats = self.stats.per_owner.get(owner)
        if stats is None:
            stats = OwnerStats()
            self.stats.per_owner[owner] = stats
        stats.accesses += n

        if self._where.get(line_addr) == set_index:
            # Hit -- one dict probe, no scan over the ways.
            stats.hits += n
            if self.policy == "lru" and lines[0] != line_addr:
                lines.remove(line_addr)
                lines.insert(0, line_addr)
            if write:
                self._dirty.add(line_addr)
            return True, False, None

        # Miss.
        cold = line_addr not in self._seen
        self._seen.add(line_addr)
        stats.misses += 1
        stats.hits += n - 1
        if cold:
            stats.cold_misses += 1

        evicted: Optional[Tuple[int, int, bool]] = None
        if len(lines) >= self.geometry.ways:
            victim = self._select_victim(lines)
            del self._where[victim]
            victim_owner = self._owner_of.pop(victim)
            victim_dirty = victim in self._dirty
            if victim_dirty:
                self._dirty.discard(victim)
                self.stats.owner(victim_owner).writebacks += 1
            self.stats.owner(victim_owner).evictions_suffered += 1
            key = (owner, victim_owner)
            self.stats.eviction_matrix[key] = (
                self.stats.eviction_matrix.get(key, 0) + 1
            )
            evicted = (victim, victim_owner, victim_dirty)

        lines.insert(0, line_addr)
        self._where[line_addr] = set_index
        self._owner_of[line_addr] = owner
        if write:
            self._dirty.add(line_addr)
        return False, cold, evicted

    def _select_victim(self, lines: List[int]) -> int:
        """Remove and return the line to evict from a full set."""
        if self.policy == "random":
            victim = lines[int(self._rng.integers(len(lines)))]
            lines.remove(victim)
            return victim
        # For both LRU and FIFO the victim is the tail of the list: LRU
        # reorders on hit, FIFO does not, so the tail is respectively the
        # least recently used and the oldest inserted line.
        return lines.pop()

    def probe_writeback(self, line_addr: int, set_index: int, owner: int) -> bool:
        """Non-allocating write-back probe.

        A dirty victim arriving from an upper level updates the line in
        place when present (returns True) and is otherwise forwarded to
        the next level *without allocating* -- the standard
        victim-write path.  Does not touch recency order and is not
        counted as a demand access.
        """
        if self._where.get(line_addr) == set_index:
            self._dirty.add(line_addr)
            return True
        return False

    # -- maintenance ----------------------------------------------------------

    def invalidate_all(self) -> List[Tuple[int, int]]:
        """Drop every line; returns the dirty victims for the caller to flush.

        The result is a list of ``(line_addr, owner)`` pairs in address
        order (deterministic, so a caller flushing them to DRAM sees a
        reproducible bank sequence).  Each dirty victim is counted as a
        writeback of its owner -- invalidation must not silently lose
        DRAM traffic.
        """
        flushed = sorted(
            (line, self._owner_of[line]) for line in self._dirty
        )
        for _line, owner in flushed:
            self.stats.owner(owner).writebacks += 1
        for lines in self._sets:
            lines.clear()
        self._where.clear()
        self._owner_of.clear()
        self._dirty.clear()
        return flushed

    def invalidate_owner(self, owner: int) -> List[int]:
        """Drop all lines of one owner (partition reprogramming).

        Returns the owner's dirty line addresses in address order; the
        caller is responsible for writing them back.  Dirty victims are
        counted in the owner's ``writebacks``.
        """
        victims = [line for line, who in self._owner_of.items() if who == owner]
        flushed = sorted(line for line in victims if line in self._dirty)
        for line in victims:
            self._owner_of.pop(line)
            self._where.pop(line)
            self._dirty.discard(line)
        if flushed:
            self.stats.owner(owner).writebacks += len(flushed)
        if victims:
            victim_set = set(victims)
            for lines in self._sets:
                lines[:] = [line for line in lines if line not in victim_set]
        return flushed

    def forget_history(self) -> None:
        """Reset the cold-miss classifier (new measurement epoch)."""
        self._seen.clear()

    # -- bulk state exchange with the C walker -------------------------------

    def export_state(self):
        """Flatten the contents to parallel arrays for the C walker.

        Returns ``(lines, owners, dirty, lens)``: per set, ``ways``
        slots in recency order (slot 0 = MRU, unused slots hold -1 /
        zero), plus the per-set occupancy.  See
        :mod:`repro.mem.cwalker`.
        """
        geometry = self.geometry
        ways = geometry.ways
        n_slots = geometry.sets * ways
        lines = np.full(n_slots, -1, dtype=np.int64)
        owners = np.zeros(n_slots, dtype=np.int64)
        dirty = np.zeros(n_slots, dtype=np.uint8)
        lens = np.zeros(geometry.sets, dtype=np.int32)
        owner_of = self._owner_of
        dirty_set = self._dirty
        for set_index, slist in enumerate(self._sets):
            if not slist:
                continue
            lens[set_index] = len(slist)
            base = set_index * ways
            for k, line in enumerate(slist):
                lines[base + k] = line
                owners[base + k] = owner_of[line]
                if line in dirty_set:
                    dirty[base + k] = 1
        return lines, owners, dirty, lens

    def import_state(self, lines, owners, dirty, lens) -> None:
        """Rebuild the dict/list state from :meth:`export_state` arrays."""
        ways = self.geometry.ways
        lines_l = lines.tolist()
        owners_l = owners.tolist()
        dirty_l = dirty.tolist()
        lens_l = lens.tolist()
        sets = self._sets
        where: Dict[int, int] = {}
        owner_of: Dict[int, int] = {}
        dirty_set: set = set()
        for set_index in range(self.geometry.sets):
            count = lens_l[set_index]
            base = set_index * ways
            slist = lines_l[base:base + count]
            sets[set_index] = slist
            for k in range(count):
                line = slist[k]
                where[line] = set_index
                owner_of[line] = owners_l[base + k]
                if dirty_l[base + k]:
                    dirty_set.add(line)
        self._where = where
        self._owner_of = owner_of
        self._dirty = dirty_set

    def __repr__(self) -> str:
        return (
            f"<SetAssociativeCache {self.name!r} {self.geometry} "
            f"policy={self.policy}>"
        )


class WayManagedCache:
    """Column-caching baseline: partitioning by ways, not by sets.

    Each set holds ``ways`` explicit slots.  An access may hit on any
    way; on a miss the fill may only evict a way the owner is allowed to
    allocate into (its *columns*).  This reproduces the granularity
    restriction the paper criticises: with a 4-way cache at most four
    owners can have exclusive space.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "way-cache"):
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        sets, ways = geometry.sets, geometry.ways
        self._line: List[List[Optional[int]]] = [
            [None] * ways for _ in range(sets)
        ]
        self._owner: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._stamp: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._dirty: set = set()
        self._seen: set = set()
        self._clock = 0

    def access(
        self,
        line_addr: int,
        set_index: int,
        write: bool,
        owner: int,
        alloc_ways: Tuple[int, ...],
        n: int = 1,
    ) -> Tuple[bool, bool, Optional[Tuple[int, int, bool]]]:
        """Access with an allocation-way restriction; see class docs."""
        if not alloc_ways:
            raise MemoryModelError(f"owner {owner} has no allocation ways")
        self._clock += 1
        slot_lines = self._line[set_index]
        stats = self.stats.owner(owner)
        stats.accesses += n

        for way, resident in enumerate(slot_lines):
            if resident == line_addr:
                stats.hits += n
                self._stamp[set_index][way] = self._clock
                if write:
                    self._dirty.add(line_addr)
                return True, False, None

        cold = line_addr not in self._seen
        self._seen.add(line_addr)
        stats.misses += 1
        stats.hits += n - 1
        if cold:
            stats.cold_misses += 1

        # Prefer an empty allowed way; otherwise evict LRU allowed way.
        victim_way = None
        for way in alloc_ways:
            if slot_lines[way] is None:
                victim_way = way
                break
        if victim_way is None:
            victim_way = min(alloc_ways, key=lambda w: self._stamp[set_index][w])

        evicted: Optional[Tuple[int, int, bool]] = None
        old_line = slot_lines[victim_way]
        if old_line is not None:
            old_owner = self._owner[set_index][victim_way]
            old_dirty = old_line in self._dirty
            self._dirty.discard(old_line)
            if old_dirty:
                self.stats.owner(old_owner).writebacks += 1
            self.stats.owner(old_owner).evictions_suffered += 1
            key = (owner, old_owner)
            self.stats.eviction_matrix[key] = (
                self.stats.eviction_matrix.get(key, 0) + 1
            )
            evicted = (old_line, old_owner, old_dirty)

        slot_lines[victim_way] = line_addr
        self._owner[set_index][victim_way] = owner
        self._stamp[set_index][victim_way] = self._clock
        if write:
            self._dirty.add(line_addr)
        return False, cold, evicted

    def probe_writeback(self, line_addr: int, set_index: int, owner: int) -> bool:
        """Non-allocating write-back probe (see SetAssociativeCache)."""
        for resident in self._line[set_index]:
            if resident == line_addr:
                self._dirty.add(line_addr)
                return True
        return False

    def invalidate_all(self) -> List[Tuple[int, int]]:
        """Drop every line; returns dirty ``(line, owner)`` victims to flush.

        Mirrors :meth:`SetAssociativeCache.invalidate_all`: dirty victims
        are counted as writebacks of their owner and handed to the caller
        in address order.
        """
        flushed: List[Tuple[int, int]] = []
        for set_index, slot_lines in enumerate(self._line):
            for way, line in enumerate(slot_lines):
                if line is not None and line in self._dirty:
                    flushed.append((line, self._owner[set_index][way]))
            slot_lines[:] = [None] * self.geometry.ways
            self._stamp[set_index] = [0] * self.geometry.ways
        flushed.sort()
        for _line, owner in flushed:
            self.stats.owner(owner).writebacks += 1
        self._dirty.clear()
        return flushed

    def invalidate_owner(self, owner: int) -> List[int]:
        """Drop all lines of one owner (partition reprogramming).

        Mirrors :meth:`SetAssociativeCache.invalidate_owner`: returns
        the owner's dirty line addresses in address order, counted in
        the owner's ``writebacks``; the caller writes them back.
        Emptied slots reset their stamp to 0, preserving the
        empty-slot-stamp invariant of :meth:`export_state`.
        """
        flushed: List[int] = []
        for set_index, slot_lines in enumerate(self._line):
            owner_row = self._owner[set_index]
            stamp_row = self._stamp[set_index]
            for way, line in enumerate(slot_lines):
                if line is None or owner_row[way] != owner:
                    continue
                if line in self._dirty:
                    self._dirty.discard(line)
                    flushed.append(line)
                slot_lines[way] = None
                owner_row[way] = 0
                stamp_row[way] = 0
        flushed.sort()
        if flushed:
            self.stats.owner(owner).writebacks += len(flushed)
        return flushed

    def forget_history(self) -> None:
        """Reset the cold-miss classifier."""
        self._seen.clear()

    # -- bulk state exchange with the compiled walker ------------------------

    def export_state(self):
        """Flatten the contents to parallel arrays for the C walker.

        Returns ``(lines, owners, dirty, stamps, clock)``: per set,
        ``ways`` explicit slots (empty slots hold line -1), the
        recency stamps, and the global stamp clock.  Empty slots carry
        stamp 0 -- which is exactly their reference value, since slots
        only start empty or become empty through :meth:`invalidate_all`
        / :meth:`invalidate_owner` (all reset stamps to 0) and victim
        selection never reads the stamp of an empty slot.
        """
        geometry = self.geometry
        ways = geometry.ways
        n_slots = geometry.sets * ways
        lines = np.full(n_slots, -1, dtype=np.int64)
        owners = np.zeros(n_slots, dtype=np.int64)
        dirty = np.zeros(n_slots, dtype=np.uint8)
        stamps = np.zeros(n_slots, dtype=np.int64)
        dirty_set = self._dirty
        for set_index, slot_lines in enumerate(self._line):
            base = set_index * ways
            owner_row = self._owner[set_index]
            stamp_row = self._stamp[set_index]
            for way, line in enumerate(slot_lines):
                if line is None:
                    continue
                lines[base + way] = line
                owners[base + way] = owner_row[way]
                stamps[base + way] = stamp_row[way]
                if line in dirty_set:
                    dirty[base + way] = 1
        return lines, owners, dirty, stamps, self._clock

    def import_state(self, lines, owners, dirty, stamps, clock) -> None:
        """Rebuild the slot state from :meth:`export_state` arrays."""
        ways = self.geometry.ways
        lines_l = lines.tolist()
        owners_l = owners.tolist()
        dirty_l = dirty.tolist()
        stamps_l = stamps.tolist()
        dirty_set: set = set()
        for set_index in range(self.geometry.sets):
            base = set_index * ways
            self._line[set_index] = [
                None if lines_l[base + way] == -1 else lines_l[base + way]
                for way in range(ways)
            ]
            self._owner[set_index] = owners_l[base:base + ways]
            self._stamp[set_index] = stamps_l[base:base + ways]
            for way in range(ways):
                if dirty_l[base + way]:
                    dirty_set.add(lines_l[base + way])
        self._dirty = dirty_set
        self._clock = int(clock)

    def __repr__(self) -> str:
        return f"<WayManagedCache {self.name!r} {self.geometry}>"
