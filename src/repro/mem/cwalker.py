"""On-demand C backend of the fast hierarchy engine.

The per-run walk of :mod:`repro.mem.hierarchy` is bound by the
interpreter, not by the data structures -- even a fully inlined Python
loop costs a couple of microseconds per run.  This module compiles the
equivalent C routine (``_walker.c``, shipped next to this file) with the
system compiler the first time it is needed and binds it through
:mod:`ctypes`.  Everything degrades gracefully: no compiler, a failed
compilation or an unwritable build directory simply mean
:func:`load` returns ``None`` and the Python walker runs.

The compiled object is cached under ``<package>/_build/`` keyed by the
source content hash, so recompilation happens only when ``_walker.c``
changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
from typing import Optional

__all__ = ["load", "FLAG_L1_MISS", "FLAG_L2_DEMAND_MISS", "FLAG_L1_EVICT",
           "FLAG_L2_EVICT", "FLAG_L1_WB", "FLAG_L2_WB",
           "FLAG_L2_PROBE_MISS", "ENTRY_COMPUTE", "ENTRY_DELAY",
           "ENTRY_SWITCH", "L2_MODE_LRU", "L2_MODE_FIFO", "L2_MODE_WAY"]

#: Flag bits emitted per run; must match ``_walker.c``.
FLAG_L1_MISS = 1
FLAG_L2_DEMAND_MISS = 2
FLAG_L1_EVICT = 4
FLAG_L2_EVICT = 8
FLAG_L1_WB = 16
FLAG_L2_WB = 32
FLAG_L2_PROBE_MISS = 64

_SOURCE = os.path.join(os.path.dirname(__file__), "_walker.c")
_BUILD_DIR = os.path.join(os.path.dirname(__file__), "_build")

_walker = None
_load_attempted = False


def _find_compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _compile() -> Optional[str]:
    """Compile ``_walker.c``; returns the shared-object path or ``None``."""
    try:
        with open(_SOURCE, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    so_path = os.path.join(_BUILD_DIR, f"_walker_{digest}{suffix}")
    if os.path.exists(so_path):
        return so_path
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        os.makedirs(_BUILD_DIR, exist_ok=True)
        tmp_path = so_path + f".tmp{os.getpid()}"
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, _SOURCE,
             "-lm"],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_path, so_path)  # atomic wrt concurrent builders
    except (OSError, subprocess.SubprocessError):
        return None
    return so_path


#: Schedule-entry kinds accepted by ``walk_segment``; must match
#: ``_walker.c``.
ENTRY_COMPUTE = 0
ENTRY_DELAY = 1
ENTRY_SWITCH = 2

#: L2 organisations of the persistent state handle.
L2_MODE_LRU = 0
L2_MODE_FIFO = 1
L2_MODE_WAY = 2


class CWalker:
    """Bound routines of the compiled walker library.

    ``walk_batch`` / ``first_occurrence`` serve the stateless fast
    tier; ``state_new`` / ``state_free`` / ``walk_segment`` are the
    schedule-compiled tier's persistent-handle API (see
    :mod:`repro.mem.hierarchy`).
    """

    def __init__(self, walk_batch, first_occurrence,
                 state_new, state_free, walk_segment):
        self.walk_batch = walk_batch
        self.first_occurrence = first_occurrence
        self.state_new = state_new
        self.state_free = state_free
        self.walk_segment = walk_segment


def load() -> Optional[CWalker]:
    """The bound :class:`CWalker`, or ``None`` when unavailable.

    The first call pays the (cached) compilation; later calls return
    the memoised binding.  Set ``REPRO_NO_CWALKER=1`` to force the pure
    Python engine, e.g. for benchmarking the interpreter tiers.
    """
    global _walker, _load_attempted
    if _load_attempted:
        return _walker
    _load_attempted = True
    if os.environ.get("REPRO_NO_CWALKER"):
        return None
    so_path = _compile()
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(so_path)
        walk = lib.walk_batch
        first = lib.first_occurrence
        state_new = lib.walker_state_new
        state_free = lib.walker_state_free
        segment = lib.walk_segment
    except (OSError, AttributeError):
        return None
    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    p_f64 = ctypes.POINTER(ctypes.c_double)
    walk.restype = None
    walk.argtypes = [
        i64,                      # n_runs
        p_i64, p_i64, p_i64,      # lines, l1_idx, l2_idx
        p_u8, p_u8,               # write_any, store_fill
        i64,                      # l1_ways
        p_i64, p_i64, p_u8, p_i32,  # L1 lines/owners/dirty/len
        i64, i64,                 # l2_ways, l2_is_lru
        p_i64, p_i64, p_u8, p_i32,  # L2 lines/owners/dirty/len
        p_i64,                    # run_owners
        i64, i64,                 # use_table, n_table
        p_i64, p_i64, p_u8,       # table base/size/pow2
        i64,                      # l2_mask
        ctypes.c_double, i64, i64, p_f64,  # now, bank_mask, bank_busy, banks
        p_u8, p_i64, p_i64,       # flags, l1_victim_owner, l2_victim_owner
        p_i64,                    # counters[3]
    ]
    first.restype = ctypes.c_int
    first.argtypes = [ctypes.c_void_p, i64, ctypes.c_void_p]
    # Pointer arguments are declared as c_void_p and passed as raw
    # ``ndarray.ctypes.data`` integers: the segment walker runs per
    # schedule step, where building typed ctypes pointers per argument
    # measurably dominates small calls.
    ptr = ctypes.c_void_p
    state_new.restype = ctypes.c_void_p
    state_new.argtypes = [
        i64,                        # n_cpus
        i64, i64,                   # l1 sets/ways
        ptr, ptr, ptr, ptr,         # L1 lines/owners/dirty/len (all cpus)
        i64, i64, i64,              # l2 sets/ways/mode
        ptr, ptr, ptr, ptr,         # L2 lines/owners/dirty/len
        ptr, ptr,                   # l2 stamps, way clock slot
        i64, i64, i64, i64, ptr,    # bank mask/busy/access/penalty, banks
        i64, f64, f64, f64,         # bus transfer/lines-per-cycle/decay/cap
        ptr, ptr,                   # bus demand / last-update
        ptr, ptr,                   # bus transfers / surcharge totals
        f64, i64,                   # issue_cpi, l2_hit_cycles
    ]
    state_free.restype = None
    state_free.argtypes = [ctypes.c_void_p]
    segment.restype = i64
    segment.argtypes = [
        ctypes.c_void_p,            # state
        i64,                        # n_entries
        ptr, ptr,                   # entry kind / cpu
        ptr, ptr,                   # entry run ranges [start, end)
        ptr, ptr,                   # entry instructions / fixed advance
        ptr, ptr, ptr,              # lines, l1_idx, l2_idx
        ptr, ptr,                   # write_any, store_fill
        ptr,                        # run_owners
        i64, i64,                   # use_table, n_table
        ptr, ptr, ptr,              # table base/size/pow2
        ptr, i64,                   # way allocation table, way_rows
        f64, f64,                   # now, horizon
        i64, i64,                   # quantum, use_quantum
        ptr, ptr, ptr,              # flags, l1/l2 victim owners
        ptr, ptr, ptr,              # per-entry cycles/l1_misses/l2_misses
        ptr, ptr, ptr,              # per-entry dram_lines/bus/store_fills
        ptr,                        # counters[3]
    ]
    _walker = CWalker(walk, first, state_new, state_free, segment)
    return _walker
