"""Multi-level memory hierarchy walker.

:class:`MemorySystem` ties together the per-CPU private L1 caches, the
shared (optionally partitioned) L2, the bus and DRAM, and prices a batch
of memory accesses in cycles:

``cycles = instructions x issue_cpi``
``        + L2 read accesses x l2_hit_cycles``
``        + L2 misses x DRAM latency``
``        + bus transfer + contention cycles``

Writebacks (dirty evictions) generate traffic but do not stall the CPU
-- the usual write-buffer simplification.  All per-owner hit/miss
accounting lives in the caches' :class:`~repro.mem.cache.CacheStats`.

The walker consumes *runs* (see :mod:`repro.mem.trace`): one cache probe
per run, with the run length counted as accesses.  L1 and L2 must share
a line size for the run semantics to be exact; the constructor enforces
this.

Two engines implement the walk:

- ``engine="reference"`` -- one method call per run into the cache
  models.  Slow but obviously faithful; it is the differential-testing
  oracle.
- ``engine="fast"`` (the default) -- vectorises everything that does
  not depend on cache state (owner resolution, L1/L2 set indices, the
  run decomposition itself), walks the runs with the cache and DRAM
  state inlined as local dicts/lists, and defers all per-owner
  statistics to a batched ``bincount`` flush after the walk.  Pure
  L1-hit runs cost a single dict probe; only L1-miss runs enter the
  larger slow path.  The two engines produce bit-identical statistics,
  which the differential test suite asserts.

The fast engine silently falls back to the reference walk for the rare
configurations it does not specialise (a ``random`` L2 replacement
policy, or negative owner ids).
"""

from __future__ import annotations

import ctypes
import gc

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.mem import cwalker
from repro.mem.bus import BusConfig, SharedBus
from repro.mem.cache import CacheGeometry, SetAssociativeCache, WayManagedCache
from repro.mem.memory import DramConfig, MainMemory
from repro.mem.partition import (
    OwnerResolver,
    PartitionMode,
    SetPartitionMap,
    WayPartitionMap,
)
from repro.mem.trace import AccessBatch

__all__ = ["BatchResult", "HierarchyConfig", "MemorySystem"]

#: Below this many runs the per-batch cache-state marshalling of the C
#: walker costs more than the Python walk it saves.
_C_WALK_THRESHOLD = 4096


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometries and timing of the whole memory system."""

    #: 8 KB 4-way private L1 (TriMedia-class data cache pressure: small
    #: enough that task working sets spill to the shared L2, which is
    #: where the paper's interference effect lives).
    l1_geometry: CacheGeometry = CacheGeometry(sets=32, ways=4, line_size=64)
    #: 512 KB 4-way shared L2 -- the paper's instance.
    l2_geometry: CacheGeometry = CacheGeometry(sets=2048, ways=4, line_size=64)
    #: Base cycles per instruction of the VLIW core (no memory stalls).
    issue_cpi: float = 0.55
    #: Stall cycles for an L2 hit (L1 miss served on-tile).
    l2_hit_cycles: int = 12
    dram: DramConfig = field(default_factory=DramConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    l2_policy: str = "lru"
    #: ``"fast"`` (vectorised walker, the default) or ``"reference"``
    #: (per-run method calls; the differential-testing oracle).
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.l1_geometry.line_size != self.l2_geometry.line_size:
            raise ConfigurationError(
                "L1 and L2 must share a line size for run coalescing"
            )
        if self.issue_cpi <= 0:
            raise ConfigurationError("issue_cpi must be positive")
        if self.l2_hit_cycles < 0:
            raise ConfigurationError("l2_hit_cycles must be >= 0")
        if self.engine not in ("reference", "fast"):
            raise ConfigurationError(
                f"engine must be 'reference' or 'fast', got {self.engine!r}"
            )


@dataclass
class BatchResult:
    """Cost and traffic of executing one access batch."""

    cycles: int = 0
    instructions: int = 0
    accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_lines: int = 0
    bus_cycles: int = 0
    store_fills: int = 0

    def merge(self, other: "BatchResult") -> None:
        """Accumulate another result into this one."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.accesses += other.accesses
        self.l1_misses += other.l1_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.dram_lines += other.dram_lines
        self.bus_cycles += other.bus_cycles
        self.store_fills += other.store_fills


class MemorySystem:
    """L1s + shared L2 + bus + DRAM for an ``n_cpus`` tile."""

    #: Minimum batch size (in runs) for the compiled walker; overridable
    #: per instance (tests pin it to force or forbid the C path).
    c_walk_threshold = _C_WALK_THRESHOLD

    def __init__(
        self,
        n_cpus: int,
        config: HierarchyConfig,
        resolver: Optional[OwnerResolver] = None,
        mode: PartitionMode = PartitionMode.SHARED,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_cpus <= 0:
            raise ConfigurationError("n_cpus must be positive")
        self.n_cpus = n_cpus
        self.config = config
        self.mode = mode
        self.resolver = resolver if resolver is not None else OwnerResolver()
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1_geometry, name=f"l1.cpu{i}")
            for i in range(n_cpus)
        ]
        if mode is PartitionMode.WAY_PARTITIONED:
            self.l2_way = WayManagedCache(config.l2_geometry, name="l2")
            self.l2 = None
        else:
            self.l2 = SetAssociativeCache(
                config.l2_geometry, policy=config.l2_policy, name="l2", rng=rng
            )
            self.l2_way = None
        self.set_map = SetPartitionMap(config.l2_geometry.sets)
        self.way_map = WayPartitionMap(config.l2_geometry.ways)
        self.memory = MainMemory(config.dram)
        self.bus = SharedBus(config.bus, n_cpus=n_cpus)
        # The fast walker inlines LRU/FIFO victim selection; a random-
        # replacement L2 keeps the reference walk (the L1s are always LRU).
        self._fast = config.engine == "fast" and (
            self.l2 is None or self.l2.policy in ("lru", "fifo")
        )

    # -- configuration -----------------------------------------------------

    @property
    def l2_stats(self):
        """Per-owner stats of the L2 (whichever implementation is live)."""
        cache = self.l2 if self.l2 is not None else self.l2_way
        return cache.stats

    def reset_stats(self) -> None:
        """Zero all statistics without touching cache contents."""
        for l1 in self.l1s:
            l1.stats.reset()
        self.l2_stats.reset()
        self.memory.reset_traffic()
        self.bus.reset()

    def repartition(self, now: float = 0.0) -> int:
        """Flush and invalidate every cache level; returns the writebacks.

        The OS must call this before reprogramming the partition maps:
        index translation moves lines between sets, so stale residents
        would alias, and silently dropping dirty lines would lose DRAM
        traffic.  Every dirty victim is written back to DRAM (traffic
        only -- reprogramming is not on the CPUs' critical path).
        """
        flushed = 0
        caches = list(self.l1s)
        caches.append(self.l2 if self.l2 is not None else self.l2_way)
        for cache in caches:
            for line, _owner in cache.invalidate_all():
                self.memory.access(line, True, now)
                flushed += 1
        return flushed

    # -- execution -----------------------------------------------------------

    def execute_batch(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """Run ``batch`` on ``cpu_id`` on behalf of ``task_owner``.

        Returns the :class:`BatchResult` with the cycle cost; caches,
        bus and DRAM state advance as side effects.  Dispatches to the
        engine selected by :attr:`HierarchyConfig.engine`.
        """
        if not 0 <= cpu_id < self.n_cpus:
            raise MemoryModelError(f"cpu {cpu_id} out of range")
        if self._fast:
            return self._execute_batch_fast(cpu_id, task_owner, batch, now)
        return self._execute_batch_reference(cpu_id, task_owner, batch, now)

    def _execute_batch_reference(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """The oracle walk: one cache-model method call per run."""
        config = self.config
        l1 = self.l1s[cpu_id]
        line_shift = config.l1_geometry.line_shift
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        resolve = self.resolver.resolve
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED
        way_partitioned = self.mode is PartitionMode.WAY_PARTITIONED
        translate = self.set_map.map_index
        ways_of = self.way_map.ways_of

        result = BatchResult(
            instructions=batch.instructions, accesses=batch.n_accesses
        )
        stall_cycles = 0.0
        transfers = 0
        # A write-only run touching at least this many spots filled the
        # whole line, so the allocation needs no fetch (write-validate).
        full_line_count = config.l1_geometry.line_size // 4

        line_addrs, counts, write_any, write_all = batch.runs(line_shift)
        for i in range(line_addrs.shape[0]):
            line = int(line_addrs[i])
            count = int(counts[i])
            write = bool(write_any[i])
            owner = resolve(line << line_shift, task_owner)

            l1_hit, _cold, l1_evicted = l1.access(
                line, line & l1_mask, write, owner, n=count
            )
            if l1_hit:
                continue
            result.l1_misses += 1
            transfers += 1

            # Dirty L1 victim is written back into the L2 first.  The
            # write-back is non-allocating: it updates the L2 copy when
            # present and otherwise goes straight to DRAM.
            if l1_evicted is not None and l1_evicted[2]:
                wb_line, wb_owner = l1_evicted[0], l1_evicted[1]
                if way_partitioned:
                    wb_hit = self.l2_way.probe_writeback(
                        wb_line, wb_line & l2_mask, wb_owner
                    )
                else:
                    wb_index = (
                        translate(wb_owner, wb_line)
                        if set_partitioned
                        else wb_line & l2_mask
                    )
                    wb_hit = self.l2.probe_writeback(wb_line, wb_index, wb_owner)
                if not wb_hit:
                    self.memory.access(wb_line, True, now)
                    result.dram_lines += 1
                transfers += 1

            # Full-line streaming stores allocate without a DRAM fetch
            # (write-validate).  The line is installed dirty in the L2
            # as well -- the L2 is the tile's communication point, so a
            # consumer on another CPU finds the producer's data there.
            # The allocation counts as an access but not as a miss.
            if bool(write_all[i]) and count >= full_line_count:
                result.store_fills += 1
                self._l2_store_fill(
                    line, owner, l2_mask, set_partitioned, way_partitioned,
                    translate, ways_of, now, result,
                )
                continue

            # The demand fill.
            l2_hit = self._l2_access(
                line,
                owner,
                write,
                l2_mask,
                set_partitioned,
                way_partitioned,
                translate,
                ways_of,
                now,
                result,
            )
            stall_cycles += config.l2_hit_cycles
            if not l2_hit:
                stall_cycles += self.memory.access(line, False, now)
                result.dram_lines += 1

        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(batch.instructions * config.issue_cpi)
            + int(stall_cycles)
            + bus_cycles
        )
        return result

    def _execute_batch_fast(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """Vectorised walk producing bit-identical statistics.

        Per-run work that does not depend on cache state -- owner
        resolution, L1/L2 set indices -- is precomputed with numpy and
        materialised as plain Python lists (scalar indexing into numpy
        arrays is an order of magnitude slower than list indexing).  The
        walk itself touches the caches' internal dicts/lists directly
        through local bindings, records outcomes as run indices and
        event tuples, and flushes all per-owner statistics in one
        ``bincount`` pass at the end.  State mutations (cache contents,
        DRAM bank timing) happen in exactly the reference order, so
        every counter and every timing quantity matches the oracle.
        """
        config = self.config
        result = BatchResult(
            instructions=batch.instructions, accesses=batch.n_accesses
        )
        line_shift = config.l1_geometry.line_shift
        line_arr, count_arr, wany_arr, wall_arr = batch.runs(line_shift)
        n_runs = int(line_arr.shape[0])
        if n_runs == 0:
            result.cycles = int(round(batch.instructions * config.issue_cpi))
            return result

        owners_arr = self.resolver.resolve_many(
            line_arr << line_shift, task_owner
        )
        if int(owners_arr.min()) < 0:
            # Negative owner ids would break the bincount flush; the
            # registry never produces them, so take the oracle path.
            return self._execute_batch_reference(
                cpu_id, task_owner, batch, now
            )

        l1 = self.l1s[cpu_id]
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        full_line_count = config.l1_geometry.line_size // 4
        l2_hit_cycles = config.l2_hit_cycles
        mode = self.mode
        way_partitioned = mode is PartitionMode.WAY_PARTITIONED
        set_partitioned = mode is PartitionMode.SET_PARTITIONED
        map_index = self.set_map.map_index

        if set_partitioned:
            l2_idx_arr = self.set_map.map_index_many(owners_arr, line_arr)
        elif way_partitioned:
            l2_idx_arr = None
        else:
            l2_idx_arr = line_arr & l2_mask

        if not way_partitioned and n_runs >= self.c_walk_threshold:
            walker = cwalker.load()
            if walker is not None:
                return self._execute_batch_fast_c(
                    walker, cpu_id, result, now,
                    line_arr, count_arr, wany_arr, wall_arr,
                    owners_arr, l2_idx_arr,
                )

        l2_idx_list = (
            l2_idx_arr.tolist() if not way_partitioned else None
        )
        l1_idx_list = (line_arr & l1_mask).tolist()
        lines_list = line_arr.tolist()
        counts_list = count_arr.tolist()
        wany_list = wany_arr.tolist()
        wall_list = wall_arr.tolist()
        owners_list = owners_arr.tolist()

        # L1 internals as locals (the L1s are always LRU).
        l1_sets = l1._sets
        l1_where = l1._where
        l1_where_get = l1_where.get
        l1_owner_of = l1._owner_of
        l1_dirty = l1._dirty
        l1_dirty_add = l1_dirty.add
        l1_seen = l1._seen
        l1_seen_add = l1_seen.add
        l1_ways = l1.geometry.ways

        if way_partitioned:
            l2_way = self.l2_way
            l2_way_probe = l2_way.probe_writeback
            ways_of = self.way_map.ways_of
        else:
            l2 = self.l2
            l2_sets = l2._sets
            l2_where = l2._where
            l2_where_get = l2_where.get
            l2_owner_of = l2._owner_of
            l2_dirty = l2._dirty
            l2_dirty_add = l2_dirty.add
            l2_seen = l2._seen
            l2_seen_add = l2_seen.add
            l2_ways = l2.geometry.ways
            l2_lru = l2.policy == "lru"

        # DRAM bank model inlined (same dict, same update order).
        dram = self.memory.config
        bank_mask = dram.n_banks - 1
        bank_busy = dram.bank_busy_cycles
        bank_free = self.memory._bank_free_at
        bank_free_get = bank_free.get
        dram_writes = 0
        write_conflicts = 0
        read_conflicts = 0
        way_dram_lines = 0
        way_stall = 0

        # Outcome recorders: owner-id lists the flush reduces with
        # bincount.  Everything else is derived from their lengths.
        l1_miss_owners: List[int] = []
        l1_miss_append = l1_miss_owners.append
        l1_cold_owners: List[int] = []
        l1_evictor_owners: List[int] = []
        l1_victim_owners: List[int] = []
        l1_wb_owners: List[int] = []
        l2_miss_owners: List[int] = []
        l2_cold_owners: List[int] = []
        l2_evictor_owners: List[int] = []
        l2_victim_owners: List[int] = []
        l2_wb_owners: List[int] = []
        store_fills = 0

        # The recorder lists retain millions of objects on big batches;
        # with the generational GC enabled, every full collection walks
        # them again and dominates the runtime.  Nothing in the walk can
        # create reference cycles, so pause collection for its duration.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for i, line in enumerate(lines_list):
                si = l1_idx_list[i]
                # -- L1 probe: one dict lookup --------------------------
                if l1_where_get(line) == si:
                    slist = l1_sets[si]
                    if slist[0] != line:
                        slist.remove(line)
                        slist.insert(0, line)
                    if wany_list[i]:
                        l1_dirty_add(line)
                    continue

                # -- L1 miss --------------------------------------------
                write = wany_list[i]
                owner = owners_list[i]
                l1_miss_append(owner)
                if line not in l1_seen:
                    l1_cold_owners.append(owner)
                    l1_seen_add(line)
                slist = l1_sets[si]
                wb_line = None
                if len(slist) >= l1_ways:
                    victim = slist.pop()
                    del l1_where[victim]
                    victim_owner = l1_owner_of.pop(victim)
                    if victim in l1_dirty:
                        l1_dirty.remove(victim)
                        l1_wb_owners.append(victim_owner)
                        wb_line = victim
                        wb_owner = victim_owner
                    l1_evictor_owners.append(owner)
                    l1_victim_owners.append(victim_owner)
                slist.insert(0, line)
                l1_where[line] = si
                l1_owner_of[line] = owner
                if write:
                    l1_dirty_add(line)

                # -- dirty L1 victim written back through the L2 --------
                if wb_line is not None:
                    if way_partitioned:
                        wb_hit = l2_way_probe(
                            wb_line, wb_line & l2_mask, wb_owner
                        )
                    else:
                        if set_partitioned:
                            wb_index = map_index(wb_owner, wb_line)
                        else:
                            wb_index = wb_line & l2_mask
                        if l2_where_get(wb_line) == wb_index:
                            l2_dirty_add(wb_line)
                            wb_hit = True
                        else:
                            wb_hit = False
                    if not wb_hit:
                        bank = wb_line & bank_mask
                        free_at = bank_free_get(bank, 0.0)
                        if now < free_at:
                            write_conflicts += 1
                        bank_free[bank] = (
                            free_at if free_at > now else now
                        ) + bank_busy
                        dram_writes += 1

                store_fill = (
                    wall_list[i] and counts_list[i] >= full_line_count
                )
                if store_fill:
                    store_fills += 1

                # -- way-partitioned L2: reference method path ----------
                if way_partitioned:
                    if store_fill:
                        self._l2_store_fill(
                            line, owner, l2_mask, False, True,
                            map_index, ways_of, now, result,
                        )
                        continue
                    l2_hit = self._l2_access(
                        line, owner, write, l2_mask, False, True,
                        map_index, ways_of, now, result,
                    )
                    way_stall += l2_hit_cycles
                    if not l2_hit:
                        way_stall += self.memory.access(line, False, now)
                        way_dram_lines += 1
                    continue

                # -- set-associative L2, inlined ------------------------
                l2i = l2_idx_list[i]
                if l2_where_get(line) == l2i:
                    slist2 = l2_sets[l2i]
                    if l2_lru and slist2[0] != line:
                        slist2.remove(line)
                        slist2.insert(0, line)
                    if write:
                        l2_dirty_add(line)
                    continue

                # L2 miss (store fills allocate, but are not demand
                # misses and fetch nothing).
                if line not in l2_seen:
                    if not store_fill:
                        l2_cold_owners.append(owner)
                    l2_seen_add(line)
                if not store_fill:
                    l2_miss_owners.append(owner)
                slist2 = l2_sets[l2i]
                if len(slist2) >= l2_ways:
                    victim = slist2.pop()
                    del l2_where[victim]
                    victim_owner = l2_owner_of.pop(victim)
                    l2_evictor_owners.append(owner)
                    l2_victim_owners.append(victim_owner)
                    if victim in l2_dirty:
                        l2_dirty.remove(victim)
                        l2_wb_owners.append(victim_owner)
                        bank = victim & bank_mask
                        free_at = bank_free_get(bank, 0.0)
                        if now < free_at:
                            write_conflicts += 1
                        bank_free[bank] = (
                            free_at if free_at > now else now
                        ) + bank_busy
                        dram_writes += 1
                slist2.insert(0, line)
                l2_where[line] = l2i
                l2_owner_of[line] = owner
                if write:
                    l2_dirty_add(line)
                if store_fill:
                    continue
                # Demand miss: the DRAM fetch (bank state now, latency
                # derived in the flush below).
                bank = line & bank_mask
                free_at = bank_free_get(bank, 0.0)
                if now < free_at:
                    read_conflicts += 1
                bank_free[bank] = (
                    free_at if free_at > now else now
                ) + bank_busy
        finally:
            if gc_was_enabled:
                gc.enable()

        # -- batched statistics and counter flush ----------------------
        #
        # Everything below is a pure function of the recorders: stall
        # cycles are ``l2_hit_cycles`` per demand probe plus the DRAM
        # base latency per read plus the bank penalty per read conflict
        # -- term for term what the reference walk accumulates.
        l1_misses = len(l1_miss_owners)
        _flush_weighted_stats(
            l1.stats, owners_arr, count_arr,
            l1_miss_owners, l1_cold_owners,
            l1_evictor_owners, l1_victim_owners, l1_wb_owners,
        )
        traffic = self.memory.traffic
        if way_partitioned:
            stall = way_stall
            dram_lines = way_dram_lines + dram_writes
        else:
            _flush_probe_stats(
                self.l2.stats,
                l1_miss_owners, l2_miss_owners, l2_cold_owners,
                l2_evictor_owners, l2_victim_owners, l2_wb_owners,
            )
            dram_reads = len(l2_miss_owners)
            result.l2_accesses = l1_misses
            result.l2_misses = dram_reads
            stall = (
                (l1_misses - store_fills) * l2_hit_cycles
                + dram_reads * dram.access_cycles
                + read_conflicts * dram.bank_penalty_cycles
            )
            dram_lines = dram_reads + dram_writes
            traffic.line_reads += dram_reads
        traffic.line_writes += dram_writes
        traffic.bank_conflicts += read_conflicts + write_conflicts

        result.l1_misses = l1_misses
        result.store_fills = store_fills
        result.dram_lines += dram_lines
        transfers = l1_misses + len(l1_wb_owners)
        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(batch.instructions * config.issue_cpi) + stall + bus_cycles
        )
        return result

    def _execute_batch_fast_c(
        self, walker, cpu_id, result, now,
        line_arr, count_arr, wany_arr, wall_arr, owners_arr, l2_idx_arr,
    ) -> BatchResult:
        """Large-batch walk through the compiled kernel (see cwalker).

        Cache and DRAM-bank state is flattened to arrays, the C routine
        replays the reference sequence over them, and the per-run flag
        and victim-owner outputs are reduced to statistics with numpy.
        Cold misses never need kernel support: a line's first-ever
        access always misses, so the cold runs are exactly the
        batch-first occurrences of lines absent from the seen-sets.
        """
        import ctypes

        config = self.config
        l1 = self.l1s[cpu_id]
        l2 = self.l2
        n_runs = int(line_arr.shape[0])
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        full_line_count = config.l1_geometry.line_size // 4
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED

        l1_idx_arr = line_arr & l1_mask
        sf_arr = (wall_arr & (count_arr >= full_line_count)).astype(np.uint8)
        wany_u8 = wany_arr.astype(np.uint8)

        l1_lines, l1_owners, l1_dirty, l1_lens = l1.export_state()
        l2_lines, l2_owners, l2_dirty, l2_lens = l2.export_state()

        # Dirty L1 victims re-index through the per-owner translation;
        # ship the map as a dense table (row n_table = default mapping).
        if set_partitioned:
            use_table = 1
            max_owner = int(owners_arr.max())
            if int(l1_lens.sum()):
                max_owner = max(max_owner, int(l1_owners.max()))
            n_table = max_owner + 1
            pool = self.set_map.default_pool
            if pool is not None:
                default_row = (pool.base, pool.n_sets, pool.is_power_of_two)
            else:
                default_row = (0, config.l2_geometry.sets, True)
            tbl_base = np.empty(n_table + 1, dtype=np.int64)
            tbl_size = np.empty(n_table + 1, dtype=np.int64)
            tbl_pow2 = np.empty(n_table + 1, dtype=np.uint8)
            for owner in range(n_table):
                partition = self.set_map.effective_partition(owner)
                row = (
                    (partition.base, partition.n_sets,
                     partition.is_power_of_two)
                    if partition is not None else default_row
                )
                tbl_base[owner], tbl_size[owner], tbl_pow2[owner] = row
            tbl_base[n_table], tbl_size[n_table], tbl_pow2[n_table] = (
                default_row
            )
        else:
            use_table = 0
            n_table = 0
            tbl_base = np.zeros(1, dtype=np.int64)
            tbl_size = np.ones(1, dtype=np.int64)
            tbl_pow2 = np.ones(1, dtype=np.uint8)

        dram = self.memory.config
        n_banks = dram.n_banks
        bank_free = self.memory._bank_free_at
        bank_arr = np.array(
            [bank_free.get(b, 0.0) for b in range(n_banks)], dtype=np.float64
        )

        flags = np.zeros(n_runs, dtype=np.uint8)
        l1_vo = np.zeros(n_runs, dtype=np.int64)
        l2_vo = np.zeros(n_runs, dtype=np.int64)
        counters = np.zeros(3, dtype=np.int64)

        p_i64 = ctypes.POINTER(ctypes.c_int64)
        p_i32 = ctypes.POINTER(ctypes.c_int32)
        p_u8 = ctypes.POINTER(ctypes.c_uint8)
        p_f64 = ctypes.POINTER(ctypes.c_double)

        def i64p(arr):
            return arr.ctypes.data_as(p_i64)

        walker.walk_batch(
            n_runs,
            i64p(line_arr), i64p(l1_idx_arr), i64p(l2_idx_arr),
            wany_u8.ctypes.data_as(p_u8), sf_arr.ctypes.data_as(p_u8),
            l1.geometry.ways,
            i64p(l1_lines), i64p(l1_owners),
            l1_dirty.ctypes.data_as(p_u8), l1_lens.ctypes.data_as(p_i32),
            l2.geometry.ways, 1 if l2.policy == "lru" else 0,
            i64p(l2_lines), i64p(l2_owners),
            l2_dirty.ctypes.data_as(p_u8), l2_lens.ctypes.data_as(p_i32),
            i64p(owners_arr),
            use_table, n_table,
            i64p(tbl_base), i64p(tbl_size), tbl_pow2.ctypes.data_as(p_u8),
            l2_mask,
            float(now), n_banks - 1, dram.bank_busy_cycles,
            bank_arr.ctypes.data_as(p_f64),
            flags.ctypes.data_as(p_u8), i64p(l1_vo), i64p(l2_vo),
            i64p(counters),
        )

        l1.import_state(l1_lines, l1_owners, l1_dirty, l1_lens)
        l2.import_state(l2_lines, l2_owners, l2_dirty, l2_lens)
        bank_values = bank_arr.tolist()
        for bank in range(n_banks):
            bank_free[bank] = bank_values[bank]

        l1_miss_mask = (flags & cwalker.FLAG_L1_MISS) != 0
        demand_miss_mask = (flags & cwalker.FLAG_L2_DEMAND_MISS) != 0
        l1_evict_mask = (flags & cwalker.FLAG_L1_EVICT) != 0
        l2_evict_mask = (flags & cwalker.FLAG_L2_EVICT) != 0
        l1_wb_mask = (flags & cwalker.FLAG_L1_WB) != 0
        l2_wb_mask = (flags & cwalker.FLAG_L2_WB) != 0

        # Cold-miss classification.  Per level, a run is cold exactly
        # when it is the batch's *first miss* of its line at that level
        # and the line is not in the level's seen-set -- only misses
        # mark a line seen, so this reproduces the reference
        # bookkeeping even across forget_history() epochs (where lines
        # can be resident yet unseen).  At the L2, the first missing
        # probe marks the line seen but counts as cold only when it is
        # a demand access, mirroring the store-fill cancellation.
        l2_probe_miss_mask = (flags & cwalker.FLAG_L2_PROBE_MISS) != 0
        cold1_runs, miss_lines1 = _first_misses(
            walker, line_arr, l1_miss_mask, l1._seen
        )
        cold2_candidates, miss_lines2 = _first_misses(
            walker, line_arr, l2_probe_miss_mask, l2._seen
        )
        cold2_runs = cold2_candidates[sf_arr[cold2_candidates] == 0]
        l1._seen.update(miss_lines1)
        l2._seen.update(miss_lines2)

        _flush_weighted_stats(
            l1.stats, owners_arr, count_arr,
            owners_arr[l1_miss_mask], owners_arr[cold1_runs],
            owners_arr[l1_evict_mask], l1_vo[l1_evict_mask],
            l1_vo[l1_wb_mask],
        )
        _flush_probe_stats(
            l2.stats,
            owners_arr[l1_miss_mask], owners_arr[demand_miss_mask],
            owners_arr[cold2_runs],
            owners_arr[l2_evict_mask], l2_vo[l2_evict_mask],
            l2_vo[l2_wb_mask],
        )

        l1_misses = int(np.count_nonzero(l1_miss_mask))
        store_fills = int(np.count_nonzero(sf_arr[l1_miss_mask]))
        dram_reads = int(np.count_nonzero(demand_miss_mask))
        dram_writes = int(counters[0])
        read_conflicts = int(counters[1])
        write_conflicts = int(counters[2])
        traffic = self.memory.traffic
        traffic.line_reads += dram_reads
        traffic.line_writes += dram_writes
        traffic.bank_conflicts += read_conflicts + write_conflicts

        result.l1_misses = l1_misses
        result.l2_accesses = l1_misses
        result.l2_misses = dram_reads
        result.store_fills = store_fills
        result.dram_lines = dram_reads + dram_writes
        stall = (
            (l1_misses - store_fills) * config.l2_hit_cycles
            + dram_reads * dram.access_cycles
            + read_conflicts * dram.bank_penalty_cycles
        )
        transfers = l1_misses + int(np.count_nonzero(l1_wb_mask))
        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(result.instructions * config.issue_cpi)
            + stall + bus_cycles
        )
        return result

    def _l2_store_fill(
        self,
        line: int,
        owner: int,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> None:
        """Install a fully written line in the L2 without fetching.

        Uses the normal allocation path (so evictions and their
        attribution happen as usual) but cancels the miss/DRAM-read
        accounting: a write-validated allocation transfers nothing from
        memory.
        """
        result.l2_accesses += 1
        if way_partitioned:
            cache = self.l2_way
            hit, cold, evicted = cache.access(
                line, line & l2_mask, True, owner, ways_of(owner)
            )
        else:
            cache = self.l2
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, cold, evicted = cache.access(line, index, True, owner)
        if not hit:
            # Not a demand miss: undo the miss counting of access().
            stats = cache.stats.owner(owner)
            stats.misses -= 1
            stats.hits += 1
            if cold:
                stats.cold_misses -= 1
        if evicted is not None and evicted[2]:
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1

    def _l2_access(
        self,
        line: int,
        owner: int,
        write: bool,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> bool:
        """One L2 probe; handles translation, way masks and writebacks."""
        result.l2_accesses += 1
        if way_partitioned:
            hit, _cold, evicted = self.l2_way.access(
                line, line & l2_mask, write, owner, ways_of(owner)
            )
        else:
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, _cold, evicted = self.l2.access(line, index, write, owner)
        if not hit:
            result.l2_misses += 1
        if evicted is not None and evicted[2]:
            # Dirty L2 victim goes to DRAM; traffic only, no CPU stall.
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1
        return hit


# -- fast-engine statistics flush -----------------------------------------
#
# The fast walker records outcomes as flat owner-id lists; these helpers
# reduce them to per-owner deltas in one vectorised pass.  The resulting
# OwnerStats values are identical to what the per-run reference
# accounting produces, because hit/miss/access counts are order-free sums.


def _bincount(owner_list, minlength=0) -> np.ndarray:
    """Per-owner occurrence counts of a flat owner-id list."""
    return np.bincount(
        np.asarray(owner_list, dtype=np.int64), minlength=minlength
    )


def _first_misses(walker, line_arr, miss_mask, seen):
    """Batch-first misses of not-yet-seen lines (C-path cold misses).

    Returns ``(cold_runs, missed_lines)``: the run indices whose miss
    is the line's first at this level *and* whose line is absent from
    ``seen`` (the reference marks a line seen at every miss, never at a
    hit), plus the distinct missed lines to add to the seen-set.
    """
    miss_runs = np.flatnonzero(miss_mask)
    n_misses = int(miss_runs.shape[0])
    if n_misses == 0:
        return miss_runs, []
    missed = line_arr[miss_runs]
    first_mask = np.zeros(n_misses, dtype=np.uint8)
    if walker.first_occurrence(
        missed.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)), n_misses,
        first_mask.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
    ):
        _, first_sub = np.unique(missed, return_index=True)
    else:
        first_sub = np.flatnonzero(first_mask)
    first_runs = miss_runs[first_sub]
    missed_lines = line_arr[first_runs].tolist()
    pre_seen = np.fromiter(
        (line in seen for line in missed_lines),
        dtype=bool, count=len(missed_lines),
    )
    return first_runs[~pre_seen], missed_lines


def _flush_events(stats, evictor_owners, victim_owners, wb_owners) -> None:
    """Apply eviction-attribution and writeback events to ``stats``.

    Events arrive as parallel evictor/victim owner lists; the
    ``(evictor, victim)`` matrix is aggregated by packing each pair into
    one integer key and running ``np.unique`` -- no per-event Python
    work.
    """
    if len(victim_owners):
        victims = np.asarray(victim_owners, dtype=np.int64)
        suffered = np.bincount(victims)
        for o in np.flatnonzero(suffered):
            stats.owner(int(o)).evictions_suffered += int(suffered[o])
        evictors = np.asarray(evictor_owners, dtype=np.int64)
        key_mod = int(victims.max()) + 1
        packed = evictors * key_mod + victims
        matrix = stats.eviction_matrix
        if int(evictors.max()) * key_mod < (1 << 22):
            # Dense owner ids (the normal case): bincount beats the
            # sort inside np.unique by an order of magnitude.
            counts = np.bincount(packed)
            for key in np.flatnonzero(counts):
                pair = (int(key) // key_mod, int(key) % key_mod)
                matrix[pair] = matrix.get(pair, 0) + int(counts[key])
        else:
            keys, counts = np.unique(packed, return_counts=True)
            for key, n in zip(keys.tolist(), counts.tolist()):
                pair = (key // key_mod, key % key_mod)
                matrix[pair] = matrix.get(pair, 0) + n
    if len(wb_owners):
        flushed = _bincount(wb_owners)
        for o in np.flatnonzero(flushed):
            stats.owner(int(o)).writebacks += int(flushed[o])


def _apply_owner_counts(stats, acc, miss_owners, cold_owners) -> None:
    """Fold per-owner access/miss/cold counts into ``stats``.

    ``hits`` is derived as ``accesses - misses`` -- exactly the
    reference model's ``hits += n`` / ``hits += n - 1`` bookkeeping,
    summed (only a run's first access can miss).
    """
    n_owners = len(acc)
    miss = _bincount(miss_owners, n_owners)
    cold = _bincount(cold_owners, n_owners)
    for o in np.flatnonzero(acc):
        owner_stats = stats.owner(int(o))
        a = int(acc[o])
        m = int(miss[o])
        owner_stats.accesses += a
        owner_stats.hits += a - m
        owner_stats.misses += m
        c = int(cold[o])
        if c:
            owner_stats.cold_misses += c


def _flush_weighted_stats(
    stats, owners_arr, count_arr, miss_owners, cold_owners,
    evictor_owners, victim_owners, wb_owners,
) -> None:
    """L1-style accounting: every run accesses with its full run length."""
    n_owners = int(owners_arr.max()) + 1
    acc = np.bincount(owners_arr, weights=count_arr, minlength=n_owners)
    _apply_owner_counts(stats, acc, miss_owners, cold_owners)
    _flush_events(stats, evictor_owners, victim_owners, wb_owners)


def _flush_probe_stats(
    stats, probe_owners, miss_owners, cold_owners,
    evictor_owners, victim_owners, wb_owners,
) -> None:
    """L2-style accounting: one single-access probe per L1-missing run.

    Store fills are probes that never count as demand misses (the
    reference path books then cancels the miss; the net effect is an
    access plus a hit, which is what omitting them from ``miss_owners``
    produces here).
    """
    if len(probe_owners):
        probes = np.asarray(probe_owners, dtype=np.int64)
        acc = np.bincount(probes, minlength=int(probes.max()) + 1)
        _apply_owner_counts(stats, acc, miss_owners, cold_owners)
    _flush_events(stats, evictor_owners, victim_owners, wb_owners)
