"""Multi-level memory hierarchy walker.

:class:`MemorySystem` ties together the per-CPU private L1 caches, the
shared (optionally partitioned) L2, the bus and DRAM, and prices a batch
of memory accesses in cycles:

``cycles = instructions x issue_cpi``
``        + L2 read accesses x l2_hit_cycles``
``        + L2 misses x DRAM latency``
``        + bus transfer + contention cycles``

Writebacks (dirty evictions) generate traffic but do not stall the CPU
-- the usual write-buffer simplification.  All per-owner hit/miss
accounting lives in the caches' :class:`~repro.mem.cache.CacheStats`.

The walker consumes *runs* (see :mod:`repro.mem.trace`): one cache probe
per run, with the run length counted as accesses.  L1 and L2 must share
a line size for the run semantics to be exact; the constructor enforces
this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.mem.bus import BusConfig, SharedBus
from repro.mem.cache import CacheGeometry, SetAssociativeCache, WayManagedCache
from repro.mem.memory import DramConfig, MainMemory
from repro.mem.partition import (
    OwnerResolver,
    PartitionMode,
    SetPartitionMap,
    WayPartitionMap,
)
from repro.mem.trace import AccessBatch

__all__ = ["BatchResult", "HierarchyConfig", "MemorySystem"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometries and timing of the whole memory system."""

    #: 8 KB 4-way private L1 (TriMedia-class data cache pressure: small
    #: enough that task working sets spill to the shared L2, which is
    #: where the paper's interference effect lives).
    l1_geometry: CacheGeometry = CacheGeometry(sets=32, ways=4, line_size=64)
    #: 512 KB 4-way shared L2 -- the paper's instance.
    l2_geometry: CacheGeometry = CacheGeometry(sets=2048, ways=4, line_size=64)
    #: Base cycles per instruction of the VLIW core (no memory stalls).
    issue_cpi: float = 0.55
    #: Stall cycles for an L2 hit (L1 miss served on-tile).
    l2_hit_cycles: int = 12
    dram: DramConfig = field(default_factory=DramConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    l2_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.l1_geometry.line_size != self.l2_geometry.line_size:
            raise ConfigurationError(
                "L1 and L2 must share a line size for run coalescing"
            )
        if self.issue_cpi <= 0:
            raise ConfigurationError("issue_cpi must be positive")
        if self.l2_hit_cycles < 0:
            raise ConfigurationError("l2_hit_cycles must be >= 0")


@dataclass
class BatchResult:
    """Cost and traffic of executing one access batch."""

    cycles: int = 0
    instructions: int = 0
    accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_lines: int = 0
    bus_cycles: int = 0
    store_fills: int = 0

    def merge(self, other: "BatchResult") -> None:
        """Accumulate another result into this one."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.accesses += other.accesses
        self.l1_misses += other.l1_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.dram_lines += other.dram_lines
        self.bus_cycles += other.bus_cycles
        self.store_fills += other.store_fills


class MemorySystem:
    """L1s + shared L2 + bus + DRAM for an ``n_cpus`` tile."""

    def __init__(
        self,
        n_cpus: int,
        config: HierarchyConfig,
        resolver: Optional[OwnerResolver] = None,
        mode: PartitionMode = PartitionMode.SHARED,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_cpus <= 0:
            raise ConfigurationError("n_cpus must be positive")
        self.n_cpus = n_cpus
        self.config = config
        self.mode = mode
        self.resolver = resolver if resolver is not None else OwnerResolver()
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1_geometry, name=f"l1.cpu{i}")
            for i in range(n_cpus)
        ]
        if mode is PartitionMode.WAY_PARTITIONED:
            self.l2_way = WayManagedCache(config.l2_geometry, name="l2")
            self.l2 = None
        else:
            self.l2 = SetAssociativeCache(
                config.l2_geometry, policy=config.l2_policy, name="l2", rng=rng
            )
            self.l2_way = None
        self.set_map = SetPartitionMap(config.l2_geometry.sets)
        self.way_map = WayPartitionMap(config.l2_geometry.ways)
        self.memory = MainMemory(config.dram)
        self.bus = SharedBus(config.bus, n_cpus=n_cpus)

    # -- configuration -----------------------------------------------------

    @property
    def l2_stats(self):
        """Per-owner stats of the L2 (whichever implementation is live)."""
        cache = self.l2 if self.l2 is not None else self.l2_way
        return cache.stats

    def reset_stats(self) -> None:
        """Zero all statistics without touching cache contents."""
        for l1 in self.l1s:
            l1.stats.reset()
        self.l2_stats.reset()
        self.memory.reset_traffic()
        self.bus.reset()

    # -- execution -----------------------------------------------------------

    def execute_batch(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """Run ``batch`` on ``cpu_id`` on behalf of ``task_owner``.

        Returns the :class:`BatchResult` with the cycle cost; caches,
        bus and DRAM state advance as side effects.
        """
        if not 0 <= cpu_id < self.n_cpus:
            raise MemoryModelError(f"cpu {cpu_id} out of range")
        config = self.config
        l1 = self.l1s[cpu_id]
        line_shift = config.l1_geometry.line_shift
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        resolve = self.resolver.resolve
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED
        way_partitioned = self.mode is PartitionMode.WAY_PARTITIONED
        translate = self.set_map.map_index
        ways_of = self.way_map.ways_of

        result = BatchResult(
            instructions=batch.instructions, accesses=batch.n_accesses
        )
        stall_cycles = 0.0
        transfers = 0
        # A write-only run touching at least this many spots filled the
        # whole line, so the allocation needs no fetch (write-validate).
        full_line_count = config.l1_geometry.line_size // 4

        line_addrs, counts, write_any, write_all = batch.runs(line_shift)
        for i in range(line_addrs.shape[0]):
            line = int(line_addrs[i])
            count = int(counts[i])
            write = bool(write_any[i])
            owner = resolve(line << line_shift, task_owner)

            l1_hit, _cold, l1_evicted = l1.access(
                line, line & l1_mask, write, owner, n=count
            )
            if l1_hit:
                continue
            result.l1_misses += 1
            transfers += 1

            # Dirty L1 victim is written back into the L2 first.  The
            # write-back is non-allocating: it updates the L2 copy when
            # present and otherwise goes straight to DRAM.
            if l1_evicted is not None and l1_evicted[2]:
                wb_line, wb_owner = l1_evicted[0], l1_evicted[1]
                if way_partitioned:
                    wb_hit = self.l2_way.probe_writeback(
                        wb_line, wb_line & l2_mask, wb_owner
                    )
                else:
                    wb_index = (
                        translate(wb_owner, wb_line)
                        if set_partitioned
                        else wb_line & l2_mask
                    )
                    wb_hit = self.l2.probe_writeback(wb_line, wb_index, wb_owner)
                if not wb_hit:
                    self.memory.access(wb_line, True, now)
                    result.dram_lines += 1
                transfers += 1

            # Full-line streaming stores allocate without a DRAM fetch
            # (write-validate).  The line is installed dirty in the L2
            # as well -- the L2 is the tile's communication point, so a
            # consumer on another CPU finds the producer's data there.
            # The allocation counts as an access but not as a miss.
            if bool(write_all[i]) and count >= full_line_count:
                result.store_fills += 1
                self._l2_store_fill(
                    line, owner, l2_mask, set_partitioned, way_partitioned,
                    translate, ways_of, now, result,
                )
                continue

            # The demand fill.
            l2_hit = self._l2_access(
                line,
                owner,
                write,
                l2_mask,
                set_partitioned,
                way_partitioned,
                translate,
                ways_of,
                now,
                result,
            )
            stall_cycles += config.l2_hit_cycles
            if not l2_hit:
                stall_cycles += self.memory.access(line, False, now)
                result.dram_lines += 1

        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(batch.instructions * config.issue_cpi)
            + int(stall_cycles)
            + bus_cycles
        )
        return result

    def _l2_store_fill(
        self,
        line: int,
        owner: int,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> None:
        """Install a fully written line in the L2 without fetching.

        Uses the normal allocation path (so evictions and their
        attribution happen as usual) but cancels the miss/DRAM-read
        accounting: a write-validated allocation transfers nothing from
        memory.
        """
        result.l2_accesses += 1
        if way_partitioned:
            cache = self.l2_way
            hit, cold, evicted = cache.access(
                line, line & l2_mask, True, owner, ways_of(owner)
            )
        else:
            cache = self.l2
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, cold, evicted = cache.access(line, index, True, owner)
        if not hit:
            # Not a demand miss: undo the miss counting of access().
            stats = cache.stats.owner(owner)
            stats.misses -= 1
            stats.hits += 1
            if cold:
                stats.cold_misses -= 1
        if evicted is not None and evicted[2]:
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1

    def _l2_access(
        self,
        line: int,
        owner: int,
        write: bool,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> bool:
        """One L2 probe; handles translation, way masks and writebacks."""
        result.l2_accesses += 1
        if way_partitioned:
            hit, _cold, evicted = self.l2_way.access(
                line, line & l2_mask, write, owner, ways_of(owner)
            )
        else:
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, _cold, evicted = self.l2.access(line, index, write, owner)
        if not hit:
            result.l2_misses += 1
        if evicted is not None and evicted[2]:
            # Dirty L2 victim goes to DRAM; traffic only, no CPU stall.
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1
        return hit
