"""Multi-level memory hierarchy walker.

:class:`MemorySystem` ties together the per-CPU private L1 caches, the
shared (optionally partitioned) L2, the bus and DRAM, and prices a batch
of memory accesses in cycles:

``cycles = instructions x issue_cpi``
``        + L2 read accesses x l2_hit_cycles``
``        + L2 misses x DRAM latency``
``        + bus transfer + contention cycles``

Writebacks (dirty evictions) generate traffic but do not stall the CPU
-- the usual write-buffer simplification.  All per-owner hit/miss
accounting lives in the caches' :class:`~repro.mem.cache.CacheStats`.

The walker consumes *runs* (see :mod:`repro.mem.trace`): one cache probe
per run, with the run length counted as accesses.  L1 and L2 must share
a line size for the run semantics to be exact; the constructor enforces
this.

Three engines implement the walk:

- ``engine="reference"`` -- one method call per run into the cache
  models.  Slow but obviously faithful; it is the differential-testing
  oracle.
- ``engine="fast"`` (the default) -- vectorises everything that does
  not depend on cache state (owner resolution, L1/L2 set indices, the
  run decomposition itself), walks the runs with the cache and DRAM
  state inlined as local dicts/lists, and defers all per-owner
  statistics to a batched ``bincount`` flush after the walk.  Pure
  L1-hit runs cost a single dict probe; only L1-miss runs enter the
  larger slow path.  Batches above :data:`_C_WALK_THRESHOLD` runs go
  through the stateless C kernel, which marshals the full cache state
  per call.
- ``engine="compiled"`` -- the schedule-compiled tier.  A persistent
  C-side state handle (:class:`_CompiledState`) keeps every L1, the
  shared L2 (including the way-partitioned column cache), the DRAM
  bank timers and the bus demand model resident between calls, so
  batches of *any* size run in C, and :meth:`MemorySystem.
  execute_segment` prices a whole ordered schedule segment --
  ``(cpu, owner, batch)`` entries plus delays and context-switch
  traffic -- in a single C call.  Degrades to ``fast`` when no C
  compiler is available.

All engines produce bit-identical statistics, which the differential
test suite asserts.  The fast and compiled engines silently fall back
for the rare configurations they do not specialise: a ``random`` L2
stays in the Python fast walker (which replays the reference RNG
stream draw for draw), and a negative owner id degrades the system to
the reference walk for good -- the owner registry never produces one,
and once such lines are resident their evictions would poison the
vectorised statistics flush.
"""

from __future__ import annotations

import ctypes
import gc
import math

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryModelError
from repro.mem import cwalker
from repro.mem.bus import BusConfig, SharedBus
from repro.mem.cache import CacheGeometry, SetAssociativeCache, WayManagedCache
from repro.mem.memory import DramConfig, MainMemory
from repro.mem.partition import (
    OwnerResolver,
    PartitionMode,
    SetPartitionMap,
    WayPartitionMap,
)
from repro.mem.trace import AccessBatch

__all__ = ["BatchResult", "HierarchyConfig", "MemorySystem", "SegmentEntry"]

#: Below this many runs the per-batch cache-state marshalling of the C
#: walker costs more than the Python walk it saves.
_C_WALK_THRESHOLD = 4096

#: Shared empty owner list for the no-event stats flush.
_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometries and timing of the whole memory system."""

    #: 8 KB 4-way private L1 (TriMedia-class data cache pressure: small
    #: enough that task working sets spill to the shared L2, which is
    #: where the paper's interference effect lives).
    l1_geometry: CacheGeometry = CacheGeometry(sets=32, ways=4, line_size=64)
    #: 512 KB 4-way shared L2 -- the paper's instance.
    l2_geometry: CacheGeometry = CacheGeometry(sets=2048, ways=4, line_size=64)
    #: Base cycles per instruction of the VLIW core (no memory stalls).
    issue_cpi: float = 0.55
    #: Stall cycles for an L2 hit (L1 miss served on-tile).
    l2_hit_cycles: int = 12
    dram: DramConfig = field(default_factory=DramConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    l2_policy: str = "lru"
    #: ``"fast"`` (vectorised walker, the default), ``"reference"``
    #: (per-run method calls; the differential-testing oracle) or
    #: ``"compiled"`` (persistent C state + whole-segment batches; see
    #: the module docstring).
    engine: str = "fast"

    ENGINES = ("reference", "fast", "compiled")

    def __post_init__(self) -> None:
        if self.l1_geometry.line_size != self.l2_geometry.line_size:
            raise ConfigurationError(
                "L1 and L2 must share a line size for run coalescing"
            )
        if self.issue_cpi <= 0:
            raise ConfigurationError("issue_cpi must be positive")
        if self.l2_hit_cycles < 0:
            raise ConfigurationError("l2_hit_cycles must be >= 0")
        if self.engine not in self.ENGINES:
            raise ConfigurationError(
                f"engine must be one of {', '.join(self.ENGINES)}, "
                f"got {self.engine!r}"
            )


@dataclass
class BatchResult:
    """Cost and traffic of executing one access batch."""

    cycles: int = 0
    instructions: int = 0
    accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_lines: int = 0
    bus_cycles: int = 0
    store_fills: int = 0

    def merge(self, other: "BatchResult") -> None:
        """Accumulate another result into this one."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.accesses += other.accesses
        self.l1_misses += other.l1_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.dram_lines += other.dram_lines
        self.bus_cycles += other.bus_cycles
        self.store_fills += other.store_fills


class SegmentEntry:
    """One step of a schedule segment (see :meth:`MemorySystem.execute_segment`).

    A segment is an *ordered* sequence of deterministic schedule steps:
    compute batches, pure delays, and context-switch traffic.  Each
    entry advances a local clock -- compute entries by their computed
    cycle cost, delay and switch entries by a fixed ``advance`` -- so a
    whole stretch of a CPU's schedule prices in one call with the same
    per-step timestamps the event-driven loop would produce.
    """

    COMPUTE = cwalker.ENTRY_COMPUTE
    DELAY = cwalker.ENTRY_DELAY
    SWITCH = cwalker.ENTRY_SWITCH

    __slots__ = ("kind", "cpu_id", "owner", "batch", "advance")

    def __init__(self, kind, cpu_id=0, owner=0, batch=None, advance=0):
        self.kind = kind
        self.cpu_id = cpu_id
        self.owner = owner
        self.batch = batch
        self.advance = advance

    @classmethod
    def compute(cls, cpu_id: int, owner: int, batch: AccessBatch):
        """A compute batch; the clock advances by its cycle cost."""
        return cls(cls.COMPUTE, cpu_id=cpu_id, owner=owner, batch=batch)

    @classmethod
    def delay(cls, cycles: int):
        """A pure delay: no memory traffic, fixed clock advance."""
        return cls(cls.DELAY, advance=cycles)

    @classmethod
    def switch(cls, cpu_id: int, owner: int, batch: AccessBatch,
               cycles: int):
        """Context-switch traffic: the TCB batch walks (caches, bus and
        DRAM advance) but the clock moves by the RTOS's fixed switch
        cost and the quantum is not charged -- the dispatch path of the
        CPU runner."""
        return cls(cls.SWITCH, cpu_id=cpu_id, owner=owner, batch=batch,
                   advance=cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = {self.COMPUTE: "compute", self.DELAY: "delay",
                 self.SWITCH: "switch"}
        return (
            f"<SegmentEntry {names[self.kind]} cpu={self.cpu_id} "
            f"owner={self.owner} advance={self.advance}>"
        )


class _CompiledState:
    """Persistent C-side state of one :class:`MemorySystem`.

    Owns the numpy arrays the C handle points into (cache contents of
    every level, DRAM bank timers, bus demand/totals) and the opaque
    ``walker_state`` capsule built over them.  Between calls the arrays
    *are* the authoritative cache state; :meth:`sync_down` materialises
    them back into the Python cache models when something needs the
    dict/list view (repartitioning, tests, diagnostics).  Per-owner
    statistics stay on the Python side -- the segment walk emits
    per-run flags that :meth:`MemorySystem.execute_segment` reduces
    with the same bincount flush the fast engine uses.
    """

    def __init__(self, mem: "MemorySystem", walker):
        self.walker = walker
        config = mem.config
        n_cpus = mem.n_cpus
        l1_geometry = config.l1_geometry
        l2_geometry = config.l2_geometry
        self.l1_sets = l1_geometry.sets
        self.l1_ways = l1_geometry.ways

        l1_parts = [l1.export_state() for l1 in mem.l1s]
        self.l1_lines = np.concatenate([p[0] for p in l1_parts])
        self.l1_owners = np.concatenate([p[1] for p in l1_parts])
        self.l1_dirty = np.concatenate([p[2] for p in l1_parts])
        self.l1_len = np.concatenate([p[3] for p in l1_parts])

        if mem.l2 is not None:
            lines, owners, dirty, lens = mem.l2.export_state()
            stamps = np.zeros(1, dtype=np.int64)
            clock = 0
            mode = (
                cwalker.L2_MODE_LRU if mem.l2.policy == "lru"
                else cwalker.L2_MODE_FIFO
            )
        else:
            lines, owners, dirty, stamps, clock = mem.l2_way.export_state()
            lens = np.zeros(l2_geometry.sets, dtype=np.int32)
            mode = cwalker.L2_MODE_WAY
        self.l2_mode = mode
        self.l2_lines = lines
        self.l2_owners = owners
        self.l2_dirty = dirty
        self.l2_len = lens
        self.l2_stamp = stamps
        self.way_clock = np.array([clock], dtype=np.int64)

        dram = config.dram
        bank_free = mem.memory._bank_free_at
        self.bank_free = np.array(
            [bank_free.get(b, 0.0) for b in range(dram.n_banks)],
            dtype=np.float64,
        )

        bus = mem.bus
        self.bus_demand = np.array(
            [bus._demand[c] for c in range(n_cpus)], dtype=np.float64
        )
        self.bus_last = np.array(
            [bus._last_update[c] for c in range(n_cpus)], dtype=np.float64
        )
        self.bus_transfers = np.array([bus.total_transfers], dtype=np.int64)
        self.bus_surcharge = np.array(
            [bus.total_surcharge_cycles], dtype=np.float64
        )

        handle = walker.state_new(
            n_cpus,
            l1_geometry.sets, l1_geometry.ways,
            self.l1_lines.ctypes.data, self.l1_owners.ctypes.data,
            self.l1_dirty.ctypes.data, self.l1_len.ctypes.data,
            l2_geometry.sets, l2_geometry.ways, mode,
            self.l2_lines.ctypes.data, self.l2_owners.ctypes.data,
            self.l2_dirty.ctypes.data, self.l2_len.ctypes.data,
            self.l2_stamp.ctypes.data, self.way_clock.ctypes.data,
            dram.n_banks - 1, dram.bank_busy_cycles,
            dram.access_cycles, dram.bank_penalty_cycles,
            self.bank_free.ctypes.data,
            config.bus.transfer_cycles, config.bus.lines_per_cycle,
            config.bus.decay_cycles, config.bus.max_surcharge,
            self.bus_demand.ctypes.data, self.bus_last.ctypes.data,
            self.bus_transfers.ctypes.data, self.bus_surcharge.ctypes.data,
            config.issue_cpi, config.l2_hit_cycles,
        )
        if not handle:
            raise MemoryError("walker_state_new failed")
        self.handle = ctypes.c_void_p(handle)

        # Reusable per-call scratch (the segment walker runs per
        # schedule step; allocating outputs per call dominates small
        # segments).  Flags/victim slots need no zeroing between calls:
        # the C walker assigns them for every executed run, and the
        # flush only reads up to the last executed run.
        self._entry_capacity = 0
        self._run_capacity = 0
        self._entry_scratch: tuple = ()
        self._run_scratch: tuple = ()
        self.counters = np.zeros(3, dtype=np.int64)
        self._no_table = (
            np.zeros(1, dtype=np.int64),
            np.ones(1, dtype=np.int64),
            np.ones(1, dtype=np.uint8),
        )

    def entry_scratch(self, n: int) -> tuple:
        """Twelve per-entry int64 arrays (plus their raw addresses)."""
        if n > self._entry_capacity or not self._entry_scratch:
            self._entry_capacity = max(2 * n, 64)
            arrays = tuple(
                np.zeros(self._entry_capacity, dtype=np.int64)
                for _ in range(12)
            )
            self._entry_scratch = (
                arrays, tuple(a.ctypes.data for a in arrays)
            )
        return self._entry_scratch

    def run_scratch(self, n: int) -> tuple:
        """Per-run ``(flags, l1_victim, l2_victim)`` plus addresses."""
        if n > self._run_capacity or not self._run_scratch:
            self._run_capacity = max(2 * n, 4096)
            arrays = (
                np.zeros(self._run_capacity, dtype=np.uint8),
                np.zeros(self._run_capacity, dtype=np.int64),
                np.zeros(self._run_capacity, dtype=np.int64),
            )
            self._run_scratch = (
                arrays, tuple(a.ctypes.data for a in arrays)
            )
        return self._run_scratch

    def sync_down(self, mem: "MemorySystem") -> None:
        """Write the C-resident state back into the Python models."""
        span = self.l1_sets * self.l1_ways
        for i, l1 in enumerate(mem.l1s):
            l1.import_state(
                self.l1_lines[i * span:(i + 1) * span],
                self.l1_owners[i * span:(i + 1) * span],
                self.l1_dirty[i * span:(i + 1) * span],
                self.l1_len[i * self.l1_sets:(i + 1) * self.l1_sets],
            )
        if mem.l2 is not None:
            mem.l2.import_state(
                self.l2_lines, self.l2_owners, self.l2_dirty, self.l2_len
            )
        else:
            mem.l2_way.import_state(
                self.l2_lines, self.l2_owners, self.l2_dirty,
                self.l2_stamp, int(self.way_clock[0]),
            )
        bank_free = mem.memory._bank_free_at
        for bank, value in enumerate(self.bank_free.tolist()):
            bank_free[bank] = value
        bus = mem.bus
        demand = self.bus_demand.tolist()
        last = self.bus_last.tolist()
        for cpu in range(mem.n_cpus):
            bus._demand[cpu] = demand[cpu]
            bus._last_update[cpu] = last[cpu]
        bus.total_transfers = int(self.bus_transfers[0])
        bus.total_surcharge_cycles = float(self.bus_surcharge[0])

    def close(self) -> None:
        """Free the C capsule (idempotent)."""
        handle, self.handle = getattr(self, "handle", None), None
        if handle:
            try:
                self.walker.state_free(handle)
            except Exception:  # pragma: no cover - interpreter teardown
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.close()


class MemorySystem:
    """L1s + shared L2 + bus + DRAM for an ``n_cpus`` tile."""

    #: Minimum batch size (in runs) for the compiled walker; overridable
    #: per instance (tests pin it to force or forbid the C path).
    c_walk_threshold = _C_WALK_THRESHOLD

    def __init__(
        self,
        n_cpus: int,
        config: HierarchyConfig,
        resolver: Optional[OwnerResolver] = None,
        mode: PartitionMode = PartitionMode.SHARED,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_cpus <= 0:
            raise ConfigurationError("n_cpus must be positive")
        self.n_cpus = n_cpus
        self.config = config
        self.mode = mode
        self.resolver = resolver if resolver is not None else OwnerResolver()
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1_geometry, name=f"l1.cpu{i}")
            for i in range(n_cpus)
        ]
        if mode is PartitionMode.WAY_PARTITIONED:
            self.l2_way = WayManagedCache(config.l2_geometry, name="l2")
            self.l2 = None
        else:
            self.l2 = SetAssociativeCache(
                config.l2_geometry, policy=config.l2_policy, name="l2", rng=rng
            )
            self.l2_way = None
        self.set_map = SetPartitionMap(config.l2_geometry.sets)
        self.way_map = WayPartitionMap(config.l2_geometry.ways)
        self.memory = MainMemory(config.dram)
        self.bus = SharedBus(config.bus, n_cpus=n_cpus)
        # The fast walker inlines victim selection for every policy
        # (random replays the reference RNG stream); "compiled" runs the
        # same walk when its C tier is unavailable.
        self._fast = config.engine in ("fast", "compiled")
        #: Lazily built persistent C state (engine="compiled" only).
        self._compiled: Optional[_CompiledState] = None
        self._compiled_wanted = config.engine == "compiled"
        self._compiled_failed = False
        #: (version, table) memo of the dense set-translation table.
        self._set_table_memo: Optional[tuple] = None
        #: (version, table) memo of the way-allocation table.
        self._way_table_memo: Optional[tuple] = None

    # -- configuration -----------------------------------------------------

    @property
    def l2_stats(self):
        """Per-owner stats of the L2 (whichever implementation is live)."""
        cache = self.l2 if self.l2 is not None else self.l2_way
        return cache.stats

    def reset_stats(self) -> None:
        """Zero all statistics without touching cache contents."""
        self.sync_state()
        for l1 in self.l1s:
            l1.stats.reset()
        self.l2_stats.reset()
        self.memory.reset_traffic()
        self.bus.reset()
        self._drop_compiled()

    def repartition(self, now: float = 0.0) -> int:
        """Flush and invalidate every cache level; returns the writebacks.

        The OS must call this before reprogramming the partition maps:
        index translation moves lines between sets, so stale residents
        would alias, and silently dropping dirty lines would lose DRAM
        traffic.  Every dirty victim is written back to DRAM (traffic
        only -- reprogramming is not on the CPUs' critical path).
        """
        self.sync_state()
        self._drop_compiled()
        flushed = 0
        caches = list(self.l1s)
        caches.append(self.l2 if self.l2 is not None else self.l2_way)
        for cache in caches:
            for line, _owner in cache.invalidate_all():
                self.memory.access(line, True, now)
                flushed += 1
        return flushed

    def quiesce(self) -> None:
        """Prepare for a Python-side map/state mutation.

        Syncs compiled-tier state down into the Python models and drops
        the C handle, so the mutation starts from (and the next
        compiled call re-exports) an up-to-date view.  Idempotent, and
        a no-op on the pure-Python engines.  Every map-mutating path in
        :class:`~repro.rtos.cachectl.CacheController` calls this: a
        partition change against a *stale* Python view would silently
        diverge the compiled engine from the reference.
        """
        self.sync_state()
        self._drop_compiled()

    def repartition_owners(self, owners, now: float = 0.0) -> int:
        """Selectively flush+invalidate the given owner ids; returns writebacks.

        The online-transition replan path uses this instead of
        :meth:`repartition`: only the owners whose partitions move (a
        departing group, a reshaped allocation) lose their residency --
        survivors keep their cache contents, which is what makes a
        transition invisible to them.  Dirty victims are written back
        to DRAM in deterministic (level, owner, address) order.
        """
        self.quiesce()
        flushed = 0
        caches = list(self.l1s)
        caches.append(self.l2 if self.l2 is not None else self.l2_way)
        for cache in caches:
            for owner in sorted(set(owners)):
                for line in cache.invalidate_owner(owner):
                    self.memory.access(line, True, now)
                    flushed += 1
        return flushed

    # -- compiled-tier state management ------------------------------------

    def sync_state(self) -> None:
        """Materialise C-resident state back into the Python models.

        A no-op unless the compiled tier is live.  Cache contents, DRAM
        bank timers and bus demand live C-side between compiled calls;
        anything that wants the Python dict/list view (repartitioning,
        direct cache inspection, the differential tests) calls this
        first.  Idempotent -- the arrays stay authoritative and further
        compiled calls continue from them.
        """
        if self._compiled is not None:
            self._compiled.sync_down(self)

    def _drop_compiled(self) -> None:
        """Invalidate the C handle after a Python-side state mutation.

        The next compiled call re-exports the (mutated) Python state.
        Callers must :meth:`sync_state` *before* mutating, or the
        mutation would start from a stale view.
        """
        if self._compiled is not None:
            self._compiled.close()
            self._compiled = None

    def _compiled_state(self) -> Optional[_CompiledState]:
        """The live persistent C state, (re)built on demand.

        ``None`` when the engine is not "compiled", no C toolchain is
        available, or the L2 policy is ``random`` (the RNG replay stays
        in the Python fast walker).
        """
        if not self._compiled_wanted or self._compiled_failed:
            return None
        if self.l2 is not None and self.l2.policy == "random":
            return None
        if self._compiled is None:
            walker = cwalker.load()
            if walker is None:
                self._compiled_failed = True
                return None
            try:
                self._compiled = _CompiledState(self, walker)
            except MemoryError:
                self._compiled_failed = True
                return None
        return self._compiled

    @property
    def segment_ready(self) -> bool:
        """Whether :meth:`execute_segment` runs through the C tier.

        The schedule collector in :mod:`repro.cake.processor` gates on
        this: with the compiled tier down, the per-op event loop is not
        slower than the Python fallback segment walk.
        """
        return self._compiled_wanted and self._compiled_state() is not None

    def _set_translation_table(self):
        """Dense owner -> set-group table for the C walkers (memoized).

        Row layout matches ``_walker.c``: rows ``0..n_table-1`` are the
        per-owner effective partitions (default mapping where none),
        row ``n_table`` is the default mapping itself; owners beyond
        the table use the default row, which is correct because every
        partitioned or aliased owner is covered by construction.
        """
        version = self.set_map.version
        if self._set_table_memo is not None \
                and self._set_table_memo[0] == version:
            return self._set_table_memo[1]
        covered = set(self.set_map._partitions) | set(self.set_map._aliases)
        n_table = (max(covered) + 1) if covered else 0
        pool = self.set_map.default_pool
        if pool is not None:
            default_row = (pool.base, pool.n_sets, pool.is_power_of_two)
        else:
            default_row = (0, self.config.l2_geometry.sets, True)
        tbl_base = np.empty(n_table + 1, dtype=np.int64)
        tbl_size = np.empty(n_table + 1, dtype=np.int64)
        tbl_pow2 = np.empty(n_table + 1, dtype=np.uint8)
        for owner in range(n_table):
            partition = self.set_map.effective_partition(owner)
            row = (
                (partition.base, partition.n_sets, partition.is_power_of_two)
                if partition is not None else default_row
            )
            tbl_base[owner], tbl_size[owner], tbl_pow2[owner] = row
        tbl_base[n_table], tbl_size[n_table], tbl_pow2[n_table] = default_row
        table = (n_table, tbl_base, tbl_size, tbl_pow2)
        self._set_table_memo = (version, table)
        return table

    def _way_allocation_table(self):
        """Dense owner -> allocation-way table for the C walker (memoized).

        ``way_rows + 1`` rows of ``l2_ways`` slots, -1 padded, in the
        owner's allocation-preference order; the last row (and every
        uncovered owner) gets all ways -- the unpartitioned default.
        """
        version = self.way_map._version
        if self._way_table_memo is not None \
                and self._way_table_memo[0] == version:
            return self._way_table_memo[1]
        ways = self.config.l2_geometry.ways
        assigned = self.way_map._ways_of
        way_rows = (max(assigned) + 1) if assigned else 0
        table = np.full((way_rows + 1) * ways, -1, dtype=np.int64)
        for owner in range(way_rows + 1):
            row = self.way_map.ways_of(owner) if owner < way_rows \
                else tuple(range(ways))
            for k, way in enumerate(row):
                table[owner * ways + k] = way
        result = (way_rows, table)
        self._way_table_memo = (version, result)
        return result

    # -- execution -----------------------------------------------------------

    def execute_batch(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """Run ``batch`` on ``cpu_id`` on behalf of ``task_owner``.

        Returns the :class:`BatchResult` with the cycle cost; caches,
        bus and DRAM state advance as side effects.  Dispatches to the
        engine selected by :attr:`HierarchyConfig.engine`.
        """
        if not 0 <= cpu_id < self.n_cpus:
            raise MemoryModelError(f"cpu {cpu_id} out of range")
        if self._compiled_wanted:
            outcome = self._execute_segment_compiled(
                [SegmentEntry.compute(cpu_id, task_owner, batch)],
                now, math.inf, 0, False,
            )
            if outcome is not None:
                return outcome[1][0]
        if self._fast:
            return self._execute_batch_fast(cpu_id, task_owner, batch, now)
        return self._execute_batch_reference(cpu_id, task_owner, batch, now)

    def execute_segment(
        self,
        entries: Sequence[SegmentEntry],
        now: float,
        horizon: float = math.inf,
        quantum: int = 0,
        use_quantum: bool = False,
    ) -> Tuple[int, List[Optional[BatchResult]], int]:
        """Price an ordered schedule segment; returns what completed.

        ``entries`` execute strictly in order against the shared state,
        each at the simulated time the previous entries produced --
        compute entries advance the clock by their computed cycle cost,
        delay/switch entries by their fixed ``advance``.  Execution
        stops early (before starting entry ``k >= 1``; the first entry
        always runs) when

        - any simulated time has elapsed and the clock reached
          ``horizon`` -- the earliest foreign simulation event, whose
          interleaving must be preserved, or
        - ``use_quantum`` is set and the accumulated compute/delay
          cycles exhausted ``quantum`` -- the round-robin preemption
          point.

        Returns ``(n_done, results, elapsed)``: how many entries ran,
        one :class:`BatchResult` per completed batch entry (``None``
        for delays), and the total simulated cycles consumed.  Runs
        through the persistent C tier when live, else through a
        sequential :meth:`execute_batch` walk with identical semantics
        -- the engines are differentially tested against each other.
        """
        if not entries:
            return 0, [], 0
        outcome = self._execute_segment_compiled(
            entries, now, horizon, quantum, use_quantum
        )
        if outcome is not None:
            return outcome
        return self._execute_segment_fallback(
            entries, now, horizon, quantum, use_quantum
        )

    def _execute_segment_fallback(
        self, entries, now, horizon, quantum, use_quantum
    ):
        """Segment semantics over per-batch execute_batch calls."""
        results: List[Optional[BatchResult]] = []
        elapsed = 0
        done = 0
        for index, entry in enumerate(entries):
            if index > 0:
                if elapsed > 0 and now >= horizon:
                    break
                if use_quantum and quantum <= 0:
                    break
            if entry.kind == SegmentEntry.DELAY:
                cycles = advance = entry.advance
                results.append(None)
            elif entry.batch is None:
                # A switch without TCB traffic: fixed advance only.
                cycles = 0
                advance = entry.advance
                results.append(None)
            else:
                result = self.execute_batch(
                    entry.cpu_id, entry.owner, entry.batch, now
                )
                results.append(result)
                cycles = result.cycles
                advance = (
                    entry.advance if entry.kind == SegmentEntry.SWITCH
                    else cycles
                )
            now += advance
            elapsed += advance
            if entry.kind != SegmentEntry.SWITCH:
                quantum -= cycles
            done += 1
        return done, results, elapsed

    def _execute_segment_compiled(
        self, entries, now, horizon, quantum, use_quantum
    ):
        """One C call over the whole segment; ``None`` when unsupported.

        Unsupported means: the compiled tier is down (engine, compiler,
        random L2) or the segment resolves a negative owner id (the
        registry never produces one; the oracle path handles it).
        """
        state = self._compiled_state()
        if state is None or not entries:
            return None
        config = self.config
        line_shift = config.l1_geometry.line_shift
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        full_line_count = config.l1_geometry.line_size // 4
        way_partitioned = self.mode is PartitionMode.WAY_PARTITIONED
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED

        n_entries = len(entries)
        entry_arrays, entry_ptrs = state.entry_scratch(n_entries)
        (kinds, cpus, starts, ends, instrs, advances,
         out_cycles, out_l1_misses, out_l2_misses,
         out_dram_lines, out_bus, out_sf) = entry_arrays

        line_parts = []
        count_parts = []
        wany_parts = []
        sf_parts = []
        owner_parts = []
        l2_idx_parts = []
        position = 0
        for index, entry in enumerate(entries):
            kinds[index] = entry.kind
            cpus[index] = entry.cpu_id
            advances[index] = entry.advance
            starts[index] = ends[index] = position
            instrs[index] = 0
            if entry.batch is None:
                continue
            instrs[index] = entry.batch.instructions
            line_arr, count_arr, wany_arr, wall_arr = entry.batch.runs(
                line_shift
            )
            n_runs = int(line_arr.shape[0])
            if n_runs == 0:
                continue
            ends[index] = position + n_runs
            position += n_runs
            owners_arr = self.resolver.resolve_many(
                line_arr << line_shift, entry.owner
            )
            line_parts.append(line_arr)
            count_parts.append(count_arr)
            wany_parts.append(wany_arr)
            sf_parts.append(wall_arr & (count_arr >= full_line_count))
            owner_parts.append(owners_arr)
            if set_partitioned:
                l2_idx_parts.append(
                    self.set_map.map_index_many(owners_arr, line_arr)
                )

        if position:
            if len(line_parts) == 1:
                lines_arr = line_parts[0]
                counts_arr = count_parts[0]
                # numpy bools are one byte: reinterpret, do not copy.
                wany_u8 = wany_parts[0].view(np.uint8)
                sf_u8 = sf_parts[0].view(np.uint8)
                owners_arr = owner_parts[0]
            else:
                lines_arr = np.concatenate(line_parts)
                counts_arr = np.concatenate(count_parts)
                wany_u8 = np.concatenate(wany_parts).view(np.uint8)
                sf_u8 = np.concatenate(sf_parts).view(np.uint8)
                owners_arr = np.concatenate(owner_parts)
            if int(owners_arr.min()) < 0:
                # Negative owner ids take the oracle path -- stickily,
                # because once such lines are resident any eviction
                # would feed their owner into the vectorised flush.
                # Hand the authoritative state back to the Python
                # models first, otherwise the fallback would walk a
                # stale view and its mutations would never reach the C
                # arrays.
                self.sync_state()
                self._drop_compiled()
                self._compiled_failed = True
                self._fast = False
                return None
            l1_idx_arr = lines_arr & l1_mask
            if set_partitioned:
                l2_idx_arr = np.ascontiguousarray(
                    l2_idx_parts[0] if len(l2_idx_parts) == 1
                    else np.concatenate(l2_idx_parts),
                    dtype=np.int64,
                )
            else:
                l2_idx_arr = lines_arr & l2_mask
        else:
            lines_arr = counts_arr = owners_arr = state._no_table[0]
            l1_idx_arr = l2_idx_arr = state._no_table[0]
            wany_u8 = sf_u8 = state._no_table[2]

        if set_partitioned:
            use_table = 1
            n_table, tbl_base, tbl_size, tbl_pow2 = \
                self._set_translation_table()
        else:
            use_table = 0
            n_table = 0
            tbl_base, tbl_size, tbl_pow2 = state._no_table
        if way_partitioned:
            way_rows, way_table = self._way_allocation_table()
        else:
            way_rows = 0
            way_table = state._no_table[0]

        run_arrays, run_ptrs = state.run_scratch(position)
        flags, l1_vo, l2_vo = run_arrays
        counters = state.counters

        n_done = int(state.walker.walk_segment(
            state.handle, n_entries,
            entry_ptrs[0], entry_ptrs[1], entry_ptrs[2], entry_ptrs[3],
            entry_ptrs[4], entry_ptrs[5],
            lines_arr.ctypes.data, l1_idx_arr.ctypes.data,
            l2_idx_arr.ctypes.data,
            wany_u8.ctypes.data, sf_u8.ctypes.data, owners_arr.ctypes.data,
            use_table, n_table,
            tbl_base.ctypes.data, tbl_size.ctypes.data, tbl_pow2.ctypes.data,
            way_table.ctypes.data, way_rows,
            float(now),
            horizon if horizon != math.inf else 1e308,
            int(quantum), 1 if use_quantum else 0,
            run_ptrs[0], run_ptrs[1], run_ptrs[2],
            entry_ptrs[6], entry_ptrs[7], entry_ptrs[8],
            entry_ptrs[9], entry_ptrs[10], entry_ptrs[11],
            state.counters.ctypes.data,
        ))

        self._flush_segment_stats(
            entries, n_done, ends, cpus,
            lines_arr, counts_arr, owners_arr, sf_u8,
            flags, l1_vo, l2_vo,
            out_l2_misses, counters, state,
        )

        results: List[Optional[BatchResult]] = []
        elapsed = 0
        for index in range(n_done):
            entry = entries[index]
            if entry.kind == SegmentEntry.DELAY or entry.batch is None:
                results.append(None)
                elapsed += entry.advance
                continue
            results.append(BatchResult(
                cycles=int(out_cycles[index]),
                instructions=int(instrs[index]),
                accesses=entry.batch.n_accesses,
                l1_misses=int(out_l1_misses[index]),
                l2_accesses=int(out_l1_misses[index]),
                l2_misses=int(out_l2_misses[index]),
                dram_lines=int(out_dram_lines[index]),
                bus_cycles=int(out_bus[index]),
                store_fills=int(out_sf[index]),
            ))
            elapsed += (
                entry.advance if entry.kind == SegmentEntry.SWITCH
                else int(out_cycles[index])
            )
        return n_done, results, elapsed

    def _flush_segment_stats(
        self, entries, n_done, ends, cpus,
        lines_arr, counts_arr, owners_arr, sf_u8,
        flags, l1_vo, l2_vo, out_l2_misses, counters, state,
    ) -> None:
        """Reduce the segment's per-run flags into the Python stats.

        The same bincount flush as the fast engine, applied once per
        segment: L1 accounting per CPU present in the completed
        entries, L2 accounting over all completed runs, cold misses by
        batch-first occurrence against the seen-sets, DRAM traffic from
        the C counters.
        """
        run_end = int(ends[n_done - 1]) if n_done else 0
        traffic = self.memory.traffic
        dram_reads = int(out_l2_misses[:n_done].sum()) if n_done else 0
        traffic.line_reads += dram_reads
        traffic.line_writes += int(counters[0])
        traffic.bank_conflicts += int(counters[1]) + int(counters[2])
        if run_end == 0:
            return
        walker = state.walker
        dflags = flags[:run_end]
        downers = owners_arr[:run_end]
        dlines = lines_arr[:run_end]
        dcounts = counts_arr[:run_end]

        # Which CPUs the completed batch entries ran on (the collector
        # produces single-CPU segments; the general path stays correct
        # for mixed ones).
        done_cpus: List[int] = []
        for i in range(n_done):
            cpu = int(cpus[i])
            if int(ends[i]) > (int(ends[i - 1]) if i else 0) \
                    and cpu not in done_cpus:
                done_cpus.append(cpu)
        multi_cpu = len(done_cpus) > 1

        if not dflags.any():
            # Pure L1-hit stretch (the warm steady state): only the
            # per-owner access/hit counts move.
            empty = _EMPTY_I64
            for cpu in done_cpus:
                if multi_cpu:
                    lengths = np.diff(
                        np.concatenate(([0], ends[:n_done]))
                    )
                    mask = np.repeat(cpus[:n_done], lengths) == cpu
                    s_owners, s_counts = downers[mask], dcounts[mask]
                else:
                    s_owners, s_counts = downers, dcounts
                _flush_weighted_stats(
                    self.l1s[cpu].stats, s_owners, s_counts,
                    empty, empty, empty, empty, empty,
                )
            return

        dsf = sf_u8[:run_end]
        dl1_vo = l1_vo[:run_end]
        dl2_vo = l2_vo[:run_end]
        l1_miss_mask = (dflags & cwalker.FLAG_L1_MISS) != 0
        demand_mask = (dflags & cwalker.FLAG_L2_DEMAND_MISS) != 0
        l2_evict_mask = (dflags & cwalker.FLAG_L2_EVICT) != 0
        l2_wb_mask = (dflags & cwalker.FLAG_L2_WB) != 0
        probe_miss_mask = (dflags & cwalker.FLAG_L2_PROBE_MISS) != 0

        # -- L1 accounting, grouped by the CPU of each entry ----------------
        if multi_cpu:
            lengths = np.diff(np.concatenate(([0], ends[:n_done])))
            run_cpu = np.repeat(cpus[:n_done], lengths)
        for cpu in done_cpus:
            if multi_cpu:
                mask = run_cpu == cpu
                s_owners = downers[mask]
                s_counts = dcounts[mask]
                s_lines = dlines[mask]
                s_flags = dflags[mask]
                s_vo = dl1_vo[mask]
            else:
                s_owners, s_counts, s_lines = downers, dcounts, dlines
                s_flags, s_vo = dflags, dl1_vo
            s_miss = (s_flags & cwalker.FLAG_L1_MISS) != 0
            s_evict = (s_flags & cwalker.FLAG_L1_EVICT) != 0
            s_wb = (s_flags & cwalker.FLAG_L1_WB) != 0
            l1 = self.l1s[cpu]
            cold_runs, miss_lines = _first_misses(
                walker, np.ascontiguousarray(s_lines), s_miss, l1._seen
            )
            l1._seen.update(miss_lines)
            _flush_weighted_stats(
                l1.stats, s_owners, s_counts,
                s_owners[s_miss], s_owners[cold_runs],
                s_owners[s_evict], s_vo[s_evict], s_vo[s_wb],
            )

        # -- L2 accounting over every completed run -------------------------
        l2_cache = self.l2 if self.l2 is not None else self.l2_way
        cold2_candidates, miss_lines2 = _first_misses(
            walker, np.ascontiguousarray(dlines), probe_miss_mask,
            l2_cache._seen,
        )
        cold2_runs = cold2_candidates[dsf[cold2_candidates] == 0]
        l2_cache._seen.update(miss_lines2)
        _flush_probe_stats(
            l2_cache.stats,
            downers[l1_miss_mask], downers[demand_mask],
            downers[cold2_runs],
            downers[l2_evict_mask], dl2_vo[l2_evict_mask],
            dl2_vo[l2_wb_mask],
        )

    def _execute_batch_reference(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """The oracle walk: one cache-model method call per run."""
        config = self.config
        l1 = self.l1s[cpu_id]
        line_shift = config.l1_geometry.line_shift
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        resolve = self.resolver.resolve
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED
        way_partitioned = self.mode is PartitionMode.WAY_PARTITIONED
        translate = self.set_map.map_index
        ways_of = self.way_map.ways_of

        result = BatchResult(
            instructions=batch.instructions, accesses=batch.n_accesses
        )
        stall_cycles = 0.0
        transfers = 0
        # A write-only run touching at least this many spots filled the
        # whole line, so the allocation needs no fetch (write-validate).
        full_line_count = config.l1_geometry.line_size // 4

        line_addrs, counts, write_any, write_all = batch.runs(line_shift)
        for i in range(line_addrs.shape[0]):
            line = int(line_addrs[i])
            count = int(counts[i])
            write = bool(write_any[i])
            owner = resolve(line << line_shift, task_owner)

            l1_hit, _cold, l1_evicted = l1.access(
                line, line & l1_mask, write, owner, n=count
            )
            if l1_hit:
                continue
            result.l1_misses += 1
            transfers += 1

            # Dirty L1 victim is written back into the L2 first.  The
            # write-back is non-allocating: it updates the L2 copy when
            # present and otherwise goes straight to DRAM.
            if l1_evicted is not None and l1_evicted[2]:
                wb_line, wb_owner = l1_evicted[0], l1_evicted[1]
                if way_partitioned:
                    wb_hit = self.l2_way.probe_writeback(
                        wb_line, wb_line & l2_mask, wb_owner
                    )
                else:
                    wb_index = (
                        translate(wb_owner, wb_line)
                        if set_partitioned
                        else wb_line & l2_mask
                    )
                    wb_hit = self.l2.probe_writeback(wb_line, wb_index, wb_owner)
                if not wb_hit:
                    self.memory.access(wb_line, True, now)
                    result.dram_lines += 1
                transfers += 1

            # Full-line streaming stores allocate without a DRAM fetch
            # (write-validate).  The line is installed dirty in the L2
            # as well -- the L2 is the tile's communication point, so a
            # consumer on another CPU finds the producer's data there.
            # The allocation counts as an access but not as a miss.
            if bool(write_all[i]) and count >= full_line_count:
                result.store_fills += 1
                self._l2_store_fill(
                    line, owner, l2_mask, set_partitioned, way_partitioned,
                    translate, ways_of, now, result,
                )
                continue

            # The demand fill.
            l2_hit = self._l2_access(
                line,
                owner,
                write,
                l2_mask,
                set_partitioned,
                way_partitioned,
                translate,
                ways_of,
                now,
                result,
            )
            stall_cycles += config.l2_hit_cycles
            if not l2_hit:
                stall_cycles += self.memory.access(line, False, now)
                result.dram_lines += 1

        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(batch.instructions * config.issue_cpi)
            + int(stall_cycles)
            + bus_cycles
        )
        return result

    def _execute_batch_fast(
        self, cpu_id: int, task_owner: int, batch: AccessBatch, now: float
    ) -> BatchResult:
        """Vectorised walk producing bit-identical statistics.

        Per-run work that does not depend on cache state -- owner
        resolution, L1/L2 set indices -- is precomputed with numpy and
        materialised as plain Python lists (scalar indexing into numpy
        arrays is an order of magnitude slower than list indexing).  The
        walk itself touches the caches' internal dicts/lists directly
        through local bindings, records outcomes as run indices and
        event tuples, and flushes all per-owner statistics in one
        ``bincount`` pass at the end.  State mutations (cache contents,
        DRAM bank timing) happen in exactly the reference order, so
        every counter and every timing quantity matches the oracle.
        """
        config = self.config
        result = BatchResult(
            instructions=batch.instructions, accesses=batch.n_accesses
        )
        line_shift = config.l1_geometry.line_shift
        line_arr, count_arr, wany_arr, wall_arr = batch.runs(line_shift)
        n_runs = int(line_arr.shape[0])
        if n_runs == 0:
            result.cycles = int(round(batch.instructions * config.issue_cpi))
            return result

        owners_arr = self.resolver.resolve_many(
            line_arr << line_shift, task_owner
        )
        if int(owners_arr.min()) < 0:
            # Negative owner ids would break the bincount flush; the
            # registry never produces them, so degrade to the oracle
            # path -- *stickily*: once such lines are resident, any
            # later eviction would feed their owner into the flush.
            self._fast = False
            return self._execute_batch_reference(
                cpu_id, task_owner, batch, now
            )

        l1 = self.l1s[cpu_id]
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        full_line_count = config.l1_geometry.line_size // 4
        l2_hit_cycles = config.l2_hit_cycles
        mode = self.mode
        way_partitioned = mode is PartitionMode.WAY_PARTITIONED
        set_partitioned = mode is PartitionMode.SET_PARTITIONED
        map_index = self.set_map.map_index

        if set_partitioned:
            l2_idx_arr = self.set_map.map_index_many(owners_arr, line_arr)
        elif way_partitioned:
            l2_idx_arr = None
        else:
            l2_idx_arr = line_arr & l2_mask

        l2_random = self.l2 is not None and self.l2.policy == "random"
        if (not way_partitioned and not l2_random
                and n_runs >= self.c_walk_threshold):
            walker = cwalker.load()
            if walker is not None:
                return self._execute_batch_fast_c(
                    walker, cpu_id, result, now,
                    line_arr, count_arr, wany_arr, wall_arr,
                    owners_arr, l2_idx_arr,
                )

        l2_idx_list = (
            l2_idx_arr.tolist() if not way_partitioned else None
        )
        l1_idx_list = (line_arr & l1_mask).tolist()
        lines_list = line_arr.tolist()
        counts_list = count_arr.tolist()
        wany_list = wany_arr.tolist()
        wall_list = wall_arr.tolist()
        owners_list = owners_arr.tolist()

        # L1 internals as locals (the L1s are always LRU).
        l1_sets = l1._sets
        l1_where = l1._where
        l1_where_get = l1_where.get
        l1_owner_of = l1._owner_of
        l1_dirty = l1._dirty
        l1_dirty_add = l1_dirty.add
        l1_seen = l1._seen
        l1_seen_add = l1_seen.add
        l1_ways = l1.geometry.ways

        if way_partitioned:
            l2_way = self.l2_way
            l2_way_probe = l2_way.probe_writeback
            ways_of = self.way_map.ways_of
        else:
            l2 = self.l2
            l2_sets = l2._sets
            l2_where = l2._where
            l2_where_get = l2_where.get
            l2_owner_of = l2._owner_of
            l2_dirty = l2._dirty
            l2_dirty_add = l2_dirty.add
            l2_seen = l2._seen
            l2_seen_add = l2_seen.add
            l2_ways = l2.geometry.ways
            l2_lru = l2.policy == "lru"
            # Random replacement replays the reference RNG stream: one
            # draw per eviction, in eviction order, over a same-order
            # recency list -- so the victims (and the generator state)
            # match the oracle draw for draw.
            l2_rng_integers = l2._rng.integers if l2_random else None

        # DRAM bank model inlined (same dict, same update order).
        dram = self.memory.config
        bank_mask = dram.n_banks - 1
        bank_busy = dram.bank_busy_cycles
        bank_free = self.memory._bank_free_at
        bank_free_get = bank_free.get
        dram_writes = 0
        write_conflicts = 0
        read_conflicts = 0
        way_dram_lines = 0
        way_stall = 0

        # Outcome recorders: owner-id lists the flush reduces with
        # bincount.  Everything else is derived from their lengths.
        l1_miss_owners: List[int] = []
        l1_miss_append = l1_miss_owners.append
        l1_cold_owners: List[int] = []
        l1_evictor_owners: List[int] = []
        l1_victim_owners: List[int] = []
        l1_wb_owners: List[int] = []
        l2_miss_owners: List[int] = []
        l2_cold_owners: List[int] = []
        l2_evictor_owners: List[int] = []
        l2_victim_owners: List[int] = []
        l2_wb_owners: List[int] = []
        store_fills = 0

        # The recorder lists retain millions of objects on big batches;
        # with the generational GC enabled, every full collection walks
        # them again and dominates the runtime.  Nothing in the walk can
        # create reference cycles, so pause collection for its duration.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for i, line in enumerate(lines_list):
                si = l1_idx_list[i]
                # -- L1 probe: one dict lookup --------------------------
                if l1_where_get(line) == si:
                    slist = l1_sets[si]
                    if slist[0] != line:
                        slist.remove(line)
                        slist.insert(0, line)
                    if wany_list[i]:
                        l1_dirty_add(line)
                    continue

                # -- L1 miss --------------------------------------------
                write = wany_list[i]
                owner = owners_list[i]
                l1_miss_append(owner)
                if line not in l1_seen:
                    l1_cold_owners.append(owner)
                    l1_seen_add(line)
                slist = l1_sets[si]
                wb_line = None
                if len(slist) >= l1_ways:
                    victim = slist.pop()
                    del l1_where[victim]
                    victim_owner = l1_owner_of.pop(victim)
                    if victim in l1_dirty:
                        l1_dirty.remove(victim)
                        l1_wb_owners.append(victim_owner)
                        wb_line = victim
                        wb_owner = victim_owner
                    l1_evictor_owners.append(owner)
                    l1_victim_owners.append(victim_owner)
                slist.insert(0, line)
                l1_where[line] = si
                l1_owner_of[line] = owner
                if write:
                    l1_dirty_add(line)

                # -- dirty L1 victim written back through the L2 --------
                if wb_line is not None:
                    if way_partitioned:
                        wb_hit = l2_way_probe(
                            wb_line, wb_line & l2_mask, wb_owner
                        )
                    else:
                        if set_partitioned:
                            wb_index = map_index(wb_owner, wb_line)
                        else:
                            wb_index = wb_line & l2_mask
                        if l2_where_get(wb_line) == wb_index:
                            l2_dirty_add(wb_line)
                            wb_hit = True
                        else:
                            wb_hit = False
                    if not wb_hit:
                        bank = wb_line & bank_mask
                        free_at = bank_free_get(bank, 0.0)
                        if now < free_at:
                            write_conflicts += 1
                        bank_free[bank] = (
                            free_at if free_at > now else now
                        ) + bank_busy
                        dram_writes += 1

                store_fill = (
                    wall_list[i] and counts_list[i] >= full_line_count
                )
                if store_fill:
                    store_fills += 1

                # -- way-partitioned L2: reference method path ----------
                if way_partitioned:
                    if store_fill:
                        self._l2_store_fill(
                            line, owner, l2_mask, False, True,
                            map_index, ways_of, now, result,
                        )
                        continue
                    l2_hit = self._l2_access(
                        line, owner, write, l2_mask, False, True,
                        map_index, ways_of, now, result,
                    )
                    way_stall += l2_hit_cycles
                    if not l2_hit:
                        way_stall += self.memory.access(line, False, now)
                        way_dram_lines += 1
                    continue

                # -- set-associative L2, inlined ------------------------
                l2i = l2_idx_list[i]
                if l2_where_get(line) == l2i:
                    slist2 = l2_sets[l2i]
                    if l2_lru and slist2[0] != line:
                        slist2.remove(line)
                        slist2.insert(0, line)
                    if write:
                        l2_dirty_add(line)
                    continue

                # L2 miss (store fills allocate, but are not demand
                # misses and fetch nothing).
                if line not in l2_seen:
                    if not store_fill:
                        l2_cold_owners.append(owner)
                    l2_seen_add(line)
                if not store_fill:
                    l2_miss_owners.append(owner)
                slist2 = l2_sets[l2i]
                if len(slist2) >= l2_ways:
                    if l2_rng_integers is not None:
                        victim = slist2.pop(
                            int(l2_rng_integers(len(slist2)))
                        )
                    else:
                        victim = slist2.pop()
                    del l2_where[victim]
                    victim_owner = l2_owner_of.pop(victim)
                    l2_evictor_owners.append(owner)
                    l2_victim_owners.append(victim_owner)
                    if victim in l2_dirty:
                        l2_dirty.remove(victim)
                        l2_wb_owners.append(victim_owner)
                        bank = victim & bank_mask
                        free_at = bank_free_get(bank, 0.0)
                        if now < free_at:
                            write_conflicts += 1
                        bank_free[bank] = (
                            free_at if free_at > now else now
                        ) + bank_busy
                        dram_writes += 1
                slist2.insert(0, line)
                l2_where[line] = l2i
                l2_owner_of[line] = owner
                if write:
                    l2_dirty_add(line)
                if store_fill:
                    continue
                # Demand miss: the DRAM fetch (bank state now, latency
                # derived in the flush below).
                bank = line & bank_mask
                free_at = bank_free_get(bank, 0.0)
                if now < free_at:
                    read_conflicts += 1
                bank_free[bank] = (
                    free_at if free_at > now else now
                ) + bank_busy
        finally:
            if gc_was_enabled:
                gc.enable()

        # -- batched statistics and counter flush ----------------------
        #
        # Everything below is a pure function of the recorders: stall
        # cycles are ``l2_hit_cycles`` per demand probe plus the DRAM
        # base latency per read plus the bank penalty per read conflict
        # -- term for term what the reference walk accumulates.
        l1_misses = len(l1_miss_owners)
        _flush_weighted_stats(
            l1.stats, owners_arr, count_arr,
            l1_miss_owners, l1_cold_owners,
            l1_evictor_owners, l1_victim_owners, l1_wb_owners,
        )
        traffic = self.memory.traffic
        if way_partitioned:
            stall = way_stall
            dram_lines = way_dram_lines + dram_writes
        else:
            _flush_probe_stats(
                self.l2.stats,
                l1_miss_owners, l2_miss_owners, l2_cold_owners,
                l2_evictor_owners, l2_victim_owners, l2_wb_owners,
            )
            dram_reads = len(l2_miss_owners)
            result.l2_accesses = l1_misses
            result.l2_misses = dram_reads
            stall = (
                (l1_misses - store_fills) * l2_hit_cycles
                + dram_reads * dram.access_cycles
                + read_conflicts * dram.bank_penalty_cycles
            )
            dram_lines = dram_reads + dram_writes
            traffic.line_reads += dram_reads
        traffic.line_writes += dram_writes
        traffic.bank_conflicts += read_conflicts + write_conflicts

        result.l1_misses = l1_misses
        result.store_fills = store_fills
        result.dram_lines += dram_lines
        transfers = l1_misses + len(l1_wb_owners)
        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(batch.instructions * config.issue_cpi) + stall + bus_cycles
        )
        return result

    def _execute_batch_fast_c(
        self, walker, cpu_id, result, now,
        line_arr, count_arr, wany_arr, wall_arr, owners_arr, l2_idx_arr,
    ) -> BatchResult:
        """Large-batch walk through the compiled kernel (see cwalker).

        Cache and DRAM-bank state is flattened to arrays, the C routine
        replays the reference sequence over them, and the per-run flag
        and victim-owner outputs are reduced to statistics with numpy.
        Cold misses never need kernel support: a line's first-ever
        access always misses, so the cold runs are exactly the
        batch-first occurrences of lines absent from the seen-sets.
        """
        import ctypes

        config = self.config
        l1 = self.l1s[cpu_id]
        l2 = self.l2
        n_runs = int(line_arr.shape[0])
        l1_mask = config.l1_geometry.index_mask
        l2_mask = config.l2_geometry.index_mask
        full_line_count = config.l1_geometry.line_size // 4
        set_partitioned = self.mode is PartitionMode.SET_PARTITIONED

        l1_idx_arr = line_arr & l1_mask
        sf_arr = (wall_arr & (count_arr >= full_line_count)).astype(np.uint8)
        wany_u8 = wany_arr.astype(np.uint8)

        l1_lines, l1_owners, l1_dirty, l1_lens = l1.export_state()
        l2_lines, l2_owners, l2_dirty, l2_lens = l2.export_state()

        # Dirty L1 victims re-index through the per-owner translation;
        # ship the map as a dense table (row n_table = default mapping,
        # covering every partitioned/aliased owner -- memoized on the
        # partition map's version counter).
        if set_partitioned:
            use_table = 1
            n_table, tbl_base, tbl_size, tbl_pow2 = \
                self._set_translation_table()
        else:
            use_table = 0
            n_table = 0
            tbl_base = np.zeros(1, dtype=np.int64)
            tbl_size = np.ones(1, dtype=np.int64)
            tbl_pow2 = np.ones(1, dtype=np.uint8)

        dram = self.memory.config
        n_banks = dram.n_banks
        bank_free = self.memory._bank_free_at
        bank_arr = np.array(
            [bank_free.get(b, 0.0) for b in range(n_banks)], dtype=np.float64
        )

        flags = np.zeros(n_runs, dtype=np.uint8)
        l1_vo = np.zeros(n_runs, dtype=np.int64)
        l2_vo = np.zeros(n_runs, dtype=np.int64)
        counters = np.zeros(3, dtype=np.int64)

        p_i64 = ctypes.POINTER(ctypes.c_int64)
        p_i32 = ctypes.POINTER(ctypes.c_int32)
        p_u8 = ctypes.POINTER(ctypes.c_uint8)
        p_f64 = ctypes.POINTER(ctypes.c_double)

        def i64p(arr):
            return arr.ctypes.data_as(p_i64)

        walker.walk_batch(
            n_runs,
            i64p(line_arr), i64p(l1_idx_arr), i64p(l2_idx_arr),
            wany_u8.ctypes.data_as(p_u8), sf_arr.ctypes.data_as(p_u8),
            l1.geometry.ways,
            i64p(l1_lines), i64p(l1_owners),
            l1_dirty.ctypes.data_as(p_u8), l1_lens.ctypes.data_as(p_i32),
            l2.geometry.ways, 1 if l2.policy == "lru" else 0,
            i64p(l2_lines), i64p(l2_owners),
            l2_dirty.ctypes.data_as(p_u8), l2_lens.ctypes.data_as(p_i32),
            i64p(owners_arr),
            use_table, n_table,
            i64p(tbl_base), i64p(tbl_size), tbl_pow2.ctypes.data_as(p_u8),
            l2_mask,
            float(now), n_banks - 1, dram.bank_busy_cycles,
            bank_arr.ctypes.data_as(p_f64),
            flags.ctypes.data_as(p_u8), i64p(l1_vo), i64p(l2_vo),
            i64p(counters),
        )

        l1.import_state(l1_lines, l1_owners, l1_dirty, l1_lens)
        l2.import_state(l2_lines, l2_owners, l2_dirty, l2_lens)
        bank_values = bank_arr.tolist()
        for bank in range(n_banks):
            bank_free[bank] = bank_values[bank]

        l1_miss_mask = (flags & cwalker.FLAG_L1_MISS) != 0
        demand_miss_mask = (flags & cwalker.FLAG_L2_DEMAND_MISS) != 0
        l1_evict_mask = (flags & cwalker.FLAG_L1_EVICT) != 0
        l2_evict_mask = (flags & cwalker.FLAG_L2_EVICT) != 0
        l1_wb_mask = (flags & cwalker.FLAG_L1_WB) != 0
        l2_wb_mask = (flags & cwalker.FLAG_L2_WB) != 0

        # Cold-miss classification.  Per level, a run is cold exactly
        # when it is the batch's *first miss* of its line at that level
        # and the line is not in the level's seen-set -- only misses
        # mark a line seen, so this reproduces the reference
        # bookkeeping even across forget_history() epochs (where lines
        # can be resident yet unseen).  At the L2, the first missing
        # probe marks the line seen but counts as cold only when it is
        # a demand access, mirroring the store-fill cancellation.
        l2_probe_miss_mask = (flags & cwalker.FLAG_L2_PROBE_MISS) != 0
        cold1_runs, miss_lines1 = _first_misses(
            walker, line_arr, l1_miss_mask, l1._seen
        )
        cold2_candidates, miss_lines2 = _first_misses(
            walker, line_arr, l2_probe_miss_mask, l2._seen
        )
        cold2_runs = cold2_candidates[sf_arr[cold2_candidates] == 0]
        l1._seen.update(miss_lines1)
        l2._seen.update(miss_lines2)

        _flush_weighted_stats(
            l1.stats, owners_arr, count_arr,
            owners_arr[l1_miss_mask], owners_arr[cold1_runs],
            owners_arr[l1_evict_mask], l1_vo[l1_evict_mask],
            l1_vo[l1_wb_mask],
        )
        _flush_probe_stats(
            l2.stats,
            owners_arr[l1_miss_mask], owners_arr[demand_miss_mask],
            owners_arr[cold2_runs],
            owners_arr[l2_evict_mask], l2_vo[l2_evict_mask],
            l2_vo[l2_wb_mask],
        )

        l1_misses = int(np.count_nonzero(l1_miss_mask))
        store_fills = int(np.count_nonzero(sf_arr[l1_miss_mask]))
        dram_reads = int(np.count_nonzero(demand_miss_mask))
        dram_writes = int(counters[0])
        read_conflicts = int(counters[1])
        write_conflicts = int(counters[2])
        traffic = self.memory.traffic
        traffic.line_reads += dram_reads
        traffic.line_writes += dram_writes
        traffic.bank_conflicts += read_conflicts + write_conflicts

        result.l1_misses = l1_misses
        result.l2_accesses = l1_misses
        result.l2_misses = dram_reads
        result.store_fills = store_fills
        result.dram_lines = dram_reads + dram_writes
        stall = (
            (l1_misses - store_fills) * config.l2_hit_cycles
            + dram_reads * dram.access_cycles
            + read_conflicts * dram.bank_penalty_cycles
        )
        transfers = l1_misses + int(np.count_nonzero(l1_wb_mask))
        bus_cycles = self.bus.price_transfers(cpu_id, transfers, now)
        result.bus_cycles = bus_cycles
        result.cycles = int(
            round(result.instructions * config.issue_cpi)
            + stall + bus_cycles
        )
        return result

    def _l2_store_fill(
        self,
        line: int,
        owner: int,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> None:
        """Install a fully written line in the L2 without fetching.

        Uses the normal allocation path (so evictions and their
        attribution happen as usual) but cancels the miss/DRAM-read
        accounting: a write-validated allocation transfers nothing from
        memory.
        """
        result.l2_accesses += 1
        if way_partitioned:
            cache = self.l2_way
            hit, cold, evicted = cache.access(
                line, line & l2_mask, True, owner, ways_of(owner)
            )
        else:
            cache = self.l2
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, cold, evicted = cache.access(line, index, True, owner)
        if not hit:
            # Not a demand miss: undo the miss counting of access().
            stats = cache.stats.owner(owner)
            stats.misses -= 1
            stats.hits += 1
            if cold:
                stats.cold_misses -= 1
        if evicted is not None and evicted[2]:
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1

    def _l2_access(
        self,
        line: int,
        owner: int,
        write: bool,
        l2_mask: int,
        set_partitioned: bool,
        way_partitioned: bool,
        translate,
        ways_of,
        now: float,
        result: BatchResult,
    ) -> bool:
        """One L2 probe; handles translation, way masks and writebacks."""
        result.l2_accesses += 1
        if way_partitioned:
            hit, _cold, evicted = self.l2_way.access(
                line, line & l2_mask, write, owner, ways_of(owner)
            )
        else:
            index = translate(owner, line) if set_partitioned else line & l2_mask
            hit, _cold, evicted = self.l2.access(line, index, write, owner)
        if not hit:
            result.l2_misses += 1
        if evicted is not None and evicted[2]:
            # Dirty L2 victim goes to DRAM; traffic only, no CPU stall.
            self.memory.access(evicted[0], True, now)
            result.dram_lines += 1
        return hit


# -- fast-engine statistics flush -----------------------------------------
#
# The fast walker records outcomes as flat owner-id lists; these helpers
# reduce them to per-owner deltas in one vectorised pass.  The resulting
# OwnerStats values are identical to what the per-run reference
# accounting produces, because hit/miss/access counts are order-free sums.


def _bincount(owner_list, minlength=0) -> np.ndarray:
    """Per-owner occurrence counts of a flat owner-id list."""
    return np.bincount(
        np.asarray(owner_list, dtype=np.int64), minlength=minlength
    )


def _first_misses(walker, line_arr, miss_mask, seen):
    """Batch-first misses of not-yet-seen lines (C-path cold misses).

    Returns ``(cold_runs, missed_lines)``: the run indices whose miss
    is the line's first at this level *and* whose line is absent from
    ``seen`` (the reference marks a line seen at every miss, never at a
    hit), plus the distinct missed lines to add to the seen-set.
    """
    miss_runs = np.flatnonzero(miss_mask)
    n_misses = int(miss_runs.shape[0])
    if n_misses == 0:
        return miss_runs, []
    missed = line_arr[miss_runs]
    first_mask = np.zeros(n_misses, dtype=np.uint8)
    if walker.first_occurrence(
        missed.ctypes.data, n_misses, first_mask.ctypes.data,
    ):
        _, first_sub = np.unique(missed, return_index=True)
    else:
        first_sub = np.flatnonzero(first_mask)
    first_runs = miss_runs[first_sub]
    missed_lines = line_arr[first_runs].tolist()
    if seen.issuperset(missed_lines):
        # Warm steady state: every missed line was seen before, so no
        # run is cold -- skip the per-line membership scan.
        return first_runs[:0], missed_lines
    pre_seen = np.fromiter(
        (line in seen for line in missed_lines),
        dtype=bool, count=len(missed_lines),
    )
    return first_runs[~pre_seen], missed_lines


def _flush_events(stats, evictor_owners, victim_owners, wb_owners) -> None:
    """Apply eviction-attribution and writeback events to ``stats``.

    Events arrive as parallel evictor/victim owner lists; the
    ``(evictor, victim)`` matrix is aggregated by packing each pair into
    one integer key and running ``np.unique`` -- no per-event Python
    work.
    """
    if len(victim_owners):
        victims = np.asarray(victim_owners, dtype=np.int64)
        suffered = np.bincount(victims)
        for o in np.flatnonzero(suffered):
            stats.owner(int(o)).evictions_suffered += int(suffered[o])
        evictors = np.asarray(evictor_owners, dtype=np.int64)
        key_mod = int(victims.max()) + 1
        packed = evictors * key_mod + victims
        matrix = stats.eviction_matrix
        if int(evictors.max()) * key_mod < (1 << 22):
            # Dense owner ids (the normal case): bincount beats the
            # sort inside np.unique by an order of magnitude.
            counts = np.bincount(packed)
            for key in np.flatnonzero(counts):
                pair = (int(key) // key_mod, int(key) % key_mod)
                matrix[pair] = matrix.get(pair, 0) + int(counts[key])
        else:
            keys, counts = np.unique(packed, return_counts=True)
            for key, n in zip(keys.tolist(), counts.tolist()):
                pair = (key // key_mod, key % key_mod)
                matrix[pair] = matrix.get(pair, 0) + n
    if len(wb_owners):
        flushed = _bincount(wb_owners)
        for o in np.flatnonzero(flushed):
            stats.owner(int(o)).writebacks += int(flushed[o])


def _apply_owner_counts(stats, acc, miss_owners, cold_owners) -> None:
    """Fold per-owner access/miss/cold counts into ``stats``.

    ``hits`` is derived as ``accesses - misses`` -- exactly the
    reference model's ``hits += n`` / ``hits += n - 1`` bookkeeping,
    summed (only a run's first access can miss).
    """
    n_owners = len(acc)
    miss = _bincount(miss_owners, n_owners)
    cold = _bincount(cold_owners, n_owners)
    for o in np.flatnonzero(acc):
        owner_stats = stats.owner(int(o))
        a = int(acc[o])
        m = int(miss[o])
        owner_stats.accesses += a
        owner_stats.hits += a - m
        owner_stats.misses += m
        c = int(cold[o])
        if c:
            owner_stats.cold_misses += c


def _flush_weighted_stats(
    stats, owners_arr, count_arr, miss_owners, cold_owners,
    evictor_owners, victim_owners, wb_owners,
) -> None:
    """L1-style accounting: every run accesses with its full run length."""
    n_owners = int(owners_arr.max()) + 1
    acc = np.bincount(owners_arr, weights=count_arr, minlength=n_owners)
    _apply_owner_counts(stats, acc, miss_owners, cold_owners)
    _flush_events(stats, evictor_owners, victim_owners, wb_owners)


def _flush_probe_stats(
    stats, probe_owners, miss_owners, cold_owners,
    evictor_owners, victim_owners, wb_owners,
) -> None:
    """L2-style accounting: one single-access probe per L1-missing run.

    Store fills are probes that never count as demand misses (the
    reference path books then cancels the miss; the net effect is an
    access plus a hit, which is what omitting them from ``miss_owners``
    produces here).
    """
    if len(probe_owners):
        probes = np.asarray(probe_owners, dtype=np.int64)
        acc = np.bincount(probes, minlength=int(probes.max()) + 1)
        _apply_owner_counts(stats, acc, miss_owners, cold_owners)
    _flush_events(stats, evictor_owners, victim_owners, wb_owners)
