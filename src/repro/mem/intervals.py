"""OS-loaded table of shared-memory intervals.

The paper (§4.2) discusses three ways for the cache to learn which
communication buffer an access belongs to and picks the third: *"keep a
table with intervals of shared memory.  This table needs to be loaded by
the operating system.  Then for every access the cache can lookup if the
address has an associated buffer id."*

:class:`IntervalTable` is that table: a sorted set of non-overlapping
``[base, end)`` intervals, each tagged with an owner id.  Lookup is a
binary search; the hot path is called for every L2 access, so the table
keeps plain parallel lists.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryModelError

__all__ = ["IntervalTable"]


class IntervalTable:
    """Sorted, non-overlapping address intervals mapping to owner ids."""

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._ends: List[int] = []
        self._owners: List[int] = []

    def __len__(self) -> int:
        return len(self._bases)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(base, end, owner)`` triples in address order."""
        return iter(zip(self._bases, self._ends, self._owners))

    def add(self, base: int, end: int, owner: int) -> None:
        """Register ``[base, end)`` as belonging to ``owner``.

        Overlapping intervals are rejected: a byte of shared memory
        belongs to exactly one buffer.
        """
        if end <= base:
            raise MemoryModelError(f"empty interval [{base:#x}, {end:#x})")
        idx = bisect_right(self._bases, base)
        if idx > 0 and self._ends[idx - 1] > base:
            raise MemoryModelError(
                f"interval [{base:#x}, {end:#x}) overlaps "
                f"[{self._bases[idx - 1]:#x}, {self._ends[idx - 1]:#x})"
            )
        if idx < len(self._bases) and self._bases[idx] < end:
            raise MemoryModelError(
                f"interval [{base:#x}, {end:#x}) overlaps "
                f"[{self._bases[idx]:#x}, {self._ends[idx]:#x})"
            )
        self._bases.insert(idx, base)
        self._ends.insert(idx, end)
        self._owners.insert(idx, owner)

    def remove(self, base: int) -> None:
        """Drop the interval starting at ``base``."""
        idx = bisect_right(self._bases, base) - 1
        if idx < 0 or self._bases[idx] != base:
            raise MemoryModelError(f"no interval starts at {base:#x}")
        del self._bases[idx], self._ends[idx], self._owners[idx]

    def lookup(self, addr: int) -> Optional[int]:
        """Owner id of ``addr`` or ``None`` when not in any interval."""
        idx = bisect_right(self._bases, addr) - 1
        if idx >= 0 and addr < self._ends[idx]:
            return self._owners[idx]
        return None

    def lookup_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lookup` over an address array.

        Returns an ``int64`` array of owner ids with ``-1`` where an
        address falls in no interval (owner ids are non-negative by
        construction, see :class:`repro.mem.partition.OwnerRegistry`).
        One ``searchsorted`` replaces a per-access binary search -- this
        is what lets the fast hierarchy engine resolve a whole batch of
        runs in one call.
        """
        addrs = np.asarray(addrs)
        if not self._bases:
            return np.full(addrs.shape, -1, dtype=np.int64)
        bases = np.asarray(self._bases, dtype=np.int64)
        ends = np.asarray(self._ends, dtype=np.int64)
        owners = np.asarray(self._owners, dtype=np.int64)
        idx = np.searchsorted(bases, addrs, side="right") - 1
        clipped = np.maximum(idx, 0)
        inside = (idx >= 0) & (addrs < ends[clipped])
        return np.where(inside, owners[clipped], np.int64(-1))

    def clear(self) -> None:
        """Drop every interval (used when the OS reprograms the table)."""
        self._bases.clear()
        self._ends.clear()
        self._owners.clear()
