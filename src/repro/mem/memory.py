"""Off-chip DRAM model.

The paper's platform reaches main memory through the on-tile router; for
the miss-behaviour claims all that matters is that an L2 miss costs a
(large) latency and generates traffic.  :class:`MainMemory` charges a
fixed access latency plus an optional bank-conflict surcharge: the line
address selects one of ``n_banks`` banks, and consecutive accesses to
the same bank within the bank-busy window pay a penalty.  The bank model
is deterministic and cheap; it exists so that the simulated timing has a
second-order effect the analytic model of §3.1/3.2 ignores, which is one
of the sources of the small expected-vs-simulated gaps in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import MemoryModelError

__all__ = ["DramConfig", "MainMemory"]


@dataclass(frozen=True)
class DramConfig:
    """Timing parameters of the off-chip memory."""

    access_cycles: int = 110
    n_banks: int = 8
    bank_busy_cycles: int = 12
    bank_penalty_cycles: int = 6

    def __post_init__(self) -> None:
        if self.access_cycles < 0:
            raise MemoryModelError("access_cycles must be >= 0")
        if self.n_banks <= 0 or self.n_banks & (self.n_banks - 1):
            raise MemoryModelError("n_banks must be a positive power of two")


@dataclass
class MemoryTraffic:
    """Counters of the traffic that reached DRAM."""

    line_reads: int = 0
    line_writes: int = 0
    bank_conflicts: int = 0

    @property
    def total_lines(self) -> int:
        """Total lines transferred in either direction."""
        return self.line_reads + self.line_writes


class MainMemory:
    """Deterministic DRAM latency and traffic model."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self.traffic = MemoryTraffic()
        self._bank_free_at: Dict[int, float] = {}

    def access(self, line_addr: int, write: bool, now: float) -> int:
        """Cost in cycles of transferring one line at time ``now``."""
        config = self.config
        if write:
            self.traffic.line_writes += 1
        else:
            self.traffic.line_reads += 1
        latency = config.access_cycles
        bank = line_addr & (config.n_banks - 1)
        free_at = self._bank_free_at.get(bank, 0.0)
        if now < free_at:
            latency += config.bank_penalty_cycles
            self.traffic.bank_conflicts += 1
        self._bank_free_at[bank] = max(now, free_at) + config.bank_busy_cycles
        return latency

    def reset_traffic(self) -> None:
        """Zero the traffic counters."""
        self.traffic = MemoryTraffic()
