"""Cache partitioning: owner ids, set-index translation, way maps.

This module implements the mechanism at the heart of the paper:

    "Allocating sets of the L2 cache is implemented by changing the
    conventional index part of an address to a new index. [...] the
    cache has to be able to relate memory accesses to tasks and
    communication buffers." (§4.2)

Concretely:

- :class:`OwnerRegistry` assigns small integer ids to the memory-active
  entities (tasks, FIFOs, frame buffers, shared data/bss regions, the
  RTOS).  Id 0 (:data:`OWNER_SHARED`) means "no exclusive partition".
- :class:`OwnerResolver` maps one access to its owner: the interval
  table of shared buffers is consulted first, then the task-id register
  of the issuing CPU -- exactly the paper's lookup order.
- :class:`SetPartition` / :class:`SetPartitionMap` translate the
  natural set index into the owner's exclusive group of sets:
  ``new_index = base + (natural_index mod n_sets)``.
- :class:`WayPartitionMap` provides the column-caching baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.mem.intervals import IntervalTable

__all__ = [
    "OWNER_SHARED",
    "OwnerRegistry",
    "OwnerResolver",
    "PartitionMode",
    "SetPartition",
    "SetPartitionMap",
    "WayPartitionMap",
]

#: Owner id that stands for "the shared pool" -- accesses resolved to
#: this id are not translated and may use the whole cache.
OWNER_SHARED = 0


class PartitionMode(enum.Enum):
    """How the shared L2 treats partitioning."""

    SHARED = "shared"  # conventional indexing, no isolation
    SET_PARTITIONED = "set"  # the paper's proposal
    WAY_PARTITIONED = "way"  # column-caching baseline


class OwnerRegistry:
    """Bidirectional map between owner names and dense integer ids."""

    def __init__(self) -> None:
        self._name_to_id: Dict[str, int] = {"<shared>": OWNER_SHARED}
        self._id_to_name: Dict[int, str] = {OWNER_SHARED: "<shared>"}

    def register(self, name: str) -> int:
        """Register ``name`` (idempotent) and return its id."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        owner_id = len(self._name_to_id)
        self._name_to_id[name] = owner_id
        self._id_to_name[owner_id] = name
        return owner_id

    def id_of(self, name: str) -> int:
        """Id of a registered owner (raises on unknown names)."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise PartitionError(f"unknown owner {name!r}") from None

    def name_of(self, owner_id: int) -> str:
        """Name of a registered owner id."""
        try:
            return self._id_to_name[owner_id]
        except KeyError:
            raise PartitionError(f"unknown owner id {owner_id}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._name_to_id)

    def names(self) -> List[str]:
        """All registered names except the shared pseudo-owner."""
        return [n for n, i in self._name_to_id.items() if i != OWNER_SHARED]


class OwnerResolver:
    """Resolve an access to its owner id.

    Shared-buffer intervals win over the task id: a task reading a FIFO
    touches the *FIFO's* partition, not its own -- this is what removes
    producer/consumer interference (paper §3).
    """

    def __init__(self, interval_table: Optional[IntervalTable] = None):
        self.intervals = interval_table if interval_table is not None else IntervalTable()

    def resolve(self, addr: int, task_owner: int) -> int:
        """Owner id for a byte address issued by ``task_owner``."""
        buffer_owner = self.intervals.lookup(addr)
        return buffer_owner if buffer_owner is not None else task_owner

    def resolve_many(self, addrs: np.ndarray, task_owner: int) -> np.ndarray:
        """Vectorised :meth:`resolve` over an address array.

        One interval-table lookup for the whole batch; addresses outside
        every interval fall back to ``task_owner``.
        """
        if not len(self.intervals):
            return np.full(np.shape(addrs), task_owner, dtype=np.int64)
        buffer_owners = self.intervals.lookup_many(addrs)
        return np.where(
            buffer_owners >= 0, buffer_owners, np.int64(task_owner)
        )


@dataclass(frozen=True)
class SetPartition:
    """An exclusive, contiguous group of cache sets.

    ``translate`` folds the *line address* into the group.  For
    power-of-two group sizes this is a mask over the low index bits --
    literally the paper's "changing the conventional index part of an
    address to a new index" with fewer index bits.  Non-power-of-two
    sizes use a modulo of the line address; folding the line address
    (rather than the conventional index, which is itself already folded
    by the total set count) keeps consecutive lines perfectly balanced
    over the group regardless of where the region sits in memory.
    """

    owner: int
    base: int
    n_sets: int

    def __post_init__(self) -> None:
        if self.n_sets <= 0:
            raise PartitionError(f"partition needs >= 1 set, got {self.n_sets}")
        if self.base < 0:
            raise PartitionError(f"negative partition base {self.base}")

    @property
    def end(self) -> int:
        """One past the last set of the group."""
        return self.base + self.n_sets

    @property
    def is_power_of_two(self) -> bool:
        """Whether translation can be a simple mask."""
        return self.n_sets & (self.n_sets - 1) == 0

    def translate(self, line_addr: int) -> int:
        """Map a line address into this partition's set group."""
        if self.is_power_of_two:
            return self.base + (line_addr & (self.n_sets - 1))
        return self.base + (line_addr % self.n_sets)

    def translate_many(self, line_addrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`translate` over a line-address array."""
        if self.is_power_of_two:
            return self.base + (line_addrs & (self.n_sets - 1))
        return self.base + (line_addrs % self.n_sets)


class SetPartitionMap:
    """The per-owner set-translation table the OS programs into the L2."""

    def __init__(self, total_sets: int):
        if total_sets <= 0:
            raise PartitionError("total_sets must be positive")
        self.total_sets = total_sets
        #: Bumped on every mutation; lets callers (the compiled walker's
        #: dense translation table) memoize derived views cheaply.
        self._version = 0
        self._partitions: Dict[int, SetPartition] = {}
        #: Owners deliberately sharing another owner's partition (§4.2:
        #: "or sharing some cache partitions").
        self._aliases: Dict[int, int] = {}
        #: Where owners without an explicit partition go.  ``None``
        #: means conventional indexing over the whole cache; setting a
        #: pool (Kirk's "shared pool" for non-real-time tasks, cited as
        #: [4] by the paper) confines strays so they cannot trample the
        #: exclusive partitions.
        self._default_pool: Optional[SetPartition] = None

    @property
    def partitions(self) -> Dict[int, SetPartition]:
        """Owner id -> partition (a copy; mutate via assign/remove)."""
        return dict(self._partitions)

    @property
    def version(self) -> int:
        """Mutation counter (memoization key for derived tables)."""
        return self._version

    def assign(self, owner: int, base: int, n_sets: int) -> SetPartition:
        """Give ``owner`` the exclusive sets ``[base, base + n_sets)``."""
        if owner == OWNER_SHARED:
            raise PartitionError("cannot assign a partition to the shared pool")
        partition = SetPartition(owner=owner, base=base, n_sets=n_sets)
        if partition.end > self.total_sets:
            raise PartitionError(
                f"partition [{base}, {partition.end}) exceeds {self.total_sets} sets"
            )
        for other in self._partitions.values():
            if other.owner != owner and not (
                partition.end <= other.base or other.end <= partition.base
            ):
                raise PartitionError(
                    f"partition of owner {owner} overlaps owner {other.owner}"
                )
        self._partitions[owner] = partition
        self._version += 1
        return partition

    def alias(self, owner: int, target: int) -> None:
        """Let ``owner`` deliberately share ``target``'s partition.

        This is the paper's "sharing some cache partitions" option:
        e.g. two instances of the same decoder sharing one code
        partition.  The target must hold a real partition (no chains).
        """
        if owner == OWNER_SHARED:
            raise PartitionError("cannot alias the shared pool")
        if target not in self._partitions:
            raise PartitionError(
                f"alias target {target} has no partition of its own"
            )
        if owner in self._partitions:
            raise PartitionError(
                f"owner {owner} already has an exclusive partition"
            )
        self._aliases[owner] = target
        self._version += 1

    def remove(self, owner: int) -> None:
        """Drop the partition of ``owner`` (no-op if absent)."""
        self._partitions.pop(owner, None)
        self._aliases.pop(owner, None)
        stale = [o for o, t in self._aliases.items() if t == owner]
        for o in stale:
            del self._aliases[o]
        self._version += 1

    def clear(self) -> None:
        """Remove all partitions (back to a fully shared cache)."""
        self._partitions.clear()
        self._aliases.clear()
        self._version += 1

    def partition_of(self, owner: int) -> Optional[SetPartition]:
        """The partition of ``owner`` or ``None``."""
        return self._partitions.get(owner)

    def effective_partition(self, owner: int) -> Optional[SetPartition]:
        """The partition ``owner`` actually maps through, aliases resolved.

        ``None`` means the owner uses the default mapping (the default
        pool when configured, else conventional indexing).
        """
        partition = self._partitions.get(owner)
        if partition is None:
            target = self._aliases.get(owner)
            if target is not None:
                return self._partitions[target]
        return partition

    def set_default_pool(self, base: int, n_sets: int) -> SetPartition:
        """Confine unpartitioned owners to a shared pool of sets."""
        pool = SetPartition(owner=OWNER_SHARED, base=base, n_sets=n_sets)
        if pool.end > self.total_sets:
            raise PartitionError("default pool exceeds the cache")
        self._default_pool = pool
        self._version += 1
        return pool

    def clear_default_pool(self) -> None:
        """Back to conventional indexing for unpartitioned owners."""
        self._default_pool = None
        self._version += 1

    @property
    def default_pool(self) -> Optional[SetPartition]:
        """The shared pool for unpartitioned owners, if configured."""
        return self._default_pool

    def map_index(self, owner: int, line_addr: int) -> int:
        """Set index for ``line_addr`` after per-owner translation.

        Unpartitioned owners fall into the default pool when one is
        configured, else get conventional indexing over all sets
        (power-of-two total, which CacheGeometry enforces).
        """
        partition = self._partitions.get(owner)
        if partition is None:
            target = self._aliases.get(owner)
            if target is not None:
                return self._partitions[target].translate(line_addr)
            if self._default_pool is not None:
                return self._default_pool.translate(line_addr)
            return line_addr & (self.total_sets - 1)
        return partition.translate(line_addr)

    def map_index_many(
        self, owners: np.ndarray, line_addrs: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`map_index` over parallel owner/line arrays.

        Applies the default mapping (pool or conventional indexing) to
        everything, then overwrites the positions of each partitioned or
        aliased owner with its translation.  One pass per *distinct*
        owner in the batch, which is tiny next to the batch length.
        """
        owners = np.asarray(owners)
        line_addrs = np.asarray(line_addrs)
        if self._default_pool is not None:
            result = np.asarray(
                self._default_pool.translate_many(line_addrs), dtype=np.int64
            )
        else:
            result = (line_addrs & (self.total_sets - 1)).astype(np.int64)
        if self._partitions or self._aliases:
            for owner in np.unique(owners):
                partition = self.effective_partition(int(owner))
                if partition is None:
                    continue
                mask = owners == owner
                result[mask] = partition.translate_many(line_addrs[mask])
        return result

    def allocated_sets(self) -> int:
        """Total sets claimed by all partitions."""
        return sum(p.n_sets for p in self._partitions.values())

    def validate_disjoint(self) -> None:
        """Check pairwise disjointness (assign() enforces it; belt+braces)."""
        spans = sorted(
            (p.base, p.end, p.owner) for p in self._partitions.values()
        )
        for (b1, e1, o1), (b2, e2, o2) in zip(spans, spans[1:]):
            if e1 > b2:
                raise PartitionError(
                    f"partitions of owners {o1} and {o2} overlap"
                )


class WayPartitionMap:
    """Column caching: owners get exclusive *ways* instead of sets.

    The paper's criticism -- "this partitioning type severely restricts
    the granularity of cache allocation to the associativity of the
    cache" -- is directly visible here: with W ways at most W owners can
    be isolated, and each allocation is a multiple of ``sets x line``
    bytes.
    """

    def __init__(self, total_ways: int):
        if total_ways <= 0:
            raise PartitionError("total_ways must be positive")
        self.total_ways = total_ways
        #: Mutation counter (memoization key for derived tables).
        self._version = 0
        self._ways_of: Dict[int, Tuple[int, ...]] = {}

    def assign(self, owner: int, ways: Iterable[int]) -> Tuple[int, ...]:
        """Give ``owner`` exclusive allocation rights to ``ways``."""
        way_tuple = tuple(sorted(set(int(w) for w in ways)))
        if not way_tuple:
            raise PartitionError("an owner needs at least one way")
        if way_tuple[0] < 0 or way_tuple[-1] >= self.total_ways:
            raise PartitionError(
                f"ways {way_tuple} out of range 0..{self.total_ways - 1}"
            )
        for other, other_ways in self._ways_of.items():
            if other != owner and set(other_ways) & set(way_tuple):
                raise PartitionError(
                    f"ways of owner {owner} overlap owner {other}"
                )
        self._ways_of[owner] = way_tuple
        self._version += 1
        return way_tuple

    def remove(self, owner: int) -> None:
        """Drop ``owner``'s way allocation (online departure).

        The freed ways become assignable to future arrivals; the owner
        itself falls back to all-ways (shared) allocation rights.
        """
        if self._ways_of.pop(owner, None) is not None:
            self._version += 1

    def assignments(self) -> Dict[int, Tuple[int, ...]]:
        """Snapshot of the current owner -> ways map."""
        return dict(self._ways_of)

    def ways_of(self, owner: int) -> Tuple[int, ...]:
        """Allocation ways for ``owner``; unpartitioned owners get all."""
        ways = self._ways_of.get(owner)
        if ways is None:
            return tuple(range(self.total_ways))
        return ways

    def __len__(self) -> int:
        return len(self._ways_of)
