"""Memory-access batches and address-stream coalescing.

Task programs produce :class:`AccessBatch` objects: flat numpy arrays of
byte addresses plus write flags, together with the number of machine
instructions the batch represents (the simulator charges base CPI per
instruction and stall cycles per miss).

The cache walker consumes batches as *runs*: maximal stretches of
back-to-back accesses that touch the same cache line.  For streaming
multimedia traffic this coalesces roughly ``line_size / element_size``
accesses into one cache probe, which is what keeps a pure-Python
simulation of tens of millions of references tractable.  Coalescing is
exact with respect to hit/miss counting: within a run, the first access
decides hit or miss and the remaining ``n - 1`` accesses are guaranteed
hits in the same cache level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.errors import MemoryModelError

__all__ = ["AccessBatch", "coalesce_runs", "interleave_batches"]

_ADDR_DTYPE = np.int64


@dataclass(frozen=True)
class AccessBatch:
    """An ordered sequence of memory references plus instruction count.

    Attributes
    ----------
    addrs:
        Byte addresses, in program order.
    writes:
        Boolean array, ``True`` where the reference is a store.
    instructions:
        Number of instructions this batch stands for.  Defaults (in the
        factories) to ``ceil(len(addrs) / mem_ref_fraction)`` so that a
        typical multimedia instruction mix of ~35 % memory references is
        preserved.
    """

    addrs: np.ndarray
    writes: np.ndarray
    instructions: int

    #: Fraction of instructions that reference memory, used by the
    #: factories when the caller does not give an instruction count.
    MEM_REF_FRACTION = 0.35

    def __post_init__(self) -> None:
        if self.addrs.shape != self.writes.shape:
            raise MemoryModelError("addrs and writes must have the same shape")
        if self.addrs.ndim != 1:
            raise MemoryModelError("AccessBatch arrays must be one-dimensional")
        if self.instructions < 0:
            raise MemoryModelError("instruction count cannot be negative")

    # -- factories ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "AccessBatch":
        """A batch with no references and no instructions."""
        return cls(
            addrs=np.empty(0, dtype=_ADDR_DTYPE),
            writes=np.empty(0, dtype=bool),
            instructions=0,
        )

    @classmethod
    def from_addresses(
        cls,
        addrs: Iterable[int],
        writes=None,
        instructions: int | None = None,
    ) -> "AccessBatch":
        """Build a batch from addresses and an optional write mask.

        ``writes`` may be ``None`` (all loads), a scalar bool, or an
        array-like of the same length as ``addrs``.
        """
        addr_arr = np.asarray(addrs, dtype=_ADDR_DTYPE)
        if writes is None:
            write_arr = np.zeros(addr_arr.shape, dtype=bool)
        elif np.ndim(writes) == 0:
            # Python scalars and 0-d numpy arrays alike broadcast to the
            # whole batch (np.isscalar would reject the latter).
            write_arr = np.full(addr_arr.shape, bool(writes), dtype=bool)
        else:
            write_arr = np.asarray(writes, dtype=bool)
        if instructions is None:
            instructions = int(np.ceil(len(addr_arr) / cls.MEM_REF_FRACTION))
        return cls(addrs=addr_arr, writes=write_arr, instructions=instructions)

    @classmethod
    def concat(cls, batches: Iterable["AccessBatch"]) -> "AccessBatch":
        """Concatenate batches in order, summing instruction counts."""
        batches = list(batches)
        if not batches:
            return cls.empty()
        return cls(
            addrs=np.concatenate([b.addrs for b in batches]),
            writes=np.concatenate([b.writes for b in batches]),
            instructions=sum(b.instructions for b in batches),
        )

    # -- views ---------------------------------------------------------------

    @property
    def n_accesses(self) -> int:
        """Number of memory references in the batch."""
        return int(self.addrs.shape[0])

    def runs(
        self, line_shift: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run-length encode the batch at cache-line granularity.

        Returns ``(line_addrs, counts, write_any, write_all)`` where
        consecutive references to the same line are merged;
        ``write_any[i]`` is True if any reference of run ``i`` was a
        store and ``write_all[i]`` if every reference was.  Write-only
        runs that cover a whole line qualify for
        no-fetch-on-write-allocate in the hierarchy walker.
        """
        return coalesce_runs(self.addrs, self.writes, line_shift)

    def touched_lines(self, line_shift: int) -> np.ndarray:
        """Sorted unique line addresses the batch touches."""
        return np.unique(self.addrs >> line_shift)

    def __len__(self) -> int:
        return self.n_accesses


def coalesce_runs(
    addrs: np.ndarray, writes: np.ndarray, line_shift: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised run-length encoding of an address stream by line.

    A "run" is a maximal stretch of consecutive references that fall in
    the same cache line.  Within one cache level, only the first access
    of a run can miss; the rest are hits, so downstream levels only need
    one probe per run.  Returns ``(line_addrs, counts, write_any,
    write_all)``.
    """
    if addrs.shape[0] == 0:
        empty_lines = np.empty(0, dtype=_ADDR_DTYPE)
        empty_bool = np.empty(0, dtype=bool)
        return empty_lines, np.empty(0, dtype=np.int64), empty_bool, empty_bool
    lines = addrs >> line_shift
    change = np.flatnonzero(lines[1:] != lines[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    counts = np.diff(np.concatenate((starts, [lines.shape[0]])))
    line_addrs = lines[starts]
    if writes.any():
        write_any = np.logical_or.reduceat(writes, starts)
        write_all = np.logical_and.reduceat(writes, starts)
    else:
        write_any = np.zeros(starts.shape, dtype=bool)
        write_all = write_any
    return line_addrs, counts, write_any, write_all


def interleave_batches(batches: List[AccessBatch], chunk: int) -> AccessBatch:
    """Round-robin interleave several batches in ``chunk``-sized pieces.

    Used by tests to emulate fine-grained interleaving of independent
    streams (the worst case for a shared cache).
    """
    if chunk <= 0:
        # A non-positive chunk would make no round-robin progress and
        # loop forever.
        raise MemoryModelError(
            f"interleave chunk must be positive, got {chunk}"
        )
    parts: List[AccessBatch] = []
    offsets = [0] * len(batches)
    remaining = sum(b.n_accesses for b in batches)
    while remaining > 0:
        for i, batch in enumerate(batches):
            start = offsets[i]
            if start >= batch.n_accesses:
                continue
            stop = min(start + chunk, batch.n_accesses)
            parts.append(
                AccessBatch(
                    addrs=batch.addrs[start:stop],
                    writes=batch.writes[start:stop],
                    instructions=0,
                )
            )
            offsets[i] = stop
            remaining -= stop - start
    total_instr = sum(b.instructions for b in batches)
    merged = AccessBatch.concat(parts)
    return AccessBatch(
        addrs=merged.addrs, writes=merged.writes, instructions=total_instr
    )
