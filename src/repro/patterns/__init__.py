"""Address-pattern construction kit.

Task programs describe their memory behaviour as compositions of a small
number of archetypal access patterns, each returning an
:class:`~repro.mem.trace.AccessBatch`:

- :func:`~repro.patterns.streams.stream` -- sequential/strided streaming
  (FIFO payloads, raster scans, frame writes).
- :func:`~repro.patterns.streams.ring` -- streaming through a ring
  buffer with wrap-around (FIFO data).
- :func:`~repro.patterns.blocks.block2d` -- 2-D tile walks (8x8 IDCT
  blocks, macroblocks).
- :func:`~repro.patterns.stencil.stencil` -- neighbourhood convolutions
  (Gaussian low-pass, Sobel operators, non-maximum suppression).
- :func:`~repro.patterns.tables.table_lookup` -- data-dependent lookups
  (Huffman/VLD decoding, quantisation tables), with uniform or Zipf
  index distributions.
- :func:`~repro.patterns.streams.loop_code` -- instruction fetch of a
  loop body walking a code region.

The patterns are what makes the synthetic workloads *address-accurate*
stand-ins for the real binaries (see DESIGN.md, substitution table).
"""

from repro.patterns.blocks import block2d, gather_blocks
from repro.patterns.stencil import stencil
from repro.patterns.streams import loop_code, ring, stream
from repro.patterns.tables import table_lookup, zipf_indices

__all__ = [
    "block2d",
    "gather_blocks",
    "loop_code",
    "ring",
    "stencil",
    "stream",
    "table_lookup",
    "zipf_indices",
]
