"""2-D block (tile) access patterns.

These model the blocked data movement of transform coders: an 8x8 IDCT
reads a block row-wise several times (row pass, column pass), a motion
compensator gathers prediction blocks from arbitrary positions inside a
reference frame.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import MemoryModelError
from repro.mem.address import Region
from repro.mem.trace import AccessBatch

__all__ = ["block2d", "gather_blocks"]


def block2d(
    region: Region,
    row_stride: int,
    x0: int,
    y0: int,
    width: int,
    height: int,
    elem: int = 1,
    write: bool = False,
    passes: int = 1,
    instructions: Optional[int] = None,
) -> AccessBatch:
    """Row-major walk of a ``width x height`` tile at ``(x0, y0)``.

    ``row_stride`` is the byte distance between consecutive rows of the
    underlying 2-D array; ``elem`` the bytes touched per element.
    ``passes`` repeats the walk (e.g. separable transforms touch the
    block twice).
    """
    if width <= 0 or height <= 0:
        raise MemoryModelError("block dimensions must be positive")
    last_byte = (y0 + height - 1) * row_stride + (x0 + width) * elem
    if x0 < 0 or y0 < 0 or last_byte > region.size:
        raise MemoryModelError(
            f"block ({x0},{y0},{width}x{height}) outside region {region.name!r}"
        )
    cols = np.arange(width, dtype=np.int64) * elem
    rows = (y0 + np.arange(height, dtype=np.int64)) * row_stride
    tile = (rows[:, None] + x0 * elem + cols[None, :]).ravel()
    if passes > 1:
        tile = np.tile(tile, passes)
    addrs = region.base + tile
    return AccessBatch.from_addresses(addrs, writes=write, instructions=instructions)


def gather_blocks(
    region: Region,
    row_stride: int,
    positions: Iterable[Tuple[int, int]],
    width: int,
    height: int,
    elem: int = 1,
    write: bool = False,
) -> AccessBatch:
    """Fetch several tiles (motion-compensation style).

    ``positions`` is an iterable of ``(x, y)`` block origins -- for a
    motion compensator these are the motion-vector-displaced positions
    in the reference frame.
    """
    batches = [
        block2d(region, row_stride, x, y, width, height, elem=elem, write=write)
        for x, y in positions
    ]
    if not batches:
        return AccessBatch.empty()
    return AccessBatch.concat(batches)
