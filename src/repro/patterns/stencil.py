"""Neighbourhood (stencil) access patterns for image filters."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MemoryModelError
from repro.mem.address import Region
from repro.mem.trace import AccessBatch

__all__ = ["stencil"]


def stencil(
    src: Region,
    dst: Region,
    row_stride: int,
    width: int,
    rows: int,
    y0: int = 0,
    taps_x: int = 3,
    taps_y: int = 3,
    elem: int = 1,
    instructions: Optional[int] = None,
) -> AccessBatch:
    """A ``taps_x x taps_y`` convolution over ``rows`` image rows.

    For each output pixel the pattern reads the ``taps_y`` neighbouring
    rows (each read of ``taps_x`` consecutive elements) from ``src`` and
    writes one element to ``dst``.  Rows are processed in raster order,
    which gives the characteristic multi-row sliding working set of
    line-based filters (the Canny pipeline of the paper is line based).

    The source reads are emitted row-segment-wise rather than strictly
    per output pixel: each of the ``taps_y`` source rows is read once
    per output row (the ``taps_x`` horizontal re-reads of one element
    are register-allocated by any real compiler and would be guaranteed
    same-line hits anyway).  This keeps the batch compact while
    preserving the cache working set (``taps_y`` rows of ``width``
    elements), the per-line touch counts and the write traffic.  The
    instruction count still reflects the full ``taps_x * taps_y``
    multiply-accumulate work.
    """
    if width <= 0 or rows <= 0:
        raise MemoryModelError("stencil dimensions must be positive")
    needed_src = (y0 + rows + taps_y - 1) * row_stride
    if needed_src > src.size:
        raise MemoryModelError(
            f"stencil reads {needed_src} bytes beyond region {src.name!r}"
        )
    if (y0 + rows) * row_stride > dst.size:
        raise MemoryModelError(
            f"stencil writes beyond region {dst.name!r}"
        )
    addr_parts = []
    write_parts = []
    col_bytes = np.arange(width, dtype=np.int64) * elem
    for row in range(y0, y0 + rows):
        # Read the taps_y source rows feeding this output row.
        for tap in range(taps_y):
            row_base = (row + tap) * row_stride
            reads = src.base + row_base + col_bytes
            addr_parts.append(reads)
            write_parts.append(np.zeros(reads.shape, dtype=bool))
        writes = dst.base + row * row_stride + col_bytes
        addr_parts.append(writes)
        write_parts.append(np.ones(writes.shape, dtype=bool))
    addrs = np.concatenate(addr_parts)
    write_mask = np.concatenate(write_parts)
    if instructions is None:
        # The real kernel does taps_x * taps_y MACs per output pixel.
        instructions = int(rows * width * taps_x * taps_y)
    return AccessBatch(addrs=addrs, writes=write_mask, instructions=instructions)
