"""Sequential, strided, ring-buffer and instruction-fetch patterns."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MemoryModelError
from repro.mem.address import Region
from repro.mem.trace import AccessBatch

__all__ = ["loop_code", "ring", "stream"]


def stream(
    region: Region,
    offset: int = 0,
    nbytes: Optional[int] = None,
    elem: int = 4,
    stride: Optional[int] = None,
    write: bool = False,
    instructions: Optional[int] = None,
) -> AccessBatch:
    """Sequential (or strided) walk over ``nbytes`` of ``region``.

    ``elem`` is the element size touched at each step; ``stride``
    defaults to ``elem`` (dense streaming).  The walk must stay inside
    the region.
    """
    if nbytes is None:
        nbytes = region.size - offset
    if nbytes < 0 or offset < 0 or offset + nbytes > region.size:
        raise MemoryModelError(
            f"stream [{offset}, {offset + nbytes}) outside region {region.name!r}"
        )
    if elem <= 0:
        raise MemoryModelError("elem must be positive")
    step = stride if stride is not None else elem
    if step <= 0:
        raise MemoryModelError("stride must be positive")
    n = max(0, nbytes) // step
    addrs = region.base + offset + np.arange(n, dtype=np.int64) * step
    return AccessBatch.from_addresses(addrs, writes=write, instructions=instructions)


def ring(
    region: Region,
    head: int,
    nbytes: int,
    elem: int = 4,
    write: bool = False,
    instructions: Optional[int] = None,
) -> AccessBatch:
    """Walk ``nbytes`` starting at ``head`` with wrap-around.

    Used for FIFO payloads: the FIFO's ring buffer occupies the whole
    region and ``head`` is the current read or write pointer.
    """
    size = region.size
    if nbytes > size:
        raise MemoryModelError(
            f"ring access of {nbytes} bytes exceeds region {region.name!r}"
        )
    head %= size
    n = nbytes // elem if elem > 0 else 0
    offsets = (head + np.arange(n, dtype=np.int64) * elem) % size
    addrs = region.base + offsets
    return AccessBatch.from_addresses(addrs, writes=write, instructions=instructions)


def loop_code(
    region: Region,
    loop_offset: int,
    loop_bytes: int,
    n_instructions: int,
    bytes_per_instr: int = 16,
) -> AccessBatch:
    """Instruction fetch of a loop body.

    Walks ``loop_bytes`` of the code region cyclically until
    ``n_instructions`` instructions have been fetched.  The returned
    batch carries ``instructions=n_instructions`` (the caller should not
    add a separate instruction count for the same work).

    Fetches are modelled at one access per instruction word;
    ``bytes_per_instr`` approximates the (compressed) VLIW instruction
    size.
    """
    if loop_bytes <= 0 or loop_offset < 0 or loop_offset + loop_bytes > region.size:
        raise MemoryModelError(
            f"loop [{loop_offset}, {loop_offset + loop_bytes}) outside "
            f"code region {region.name!r}"
        )
    if n_instructions <= 0:
        return AccessBatch.empty()
    offsets = (
        np.arange(n_instructions, dtype=np.int64) * bytes_per_instr
    ) % loop_bytes
    addrs = region.base + loop_offset + offsets
    return AccessBatch.from_addresses(
        addrs, writes=False, instructions=n_instructions
    )
