"""Data-dependent table-lookup patterns (VLD / Huffman decoding).

Variable-length decoding walks code tables with data-dependent indices;
the *distribution* of indices is what determines the cache working set.
Short, frequent codes concentrate at the hot end of the table -- a Zipf
distribution is the standard stand-in.  The RNG stream is owned by the
calling task, so runs are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MemoryModelError
from repro.mem.address import Region
from repro.mem.trace import AccessBatch

__all__ = ["table_lookup", "zipf_indices"]


def zipf_indices(
    rng: np.random.Generator, n: int, table_entries: int, skew: float = 1.2
) -> np.ndarray:
    """``n`` Zipf-ish indices in ``[0, table_entries)``.

    Uses the inverse-CDF of a truncated power law, which unlike
    ``rng.zipf`` cannot overflow the table bound.
    """
    if table_entries <= 0:
        raise MemoryModelError("table_entries must be positive")
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    u = rng.random(n)
    if skew == 1.0:
        # log-uniform
        idx = np.floor(table_entries ** u).astype(np.int64) - 1
    else:
        power = 1.0 - skew
        top = table_entries ** power
        idx = np.floor((u * (top - 1.0) + 1.0) ** (1.0 / power)).astype(np.int64) - 1
    return np.clip(idx, 0, table_entries - 1)


def table_lookup(
    region: Region,
    rng: np.random.Generator,
    n: int,
    entry_bytes: int = 8,
    table_bytes: Optional[int] = None,
    offset: int = 0,
    skew: float = 1.2,
    uniform: bool = False,
    instructions: Optional[int] = None,
) -> AccessBatch:
    """``n`` data-dependent reads of a lookup table inside ``region``.

    ``skew`` shapes the Zipf distribution (higher = hotter head);
    ``uniform=True`` spreads lookups evenly (worst case working set).
    """
    if table_bytes is None:
        table_bytes = region.size - offset
    if offset < 0 or table_bytes <= 0 or offset + table_bytes > region.size:
        raise MemoryModelError(
            f"table [{offset}, {offset + table_bytes}) outside {region.name!r}"
        )
    entries = max(1, table_bytes // entry_bytes)
    if uniform:
        idx = rng.integers(0, entries, size=n)
    else:
        idx = zipf_indices(rng, n, entries, skew=skew)
    addrs = region.base + offset + idx.astype(np.int64) * entry_bytes
    return AccessBatch.from_addresses(addrs, writes=False, instructions=instructions)
