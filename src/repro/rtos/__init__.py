"""Run-time operating-system model.

The paper's experiments run under an RTOS that (a) schedules tasks on
the four CPUs -- task migration and dynamic scheduling are allowed on
the experimental system (§3.2), (b) owns its own data/bss regions which
receive exclusive cache partitions (last rows of Tables 1 and 2), and
(c) "offers primitives of cache allocation for tasks and for shared
memory" (§4.2).

- :mod:`repro.rtos.task` -- task control blocks and statistics.
- :mod:`repro.rtos.scheduler` -- static-assignment and migrating
  round-robin scheduling.
- :mod:`repro.rtos.shmalloc` -- the deterministic init-time memory
  allocator that lays out every region (§4.1 fixes the allocation
  order; the malloc-order ablation permutes it).
- :mod:`repro.rtos.cachectl` -- the cache-allocation syscalls: loading
  the shared-memory interval table and programming the L2 set- or
  way-partition maps.
"""

from repro.rtos.cachectl import CacheController
from repro.rtos.scheduler import Scheduler
from repro.rtos.shmalloc import MemoryLayout, build_memory_layout
from repro.rtos.task import Task, TaskState, TaskStats

__all__ = [
    "CacheController",
    "MemoryLayout",
    "Scheduler",
    "Task",
    "TaskState",
    "TaskStats",
    "build_memory_layout",
]
