"""Cache-allocation syscalls.

§4.2: "We have adapted the operating system, such that it manages the
necessary translation tables for the cache.  For this, it offers
primitives of cache allocation for tasks and for shared memory."

:class:`CacheController` is that OS service.  It owns:

- the **interval table** mapping shared-buffer address ranges to owner
  ids (loaded from the memory layout), and
- the **set-partition map** (or way map) of the L2, programmed from an
  allocation in *units* (a unit is a contiguous group of
  ``unit_sets`` cache sets -- the allocation granularity of Tables 1/2).

The controller is deliberately mechanism-only: deciding *how many* units
each owner receives is the optimizer's job (:mod:`repro.core`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import PartitionError
from repro.mem.hierarchy import MemorySystem
from repro.mem.partition import OwnerRegistry, PartitionMode
from repro.rtos.shmalloc import MemoryLayout, SHARED_REGION_NAMES

__all__ = ["CacheController"]


class CacheController:
    """The RTOS's view of the partitionable L2."""

    def __init__(
        self,
        mem_system: MemorySystem,
        registry: OwnerRegistry,
        layout: MemoryLayout,
        unit_sets: int = 8,
    ):
        if unit_sets <= 0:
            raise PartitionError("unit_sets must be positive")
        total_sets = mem_system.config.l2_geometry.sets
        if total_sets % unit_sets:
            raise PartitionError(
                f"unit_sets={unit_sets} does not divide {total_sets} L2 sets"
            )
        self.mem = mem_system
        self.registry = registry
        self.layout = layout
        self.unit_sets = unit_sets
        self.total_units = total_sets // unit_sets
        self._programmed: Dict[str, int] = {}

    # -- owner id helpers ---------------------------------------------------

    @staticmethod
    def task_owner_name(task_name: str) -> str:
        """Canonical owner name of a task."""
        return f"task:{task_name}"

    @staticmethod
    def fifo_owner_name(fifo_name: str) -> str:
        """Canonical owner name of a FIFO buffer."""
        return f"fifo:{fifo_name}"

    @staticmethod
    def frame_owner_name(frame_name: str) -> str:
        """Canonical owner name of a frame buffer."""
        return f"frame:{frame_name}"

    # -- interval table -----------------------------------------------------

    def load_interval_table(self) -> int:
        """Register every shared buffer/region with the resolver.

        Returns the number of intervals loaded.  Shared entities are the
        FIFO rings, the frame buffers and the four shared static regions
        -- everything that must not be attributed to the issuing task.
        """
        table = self.mem.resolver.intervals
        table.clear()
        count = 0
        for fifo_name, region in self.layout.fifo_regions.items():
            owner = self.registry.register(self.fifo_owner_name(fifo_name))
            table.add(region.base, region.end, owner)
            count += 1
        for frame_name, region in self.layout.frame_regions.items():
            owner = self.registry.register(self.frame_owner_name(frame_name))
            table.add(region.base, region.end, owner)
            count += 1
        for shared_name in SHARED_REGION_NAMES:
            region = self.layout.shared_regions[shared_name]
            owner = self.registry.register(shared_name)
            table.add(region.base, region.end, owner)
            count += 1
        return count

    # -- set partitioning -----------------------------------------------------

    def program_set_partitions(
        self, units_by_owner: Dict[str, int], flush: bool = False
    ) -> None:
        """Program the L2 translation table from a unit allocation.

        ``units_by_owner`` maps owner *names* to unit counts.  Units are
        packed contiguously in iteration order; the total must fit.
        Owners not mentioned keep conventional (shared) indexing.

        With ``flush=True`` the caches are flushed and invalidated
        first (:meth:`~repro.mem.hierarchy.MemorySystem.repartition`):
        required when reprogramming a *live* system, because index
        translation moves lines between sets and dirty residents would
        otherwise be lost.  Platforms that program partitions once,
        before any traffic, can skip it (the caches are still empty).
        """
        total = sum(units_by_owner.values())
        if total > self.total_units:
            raise PartitionError(
                f"allocation of {total} units exceeds {self.total_units}"
            )
        for owner_name, units in units_by_owner.items():
            if units <= 0:
                raise PartitionError(
                    f"owner {owner_name!r} allocated {units} units"
                )
        if flush:
            self.mem.repartition()
        # Always quiesce the compiled tier before mutating the maps:
        # a translation-table change against stale C-resident state
        # would diverge the engines (idempotent after repartition()).
        self.mem.quiesce()
        self.mem.set_map.clear()
        self.mem.set_map.clear_default_pool()
        base_unit = 0
        for owner_name, units in units_by_owner.items():
            owner = self.registry.register(owner_name)
            self.mem.set_map.assign(
                owner,
                base=base_unit * self.unit_sets,
                n_sets=units * self.unit_sets,
            )
            base_unit += units
        # Leftover units become the shared pool for unpartitioned
        # owners, so strays can never evict an exclusive partition.
        spare = self.total_units - base_unit
        if spare > 0:
            self.mem.set_map.set_default_pool(
                base=base_unit * self.unit_sets,
                n_sets=spare * self.unit_sets,
            )
        self.mem.set_map.validate_disjoint()
        self._programmed = dict(units_by_owner)

    def program_way_partitions(self, ways_by_owner: Dict[str, Tuple[int, ...]]) -> None:
        """Program way (column-caching) allocations by owner name."""
        self.mem.quiesce()
        for owner_name, ways in ways_by_owner.items():
            owner = self.registry.register(owner_name)
            self.mem.way_map.assign(owner, ways)

    def release_ways(self, owner_name: str) -> None:
        """Drop one owner's way allocation (online departure)."""
        self.mem.quiesce()
        self.mem.way_map.remove(self.registry.register(owner_name))

    def program_set_layout(
        self,
        ranges_by_owner: Dict[str, Tuple[int, int]],
        pool: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Program the set map from explicit ``(base_unit, units)`` ranges.

        Unlike :meth:`program_set_partitions`, which packs owners
        contiguously from unit 0, the caller controls each owner's base
        -- the contract the online engine needs: across a task
        departure, *surviving* owners keep their exact unit ranges (and
        therefore their cache residency).  ``pool`` optionally pins the
        default pool for unpartitioned owners to an explicit range, so
        it too survives transitions unmoved.
        """
        for owner_name, (base_unit, units) in ranges_by_owner.items():
            if units <= 0:
                raise PartitionError(
                    f"owner {owner_name!r} allocated {units} units"
                )
            if base_unit < 0 or base_unit + units > self.total_units:
                raise PartitionError(
                    f"owner {owner_name!r} range ({base_unit}, {units}) "
                    f"outside 0..{self.total_units}"
                )
        self.mem.quiesce()
        self.mem.set_map.clear()
        self.mem.set_map.clear_default_pool()
        for owner_name, (base_unit, units) in ranges_by_owner.items():
            owner = self.registry.register(owner_name)
            self.mem.set_map.assign(
                owner,
                base=base_unit * self.unit_sets,
                n_sets=units * self.unit_sets,
            )
        if pool is not None:
            pool_base, pool_units = pool
            self.mem.set_map.set_default_pool(
                base=pool_base * self.unit_sets,
                n_sets=pool_units * self.unit_sets,
            )
        self.mem.set_map.validate_disjoint()
        self._programmed = {
            owner_name: units
            for owner_name, (_base, units) in ranges_by_owner.items()
        }

    def assign_units(self, owner_name: str, base_unit: int, units: int) -> None:
        """Add one owner's partition at an explicit base (online arrival)."""
        if units <= 0:
            raise PartitionError(f"owner {owner_name!r} allocated {units} units")
        if base_unit < 0 or base_unit + units > self.total_units:
            raise PartitionError(
                f"owner {owner_name!r} range ({base_unit}, {units}) "
                f"outside 0..{self.total_units}"
            )
        self.mem.quiesce()
        owner = self.registry.register(owner_name)
        self.mem.set_map.assign(
            owner,
            base=base_unit * self.unit_sets,
            n_sets=units * self.unit_sets,
        )
        self.mem.set_map.validate_disjoint()
        self._programmed[owner_name] = units

    def release_units(self, owner_name: str) -> None:
        """Drop one owner's set partition (online departure).

        The caller is responsible for flushing the owner's residency
        first (:meth:`~repro.mem.hierarchy.MemorySystem.repartition_owners`);
        afterwards the owner falls back to default-pool indexing.
        """
        self.mem.quiesce()
        self.mem.set_map.remove(self.registry.register(owner_name))
        self._programmed.pop(owner_name, None)

    # -- §4.2 extensions -------------------------------------------------

    @staticmethod
    def task_region_owner_name(task_name: str, part: str) -> str:
        """Owner name of one region of a task (e.g. ``task:vld:code``)."""
        return f"task:{task_name}:{part}"

    def split_task_regions(
        self, task_name: str, parts: Tuple[str, ...] = ("code",)
    ) -> List[str]:
        """Give parts of a task's footprint their own owner ids.

        §4.2: the interval-table mechanism "easily allows for other
        experiments, like for example separating tasks' instructions,
        static initialized variables (data) and static uninitialized
        variables (bss) in the cache".  After splitting, the returned
        owner names can be allocated partitions like any other owner
        (the remaining task regions stay attributed to the task id).
        """
        table = self.mem.resolver.intervals
        names: List[str] = []
        regions = self.layout.task_regions[task_name]
        for part in parts:
            if part not in regions:
                raise PartitionError(
                    f"task {task_name!r} has no region part {part!r}"
                )
            region = regions[part]
            owner_name = self.task_region_owner_name(task_name, part)
            owner = self.registry.register(owner_name)
            table.add(region.base, region.end, owner)
            names.append(owner_name)
        return names

    def share_partition(self, owner_name: str, with_owner_name: str) -> None:
        """Alias ``owner_name`` onto another owner's partition.

        §4.2's "sharing some cache partitions": useful when two owners
        are known to have compatible contents (two instances of the
        same decoder sharing a code partition, say).  Compositionality
        between the *pair* is given up by construction; everyone else
        stays isolated.
        """
        owner = self.registry.register(owner_name)
        target = self.registry.register(with_owner_name)
        self.mem.quiesce()
        self.mem.set_map.alias(owner, target)

    def clear_partitions(self) -> None:
        """Back to a fully shared L2."""
        self.mem.quiesce()
        self.mem.set_map.clear()
        self._programmed = {}

    @property
    def programmed_units(self) -> Dict[str, int]:
        """The last allocation programmed (owner name -> units)."""
        return dict(self._programmed)

    def units_free(self) -> int:
        """Units not claimed by the current allocation."""
        return self.total_units - sum(self._programmed.values())
