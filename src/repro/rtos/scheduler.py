"""Task scheduling policies.

Two policies, matching the two regimes the paper discusses in §3.1:

- ``"static"`` -- every task is bound to one CPU (its ``affinity`` or a
  deterministic round-robin assignment).  This is the regime in which
  the per-processor execution time ``Y(P_k)`` can be computed exactly.
- ``"migrate"`` -- a single global ready queue; any idle CPU picks the
  head, so tasks migrate freely.  This matches the paper's experimental
  system ("task migration and dynamic scheduling are allowed").

Within a CPU, scheduling is cooperative round-robin with a cycle
quantum, enforced by the CPU runner.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.errors import SchedulingError
from repro.rtos.task import Task, TaskState
from repro.sim.kernel import Event, Simulator

__all__ = ["Scheduler"]


class Scheduler:
    """Ready-queue management shared by all CPU runners."""

    POLICIES = ("static", "migrate")

    def __init__(
        self,
        sim: Simulator,
        tasks: Iterable[Task],
        n_cpus: int,
        policy: str = "migrate",
    ):
        if policy not in self.POLICIES:
            raise SchedulingError(
                f"unknown scheduling policy {policy!r}; pick from {self.POLICIES}"
            )
        self.sim = sim
        self.policy = policy
        self.n_cpus = n_cpus
        self.tasks: List[Task] = list(tasks)
        self._live = 0
        self._expected_arrivals = 0
        self._global_queue: Deque[Task] = deque()
        self._cpu_queues: List[Deque[Task]] = [deque() for _ in range(n_cpus)]
        self._assignment: Dict[str, int] = {}
        self._waiters: List[Optional[Event]] = [None] * n_cpus
        self._assign_cpus()

    def _assign_cpus(self) -> None:
        """Fix the static task-to-CPU map (affinity first, then RR)."""
        next_cpu = 0
        for task in self.tasks:
            if task.affinity is not None:
                if not 0 <= task.affinity < self.n_cpus:
                    raise SchedulingError(
                        f"task {task.name!r} pinned to invalid cpu {task.affinity}"
                    )
                self._assignment[task.name] = task.affinity
        for task in self.tasks:
            if task.name not in self._assignment:
                self._assignment[task.name] = next_cpu
                next_cpu = (next_cpu + 1) % self.n_cpus

    # -- queries ------------------------------------------------------------

    @property
    def assignment(self) -> Dict[str, int]:
        """Static task-to-CPU map (meaningful under the static policy)."""
        return dict(self._assignment)

    @property
    def live_tasks(self) -> int:
        """Tasks that have started and not finished."""
        return self._live

    def has_ready(self, cpu: int) -> bool:
        """True when ``next_task(cpu)`` would return a task."""
        if self.policy == "migrate":
            return bool(self._global_queue)
        return bool(self._cpu_queues[cpu])

    def should_preempt(self, cpu: int, quantum_left: int) -> bool:
        """Round-robin preemption decision after one schedule step.

        The quantum only forces a yield when somebody is waiting --
        with an empty ready queue the running task keeps the CPU.  The
        single definition is shared by the CPU runner's event-driven op
        loop and the schedule-compiled segment collector, which also
        passes ``has_ready`` into the C segment walker as its quantum
        stop condition (the queue cannot change before the collector's
        event horizon, so the snapshot stays valid for the whole
        segment).
        """
        return quantum_left <= 0 and self.has_ready(cpu)

    def expecting_arrivals(self) -> bool:
        """True while future task arrivals are reserved.

        CPU runners stay alive (idle) instead of exiting when the live
        count drains to zero, so a task attached later still finds a
        processor to run on.
        """
        return self._expected_arrivals > 0

    # -- lifecycle ---------------------------------------------------------

    def start_all(self, skip: Iterable[str] = ()) -> None:
        """Start every task and enqueue it as ready.

        Tasks named in ``skip`` stay NEW; they join later through
        :meth:`attach` (online arrivals) or never (rejected arrivals).
        """
        deferred = set(skip)
        for task in self.tasks:
            if task.name in deferred:
                continue
            task.start()
            self._live += 1
            self._enqueue(task)
        self._wake_cpus()

    def expect_arrivals(self, count: int = 1) -> None:
        """Reserve ``count`` future arrivals (see :meth:`expecting_arrivals`)."""
        self._expected_arrivals += count

    def arrival_handled(self) -> None:
        """Release one arrival reservation (attached *or* rejected).

        Rejections must release too, and wake idle CPUs: with no live
        tasks and no reservations left the runners may now exit.
        """
        if self._expected_arrivals <= 0:
            raise SchedulingError("arrival_handled() without expect_arrivals()")
        self._expected_arrivals -= 1
        if self._expected_arrivals == 0 and self._live == 0:
            self._wake_cpus()

    def attach(self, task: Task) -> None:
        """Start a deferred task mid-run and enqueue it as ready."""
        if task.state is not TaskState.NEW:
            raise SchedulingError(
                f"cannot attach task {task.name!r} in state {task.state.value}"
            )
        task.start()
        self._live += 1
        self._enqueue(task)
        self._wake_cpus()

    def detach(self, task: Task) -> None:
        """Remove a live task mid-run.

        Works whatever the task is doing: READY tasks leave the queues,
        RUNNING tasks are marked DONE so the owning runner drops them at
        its next yield point (without double accounting), and BLOCKED
        tasks are simply retired -- the platform clears their FIFO
        bookkeeping before calling in here.
        """
        if task.state in (TaskState.NEW, TaskState.DONE):
            raise SchedulingError(
                f"cannot detach task {task.name!r} in state {task.state.value}"
            )
        if task.state is TaskState.READY:
            try:
                self._global_queue.remove(task)
            except ValueError:
                pass
            for queue in self._cpu_queues:
                try:
                    queue.remove(task)
                except ValueError:
                    pass
        self.task_done(task)

    def next_task(self, cpu: int) -> Optional[Task]:
        """Pop the next ready task for ``cpu`` (or ``None``)."""
        queue = (
            self._global_queue if self.policy == "migrate" else self._cpu_queues[cpu]
        )
        if not queue:
            return None
        task = queue.popleft()
        if task.last_cpu is not None and task.last_cpu != cpu:
            task.stats.migrations += 1
        task.last_cpu = cpu
        task.stats.dispatches += 1
        return task

    def make_ready(self, task: Task) -> None:
        """Move a blocked/preempted task back to the ready queue."""
        if task.state is TaskState.DONE:
            raise SchedulingError(f"cannot ready finished task {task.name!r}")
        task.state = TaskState.READY
        self._enqueue(task)
        self._wake_cpus()

    def task_done(self, task: Task) -> None:
        """Account a finished task; wakes idle CPUs when none are left."""
        task.state = TaskState.DONE
        self._live -= 1
        if self._live == 0:
            self._wake_cpus()

    def wait_for_work(self, cpu: int) -> Event:
        """Event that fires when this CPU should re-check its queue."""
        event = self.sim.event()
        self._waiters[cpu] = event
        return event

    # -- internals -----------------------------------------------------------

    def _enqueue(self, task: Task) -> None:
        if self.policy == "migrate":
            self._global_queue.append(task)
        else:
            self._cpu_queues[self._assignment[task.name]].append(task)

    def _wake_cpus(self) -> None:
        for cpu, event in enumerate(self._waiters):
            if event is not None:
                self._waiters[cpu] = None
                event.succeed()

    def blocked_tasks(self) -> List[Task]:
        """Tasks currently blocked on FIFO operations (diagnostics)."""
        return [t for t in self.tasks if t.state is TaskState.BLOCKED]
