"""Init-time memory layout (the RTOS allocator).

§4.1 of the paper: "we assume that the memory allocation is done during
the initialization period and the overall allocation order is always the
same."  :func:`build_memory_layout` is that init-time allocator: it lays
every region of a process network into one linear address space in a
deterministic order -- per task its code/data/bss/stack/heap, then the
shared application and RTOS regions, then every FIFO ring buffer and
frame buffer.

The ``order`` argument permutes the allocation order without changing
any sizes; the malloc-order ablation uses it to show that a *shared*
cache's miss count depends on this order while a partitioned cache's
does not (the compositionality argument of §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.kpn.fifo import ADMIN_BLOCK_BYTES
from repro.kpn.graph import ProcessNetwork
from repro.mem.address import AddressSpace, MemoryMap, Region, RegionKind

__all__ = ["MemoryLayout", "build_memory_layout"]

#: Names of the shared static regions (the last rows of Tables 1/2).
SHARED_REGION_NAMES = ("appl.data", "appl.bss", "rt.data", "rt.bss")


@dataclass
class MemoryLayout:
    """The finished layout plus role indexes used by the platform."""

    memory_map: MemoryMap
    #: task name -> {"code": Region, "data": ..., "bss", "stack", "heap"}
    task_regions: Dict[str, Dict[str, Region]]
    #: "appl.data" / "appl.bss" / "rt.data" / "rt.bss" -> Region
    shared_regions: Dict[str, Region]
    #: fifo name -> ring-buffer Region
    fifo_regions: Dict[str, Region]
    #: fifo name -> byte offset of its admin block inside rt.data
    fifo_admin_offsets: Dict[str, int]
    #: frame-buffer name -> Region
    frame_regions: Dict[str, Region]
    #: the allocation order actually used (region names)
    allocation_order: List[str] = field(default_factory=list)


def _default_order(network: ProcessNetwork) -> List[str]:
    """Deterministic default allocation order of §4.1."""
    order: List[str] = []
    for task_name in network.tasks:
        for part in ("code", "data", "bss", "stack", "heap"):
            order.append(f"{task_name}.{part}")
    order.extend(SHARED_REGION_NAMES)
    order.extend(f"fifo.{name}" for name in network.fifos)
    order.extend(f"frame.{name}" for name in network.frames)
    return order


def build_memory_layout(
    network: ProcessNetwork,
    base: int = 0x1000_0000,
    alignment: int = 64,
    order: Optional[Sequence[str]] = None,
    placement: str = "scatter",
    seed: int = 0,
) -> MemoryLayout:
    """Lay out every region of ``network`` in one address space.

    ``order`` (region names as produced by the default order) permutes
    the allocation sequence; it must be a permutation of the default.
    ``placement`` selects dense packing (``"bump"``) or realistic
    page-scattered placement (``"scatter"``, the default -- see
    :class:`~repro.mem.address.AddressSpace`).  Under scatter placement
    the region *names* fully determine the layout, so ``order`` only
    matters for bump packing -- which is itself the paper's §4.1
    observation that a shared cache is sensitive to allocation order.
    """
    network.validate()
    default_order = _default_order(network)
    if order is None:
        chosen = default_order
    else:
        chosen = list(order)
        if sorted(chosen) != sorted(default_order):
            raise ConfigurationError(
                "custom allocation order must be a permutation of the "
                "default region list"
            )

    # Region name -> (size, kind, owner task name or None).
    sizes: Dict[str, tuple] = {}
    part_kind = {
        "code": RegionKind.CODE,
        "data": RegionKind.DATA,
        "bss": RegionKind.BSS,
        "stack": RegionKind.STACK,
        "heap": RegionKind.HEAP,
    }
    for task_name, spec in network.tasks.items():
        for part, kind in part_kind.items():
            sizes[f"{task_name}.{part}"] = (
                getattr(spec, f"{part}_bytes"), kind, task_name
            )
    rt_data_bytes = max(
        network.rt_data_bytes, ADMIN_BLOCK_BYTES * (len(network.fifos) + 4)
    )
    sizes["appl.data"] = (network.appl_data_bytes, RegionKind.DATA, None)
    sizes["appl.bss"] = (network.appl_bss_bytes, RegionKind.BSS, None)
    sizes["rt.data"] = (rt_data_bytes, RegionKind.DATA, None)
    sizes["rt.bss"] = (network.rt_bss_bytes, RegionKind.BSS, None)
    for fifo_name, fifo in network.fifos.items():
        sizes[f"fifo.{fifo_name}"] = (fifo.buffer_bytes, RegionKind.FIFO, None)
    for frame_name, frame in network.frames.items():
        sizes[f"frame.{frame_name}"] = (frame.size_bytes, RegionKind.FRAME, None)

    space = AddressSpace(base=base, alignment=alignment,
                         placement=placement, seed=seed)
    for region_name in chosen:
        size, kind, owner = sizes[region_name]
        space.allocate(region_name, size, kind, owner_name=owner)

    memory_map = MemoryMap(space)
    task_regions = {
        task_name: {
            part: space.region(f"{task_name}.{part}") for part in part_kind
        }
        for task_name in network.tasks
    }
    shared_regions = {name: space.region(name) for name in SHARED_REGION_NAMES}
    fifo_regions = {
        name: space.region(f"fifo.{name}") for name in network.fifos
    }
    frame_regions = {
        name: space.region(f"frame.{name}") for name in network.frames
    }
    fifo_admin_offsets = {
        name: index * ADMIN_BLOCK_BYTES
        for index, name in enumerate(network.fifos)
    }
    return MemoryLayout(
        memory_map=memory_map,
        task_regions=task_regions,
        shared_regions=shared_regions,
        fifo_regions=fifo_regions,
        fifo_admin_offsets=fifo_admin_offsets,
        frame_regions=frame_regions,
        allocation_order=list(chosen),
    )
