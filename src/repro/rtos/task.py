"""Task control blocks."""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, Optional

from repro.errors import SchedulingError
from repro.kpn.graph import TaskSpec
from repro.kpn.ops import Op
from repro.kpn.process import TaskContext

__all__ = ["Task", "TaskState", "TaskStats"]


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class TaskStats:
    """Per-task execution statistics."""

    instructions: int = 0
    cycles: int = 0
    compute_ops: int = 0
    fifo_reads: int = 0
    fifo_writes: int = 0
    blocked_reads: int = 0
    blocked_writes: int = 0
    dispatches: int = 0
    migrations: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per instruction of this task alone."""
        return self.cycles / self.instructions if self.instructions else 0.0


class Task:
    """A runnable instance of a :class:`~repro.kpn.graph.TaskSpec`."""

    def __init__(self, spec: TaskSpec, owner_id: int, context: TaskContext):
        self.spec = spec
        self.owner_id = owner_id
        self.context = context
        self.state = TaskState.NEW
        self.stats = TaskStats()
        #: CPU the task last ran on (for migration accounting).
        self.last_cpu: Optional[int] = None
        #: Blocking FIFO op to retry on wake-up.
        self.pending_op: Optional[Op] = None
        #: Ops the schedule collector pulled ahead of execution but had
        #: to hand back (segment cut short by a foreign event or the
        #: quantum).  Consumed before the program advances, in order,
        #: so the op stream is identical whether or not -- and on
        #: whichever CPU -- the task resumes.
        self.pending_ops: Deque[Op] = deque()
        self._generator: Optional[Generator[Op, Any, Any]] = None

    @property
    def name(self) -> str:
        """The task's name (from its spec)."""
        return self.spec.name

    @property
    def affinity(self) -> Optional[int]:
        """Pinned CPU, if any."""
        return self.spec.affinity

    def start(self) -> None:
        """Instantiate the program generator; task becomes READY."""
        if self._generator is not None:
            raise SchedulingError(f"task {self.name!r} started twice")
        self._generator = self.spec.program(self.context)
        self.state = TaskState.READY

    def advance(self) -> Optional[Op]:
        """Next op from the program, or ``None`` when it has finished."""
        if self._generator is None:
            raise SchedulingError(f"task {self.name!r} not started")
        try:
            return next(self._generator)
        except StopIteration:
            return None

    def next_op(self) -> Optional[Op]:
        """The next op to execute, in replay-exact order.

        A blocked FIFO op to retry wins, then ops the schedule
        collector handed back, then the program itself.
        """
        if self.pending_op is not None:
            op = self.pending_op
            self.pending_op = None
            return op
        if self.pending_ops:
            return self.pending_ops.popleft()
        return self.advance()

    def __repr__(self) -> str:
        return f"<Task {self.name!r} {self.state.value}>"
