"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured kernel used by every other
subsystem in the library.  The public surface is:

- :class:`~repro.sim.kernel.Simulator` -- the event loop.
- :class:`~repro.sim.kernel.Event`, :class:`~repro.sim.kernel.Timeout`,
  :class:`~repro.sim.kernel.Process` -- the event types processes yield.
- :class:`~repro.sim.kernel.Interrupt` -- exception thrown into a process
  by :meth:`Process.interrupt`.
- :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.Store` -- synchronisation primitives.
- :class:`~repro.sim.rng.RngHub` -- deterministic named random streams.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngHub

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngHub",
    "Simulator",
    "Store",
    "Timeout",
]
