"""Core of the discrete-event simulation kernel.

The kernel follows the classic event-loop design popularised by SimPy:

- A :class:`Simulator` owns a priority queue of scheduled events ordered
  by ``(time, priority, sequence)``.  The ``sequence`` tie-break makes the
  kernel fully deterministic: two events scheduled for the same time fire
  in scheduling order.
- An :class:`Event` can be *pending* (nobody triggered it yet),
  *triggered* (it carries a value and sits in the queue) or *processed*
  (its callbacks have run).
- A :class:`Process` wraps a Python generator.  The generator yields
  events; whenever a yielded event is processed the generator is resumed
  with the event's value (or the event's exception is thrown into it).

The kernel is intentionally small but complete enough for an operating
system model: processes can be interrupted (:meth:`Process.interrupt`),
composed (:class:`AllOf` / :class:`AnyOf`) and can wait on timeouts.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Replan",
    "Simulator",
    "Timeout",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must run before ordinary events
#: scheduled at the same time (used internally for interrupts).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class _Pending:
    """Sentinel for the value of a not-yet-triggered event."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause`` describing
    why the process was interrupted (for example a preemption notice from
    a scheduler).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states:

    ``pending``
        created, not yet triggered; ``triggered`` and ``processed`` are
        both ``False``.
    ``triggered``
        :meth:`succeed` or :meth:`fail` was called; the event sits in the
        simulator queue with its value attached.
    ``processed``
        the simulator popped the event and ran its callbacks.

    Callbacks receive the event itself.  Adding a callback to an already
    processed event schedules an immediate (same-time) delivery, which
    keeps "wait on something that already happened" race-free.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed: bool = False
        self._defused: bool = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event carries a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises :class:`~repro.errors.SimulationError` when read before the
        event triggers.
        """
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        If nothing ever waits on a failed event the simulator re-raises it
        at processing time (errors never pass silently); call
        :meth:`defused` handling to opt out.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise."""
        self._defused = True

    # -- wiring ----------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback is scheduled
        for immediate delivery at the current simulation time.
        """
        if self._processed:
            self.sim._enqueue_call(callback, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously added callback (no-op if absent)."""
        if self.callbacks and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` time units in the future."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=delay, priority=NORMAL)


class Replan(Event):
    """An absolute-time control event that runs an action when processed.

    The online scenario engine schedules one per task arrival/departure.
    Two properties make it interact correctly with segment collection:

    - it is queued at *creation*, so :meth:`Simulator.peek` -- the quiet
      horizon bounding every collected op segment -- never extends past
      the next replan time, and
    - it fires with URGENT priority, so at its exact instant the action
      runs *before* any runner timeout scheduled for the same time: ops
      issued at or after the replan time see the new platform state on
      every execution engine, while ops issued earlier have already
      applied their memory effects (both the per-op and the segment path
      execute an op's accesses at its start time).
    """

    __slots__ = ("action",)

    def __init__(self, sim: "Simulator", at: float, action: Callable[[], None]):
        if at < sim.now:
            raise SimulationError(
                f"replan at {at!r} is in the past (now={sim.now})"
            )
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.action = action
        sim._enqueue(self, delay=at - sim.now, priority=URGENT)
        self.add_callback(self._fire)

    def _fire(self, _event: Event) -> None:
        self.action()


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        sim._enqueue(self, delay=0.0, priority=URGENT)


class Process(Event):
    """A generator-driven simulation process.

    The process is itself an event: it triggers when the generator
    returns (successfully, with the generator's return value) or raises
    (as a failure).  This lets processes wait on each other by yielding
    the other process.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when the
        #: process is being resumed or has terminated).
        self._target: Optional[Event] = None
        init = Initialize(sim)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is rescheduled immediately (urgent priority); the
        event it was waiting on stays valid and may be re-yielded by the
        process if it wants to resume waiting.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self.generator is _current_generator(self.sim):
            raise SimulationError("a process cannot interrupt itself")
        # Stop listening on the current target; the interrupt supersedes.
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        failure = Event(self.sim)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        self.sim._enqueue(failure, delay=0.0, priority=URGENT)
        failure.add_callback(self._resume)

    # -- internal --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.sim._enqueue(self, delay=0.0, priority=NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.sim._enqueue(self, delay=0.0, priority=NORMAL)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = error
                event._defused = True
                continue
            if next_event.sim is not self.sim:
                raise SimulationError(
                    f"process {self.name!r} yielded an event from another simulator"
                )
            if next_event._processed:
                # Already done: loop around synchronously with its value.
                event = next_event
                continue
            self._target = next_event
            next_event.add_callback(self._resume)
            break
        self.sim._active_process = None

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {status}>"


class _Condition(Event):
    """Common machinery for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_n_processed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_processed = 0
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self.events
            if event._processed and event._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _on_child(self, event: Event) -> bool:
        """Handle a child completing; returns True if condition is live."""
        if self.triggered:
            if not event._ok:
                event._defused = True
            return False
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return False
        self._n_processed += 1
        return True


class AllOf(_Condition):
    """Succeeds when *all* child events succeed.

    The value is a dict mapping each child event to its value.  Fails as
    soon as any child fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child(event) and self._n_processed == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a dict of the child events processed so far.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._on_child(event):
            self.succeed(self._collect())


def _current_generator(sim: "Simulator"):
    active = sim._active_process
    return active.generator if active is not None else None


class Simulator:
    """The discrete-event scheduler.

    Typical usage::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(10)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 10 and proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list = []
        self._sequence = 0
        self._events_processed = 0
        self._active_process: Optional[Process] = None

    # -- properties --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events popped and delivered since construction.

        The event count is the kernel-side cost metric of a run: the
        schedule-compiled execution tier exists to shrink it (one
        timeout per flushed segment instead of one per op), and the
        schedule benchmark reports it alongside wall time.
        """
        return self._events_processed

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def schedule_replan(self, at: float, action: Callable[[], None]) -> "Replan":
        """Schedule ``action()`` at absolute time ``at`` (urgent).

        Keeps the run alive until it fires even if all processes idle,
        and bounds collected segments via :meth:`peek`.
        """
        return Replan(self, at, action)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event succeeding at the first success in ``events``."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event)
        )

    def _enqueue_call(self, callback: Callable[[Event], None], event: Event) -> None:
        """Schedule an immediate delivery of ``event`` to ``callback``."""
        bridge = Event(self)
        bridge._ok = event._ok
        bridge._value = event._value
        bridge._defused = True
        bridge.callbacks = []
        self._enqueue(bridge, delay=0.0, priority=NORMAL)
        bridge.add_callback(lambda _bridge: callback(event))

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _priority, _seq, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")  # pragma: no cover
        self._now = time
        self._events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok and not event._defused:
            # A failure nobody listened to: surface it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue drains;
        - a number: run all events up to that time, then set ``now`` to it;
        - an :class:`Event`: run until that event has been processed and
          return its value (re-raising if the event failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before `until` triggered"
                    )
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        This is also the *quiet horizon* the schedule-compiled
        execution tier relies on: the process currently being resumed
        runs synchronously, so until it yields, no state visible to it
        can change before this time -- a collected run of deterministic
        ops may therefore execute in one batch as long as each op
        starts strictly before ``peek()`` (ties hand control back to
        the kernel, which preserves the reference event order).
        """
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator now={self._now} queued={len(self._queue)}>"
