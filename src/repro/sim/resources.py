"""Synchronisation primitives built on the kernel events.

These mirror the classic SimPy resources:

- :class:`Resource` -- ``capacity`` tokens, FIFO queueing of requests.
- :class:`Container` -- a quantity that can be put/got in amounts.
- :class:`Store` -- a FIFO queue of Python objects with capacity.

The KPN FIFO channels (:mod:`repro.kpn.fifo`) implement their own,
cache-aware protocol on top of bare events, but these primitives are used
by the RTOS model, tests and examples.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator

__all__ = ["Container", "Resource", "Store"]


class Resource:
    """A resource with ``capacity`` slots and FIFO request queueing.

    Usage inside a process::

        req = resource.request()
        yield req
        ...critical section...
        resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set = set()
        self._waiting: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        event = self.sim.event()
        if len(self._users) < self.capacity:
            self._users.add(event)
            event.succeed()
        else:
            self._waiting.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release the slot granted to ``request``."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiting:
            # Cancelling a queued request is allowed.
            self._waiting.remove(request)
            return
        else:
            raise SimulationError("release() of a request that holds no slot")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Container:
    """A continuous or discrete quantity with blocking put/get.

    ``get(amount)`` blocks until at least ``amount`` is available;
    ``put(amount)`` blocks until it fits under ``capacity``.  Pending
    operations are served in FIFO order without overtaking, which makes
    the container a fair credit counter.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("Container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("Container init must lie in [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        """Quantity currently stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; the returned event succeeds when it fits."""
        if amount < 0:
            raise SimulationError("Container.put() needs a non-negative amount")
        if amount > self.capacity:
            raise SimulationError("put() amount exceeds container capacity")
        event = self.sim.event()
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; the returned event succeeds when available."""
        if amount < 0:
            raise SimulationError("Container.get() needs a non-negative amount")
        if amount > self.capacity:
            raise SimulationError("get() amount exceeds container capacity")
        event = self.sim.event()
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        """Serve queued puts/gets in FIFO order while progress is possible."""
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of arbitrary items with bounded capacity."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Append ``item``; succeeds once there is room."""
        event = self.sim.event()
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item; succeeds with the item once available."""
        event = self.sim.event()
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self._items) < self.capacity:
                event, item = self._putters.popleft()
                self._items.append(item)
                event.succeed()
                progressed = True
            if self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._items.popleft())
                progressed = True
