"""Deterministic, named random-number streams.

Every stochastic component in the library (VLD table walks, motion-vector
spreads, synthetic traffic) draws from a stream obtained by name from a
single :class:`RngHub`.  Streams are derived by hashing the name into the
root seed, so:

- the same ``(seed, name)`` pair always yields the same stream, and
- adding a new named stream never perturbs existing ones (unlike naive
  sequential ``spawn`` schemes where creation order matters).

This is what makes whole-application simulations bit-reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngHub", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngHub:
    """Factory of independent, reproducible random streams.

    >>> hub = RngHub(seed=42)
    >>> a = hub.stream("apps.mpeg2.vld")
    >>> b = hub.stream("apps.mpeg2.predict")
    >>> a is hub.stream("apps.mpeg2.vld")   # streams are cached
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.seed, name)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngHub":
        """A sub-hub whose streams are namespaced under ``name``."""
        return RngHub(derive_seed(self.seed, f"hub:{name}"))

    def __repr__(self) -> str:
        return f"<RngHub seed={self.seed} streams={len(self._streams)}>"
