"""Tests for tables, charts and report assembly."""

import pytest

from repro.analysis import ascii_bars, format_table, log_bars


def test_format_table_basic():
    text = format_table(("name", "value"), [("a", 1), ("b", 22)],
                        title="T")
    assert "T" in text
    assert "| a" in text and "22 |" in text
    lines = text.splitlines()
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # perfectly rectangular


def test_format_table_row_width_checked():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [("only-one",)])


def test_format_table_number_formatting():
    text = format_table(("n", "v"), [("x", 1234567), ("y", 0.123456)])
    assert "1,234,567" in text
    assert "0.123" in text


def test_ascii_bars_scale():
    text = ascii_bars([("a", 100), ("b", 50)], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_log_bars_pairs():
    text = log_bars([("x", 1000.0, 10.0)], width=20)
    assert "#" in text and "=" in text
    assert "1,000" in text and "10" in text


def test_bars_empty_series():
    assert ascii_bars([]) == ""
    assert log_bars([], title="t") == "t"
