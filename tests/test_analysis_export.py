"""Tests for profile/plan persistence."""

import csv

from repro.analysis.export import (
    load_plan,
    load_profile,
    miss_curves_to_csv,
    save_plan,
    save_profile,
)
from repro.core import MissCurve, PartitionPlan
from repro.core.profiling import ProfileResult


def make_profile():
    profile = ProfileResult(sizes=[1, 2, 4])
    curve = MissCurve("task:a")
    curve.add_sample(1, 100)
    curve.add_sample(1, 120)  # repeated measurement
    curve.add_sample(2, 60)
    curve.add_sample(4, 10)
    profile.curves["task:a"] = curve
    profile.accesses["task:a"] = {1: 500.0, 2: 500.0, 4: 500.0}
    profile.instructions["a"] = 12345
    return profile


def test_profile_roundtrip(tmp_path):
    profile = make_profile()
    path = save_profile(profile, tmp_path / "profile.json")
    loaded = load_profile(path)
    assert loaded.sizes == profile.sizes
    assert loaded.instructions == profile.instructions
    original = profile.curves["task:a"]
    restored = loaded.curves["task:a"]
    for units in (1, 2, 4):
        assert restored.mean(units) == original.mean(units)
    assert loaded.accesses["task:a"][2] == 500.0


def test_plan_roundtrip(tmp_path):
    plan = PartitionPlan.from_parts(
        {"task:a": 4}, {"fifo:f": 2}, total_units=32, predicted_misses=42.0
    )
    path = save_plan(plan, tmp_path / "plan.json")
    loaded = load_plan(path)
    assert loaded.units_by_owner == plan.units_by_owner
    assert loaded.total_units == 32
    assert loaded.predicted_misses == 42.0
    loaded.validate()


def test_miss_curves_csv(tmp_path):
    path = miss_curves_to_csv(make_profile(), tmp_path / "curves.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["owner", "units", "misses"]
    assert ["task:a", "1", "110.0"] in rows
    assert len(rows) == 4
