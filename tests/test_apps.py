"""Tests for the paper's two workloads (structure + behaviour)."""

import pytest

from repro.apps import mpeg2_workload, two_jpeg_canny_workload
from repro.cake import CakeConfig, Platform
from repro.errors import ConfigurationError
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode

PAPER_APP1_TASKS = {
    "FrontEnd1", "IDCT1", "Raster1", "BackEnd1",
    "FrontEnd2", "IDCT2", "Raster2", "BackEnd2",
    "Fr.canny", "LowPass", "HorizSobel", "VertSobel",
    "HorizNMS", "VertNMS", "MaxTreshold",
}
PAPER_APP2_TASKS = {
    "input", "vld", "hdr", "isiq", "memMan", "idct", "add",
    "decMV", "predict", "predictRD", "writeMB", "store", "output",
}


def small_config():
    return CakeConfig(
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
    )


def test_app1_has_the_papers_15_tasks():
    network = two_jpeg_canny_workload(scale="test")
    assert set(network.tasks) == PAPER_APP1_TASKS
    network.validate()


def test_app2_has_the_papers_13_tasks():
    network = mpeg2_workload(scale="test")
    assert set(network.tasks) == PAPER_APP2_TASKS
    network.validate()


def test_unknown_scale_rejected():
    with pytest.raises(ConfigurationError):
        two_jpeg_canny_workload(scale="huge")
    with pytest.raises(ConfigurationError):
        mpeg2_workload(scale="huge")


def test_app1_graph_is_three_chains():
    import networkx as nx
    graph = two_jpeg_canny_workload(scale="test").task_graph()
    components = list(nx.weakly_connected_components(graph))
    assert len(components) == 3  # two decoders + canny
    sizes = sorted(len(c) for c in components)
    assert sizes == [4, 4, 7]


def test_app2_graph_connected_and_acyclic():
    import networkx as nx
    graph = mpeg2_workload(scale="test").task_graph()
    assert nx.is_weakly_connected(graph)
    assert nx.is_directed_acyclic_graph(graph)


def test_app1_runs_shared_and_partitioned():
    for mode in (PartitionMode.SHARED, PartitionMode.SET_PARTITIONED):
        network = two_jpeg_canny_workload(scale="test", frames=1)
        platform = Platform(network, small_config(), mode=mode)
        if mode is PartitionMode.SET_PARTITIONED:
            units = {f"task:{t}": 1 for t in network.tasks}
            platform.cache_controller.program_set_partitions(units)
        metrics = platform.run()
        assert platform.all_done()
        assert metrics.l2_accesses > 0


def test_app2_runs_shared():
    network = mpeg2_workload(scale="test", frames=1)
    platform = Platform(network, small_config())
    metrics = platform.run()
    assert platform.all_done()
    # Every task executed instructions.
    for name in PAPER_APP2_TASKS:
        assert metrics.task_stats[name].instructions > 0, name


def test_app1_every_task_reaches_l2():
    network = two_jpeg_canny_workload(scale="test", frames=1)
    platform = Platform(network, small_config())
    metrics = platform.run()
    for task in PAPER_APP1_TASKS:
        assert f"task:{task}" in metrics.l2_by_owner, task


def test_raster_working_set_scales_with_width():
    wide = two_jpeg_canny_workload(scale="paper")
    narrow = two_jpeg_canny_workload(scale="test")
    assert (
        wide.tasks["Raster1"].heap_bytes > wide.tasks["Raster2"].heap_bytes
    )
    assert (
        wide.tasks["Raster1"].heap_bytes > narrow.tasks["Raster1"].heap_bytes
    )


def test_app2_reference_frames_declared_fully_cacheable():
    network = mpeg2_workload(scale="paper")
    ref = network.frames["mpeg_ref0"]
    assert ref.window_bytes == ref.size_bytes


def test_app_frames_parameter_scales_work():
    one = two_jpeg_canny_workload(scale="test", frames=1)
    two = two_jpeg_canny_workload(scale="test", frames=2)
    p1 = Platform(one, small_config())
    p2 = Platform(two, small_config())
    m1, m2 = p1.run(), p2.run()
    assert m2.instructions > 1.5 * m1.instructions
