"""Integration tests for the platform: scheduling + memory + KPN."""

import pytest

from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.errors import ConfigurationError, SchedulingError
from repro.kpn import FifoSpec, ProcessNetwork, TaskSpec
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode


def small_config(**kwargs):
    defaults = dict(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=128, ways=4, line_size=64),
        ),
    )
    defaults.update(kwargs)
    return CakeConfig(**defaults)


def test_pipeline_runs_to_completion():
    platform = Platform(make_pipeline(n_tokens=8), small_config())
    metrics = platform.run()
    assert platform.all_done()
    assert metrics.instructions > 0
    assert metrics.l2_accesses > 0
    assert metrics.elapsed_cycles > 0
    assert len(metrics.cpus) == 2


def test_run_twice_rejected():
    platform = Platform(make_pipeline(n_tokens=2), small_config())
    platform.run()
    with pytest.raises(SchedulingError):
        platform.run()


def test_deadlock_detected():
    def greedy_consumer(ctx):
        yield ctx.read("in", tokens=2)  # producer only ever sends 1

    def one_shot_producer(ctx):
        yield ctx.write("out")

    network = ProcessNetwork("deadlock")
    network.add_task(TaskSpec("p", one_shot_producer))
    network.add_task(TaskSpec("c", greedy_consumer))
    network.add_fifo(FifoSpec("f", "p", "out", "c", "in",
                              token_bytes=64, capacity_tokens=4))
    platform = Platform(network, small_config())
    with pytest.raises(SchedulingError, match="deadlock"):
        platform.run()


def test_max_cycles_horizon():
    platform = Platform(make_pipeline(n_tokens=500), small_config())
    metrics = platform.run(max_cycles=10_000)
    assert metrics.elapsed_cycles == 10_000
    assert not platform.all_done()


def test_determinism_across_identical_platforms():
    def run_once():
        platform = Platform(make_pipeline(n_tokens=16), small_config())
        metrics = platform.run()
        return (
            metrics.l2_misses,
            metrics.elapsed_cycles,
            sorted((n, s.misses) for n, s in metrics.l2_by_owner.items()),
        )

    assert run_once() == run_once()


def test_seed_changes_layout_and_misses():
    base = run1 = Platform(make_pipeline(n_tokens=16), small_config())
    m1 = run1.run()
    run2 = Platform(make_pipeline(n_tokens=16), small_config(seed=999))
    m2 = run2.run()
    # Different scatter layouts -> different shared-cache behaviour.
    assert m1.l2_misses != m2.l2_misses


def test_static_vs_migrate_scheduling_both_complete():
    for policy in ("static", "migrate"):
        platform = Platform(
            make_pipeline(n_tokens=8), small_config(scheduling=policy)
        )
        platform.run()
        assert platform.all_done()


def test_task_stats_collected():
    platform = Platform(make_pipeline(n_tokens=8), small_config())
    metrics = platform.run()
    stage0 = metrics.task_stats["stage0"]
    assert stage0.instructions > 0
    assert stage0.fifo_writes == 8
    stage2 = metrics.task_stats["stage2"]
    assert stage2.fifo_reads == 8


def test_owner_attribution_covers_fifos_and_tasks():
    platform = Platform(make_pipeline(n_tokens=8), small_config())
    metrics = platform.run()
    owners = set(metrics.l2_by_owner)
    assert any(name.startswith("task:") for name in owners)
    assert any(name.startswith("fifo:") for name in owners)
    assert "rt.data" in owners  # FIFO admin traffic


def test_partitioned_run_isolates_owners():
    network = make_pipeline(n_tokens=16, work_bytes=8192)
    platform = Platform(
        network, small_config(), mode=PartitionMode.SET_PARTITIONED
    )
    units = {}
    for task in network.tasks:
        units[f"task:{task}"] = 2
    for fifo in network.fifos:
        units[f"fifo:{fifo}"] = 1
    platform.cache_controller.program_set_partitions(units)
    metrics = platform.run()
    # Exclusive partitions: cross-owner interference is exactly zero
    # among partitioned owners (unpartitioned owners share the pool).
    partitioned = {platform.registry.id_of(name) for name in units}
    cross = sum(
        count
        for (evictor, victim), count in
        platform.mem.l2_stats.eviction_matrix.items()
        if evictor != victim
        and (evictor in partitioned or victim in partitioned)
    )
    assert cross == 0


def test_cpi_definition():
    platform = Platform(make_pipeline(n_tokens=8), small_config())
    metrics = platform.run()
    cpu = metrics.cpus[0]
    if cpu.instructions:
        assert cpu.cpi == pytest.approx(
            (cpu.busy_cycles + cpu.switch_cycles) / cpu.instructions
        )
    assert metrics.worst_cpu_cycles >= max(
        c.total_cycles for c in metrics.cpus
    ) - 1e-9


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CakeConfig(n_cpus=0)
    with pytest.raises(ConfigurationError):
        CakeConfig(scheduling="chaotic")
    with pytest.raises(ConfigurationError):
        CakeConfig(allocation_unit_sets=3)  # does not divide 2048


def test_config_l2_resizing():
    config = CakeConfig()
    bigger = config.with_l2_size(1024 * 1024)
    assert bigger.hierarchy.l2_geometry.sets == 4096
    explicit = config.with_l2_sets(512)
    assert explicit.hierarchy.l2_geometry.sets == 512
    assert config.unit_bytes == 8 * 4 * 64
    assert config.n_allocation_units == 256


def test_with_l2_sets_validates_at_construction():
    config = CakeConfig()
    with pytest.raises(ConfigurationError):
        config.with_l2_sets(100)  # not a power of two
    with pytest.raises(ConfigurationError):
        config.with_l2_sets(0)
    with pytest.raises(ConfigurationError):
        config.with_l2_sets(-512)
    with pytest.raises(ConfigurationError):
        # Power of two, but not divisible into 8-set allocation units.
        config.with_l2_sets(4)


def test_with_l2_ways_keeps_capacity():
    config = CakeConfig()
    eight_way = config.with_l2_ways(8)
    assert eight_way.hierarchy.l2_geometry.ways == 8
    assert eight_way.hierarchy.l2_geometry.size_bytes == \
        config.hierarchy.l2_geometry.size_bytes
    assert eight_way.hierarchy.l2_geometry.sets == 1024
    with pytest.raises(ConfigurationError):
        config.with_l2_ways(0)
    with pytest.raises(ConfigurationError):
        config.with_l2_ways(3)  # 512 KB does not split into 3 ways
