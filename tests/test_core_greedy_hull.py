"""Focused tests for the greedy solver's hull preprocessing and repair
pass -- the non-convex miss curves of real workloads are exactly where
naive marginal-gain greedy fails."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mckp import (
    MckpItem,
    _convex_hull,
    solve_mckp_dp,
    solve_mckp_greedy,
)


def test_hull_drops_dominated_points():
    hull = _convex_hull([(1, 100.0), (2, 100.0), (4, 100.0), (8, 10.0)])
    assert hull == [(1, 100.0), (8, 10.0)]


def test_hull_keeps_cheapest_of_equals():
    hull = _convex_hull([(1, 50.0), (2, 50.0)])
    assert hull == [(1, 50.0)]


def test_hull_convexifies_slopes():
    # Slopes: 1->2 = 10/u, 2->4 = 30/u (increasing) -> drop (2, 90).
    hull = _convex_hull([(1, 100.0), (2, 90.0), (4, 30.0)])
    assert hull == [(1, 100.0), (4, 30.0)]


def test_greedy_handles_flat_then_cliff_curves():
    """The Raster1 shape: flat for small sizes, cliff at the working
    set.  Plain greedy stalls on the flat prefix; hull greedy does not."""
    items = [
        MckpItem("cliff", ((1, 5000.0), (2, 5000.0), (4, 4900.0),
                           (8, 4800.0), (16, 4700.0), (32, 10.0))),
        MckpItem("convex", ((1, 500.0), (2, 250.0), (4, 120.0),
                            (8, 60.0), (16, 30.0), (32, 15.0))),
    ]
    capacity = 40
    dp = solve_mckp_dp(items, capacity)
    greedy = solve_mckp_greedy(items, capacity)
    assert greedy.allocation["cliff"] == 32 == dp.allocation["cliff"]
    assert greedy.total_misses <= dp.total_misses * 1.05


def test_greedy_repair_spends_stranded_budget():
    # The first upgrade of "big" (1 -> 32) is unaffordable after "small"
    # eats some budget; the repair pass must still grab a middle step.
    items = [
        MckpItem("big", ((1, 1000.0), (8, 400.0), (32, 0.0))),
        MckpItem("small", ((1, 500.0), (2, 0.0))),
    ]
    greedy = solve_mckp_greedy(items, capacity=12)
    assert greedy.allocation["small"] == 2
    assert greedy.allocation["big"] == 8
    assert greedy.total_misses == 400.0


@settings(max_examples=50, deadline=None)
@given(capacity=st.integers(2, 40), data=st.data())
def test_property_greedy_feasible_and_reasonable(capacity, data):
    """Greedy always returns a feasible solution, never worse than the
    all-minimal allocation, on random monotone curves."""
    n_items = data.draw(st.integers(1, 4))
    items = []
    for i in range(n_items):
        sizes = sorted(data.draw(st.sets(st.integers(1, 10), min_size=1,
                                         max_size=4)))
        misses = sorted(
            (float(data.draw(st.integers(0, 1000))) for _ in sizes),
            reverse=True,
        )
        items.append(MckpItem(f"i{i}", tuple(zip(sizes, misses))))
    minimal = sum(item.choices[0][0] for item in items)
    if minimal > capacity:
        return  # infeasible instances are covered elsewhere
    greedy = solve_mckp_greedy(items, capacity)
    assert greedy.total_units <= capacity
    baseline = sum(item.choices[0][1] for item in items)
    assert greedy.total_misses <= baseline + 1e-9
    dp = solve_mckp_dp(items, capacity)
    assert greedy.total_misses >= dp.total_misses - 1e-9
