"""Tests for the MCKP solvers (DP, greedy, brute force, MILP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mckp import (
    MckpItem,
    items_from_curves,
    solve_mckp_bruteforce,
    solve_mckp_dp,
    solve_mckp_greedy,
)
from repro.core.milp import solve_mckp_milp
from repro.core.misscurve import MissCurve
from repro.errors import OptimizationError


def item(name, *choices):
    return MckpItem(name=name, choices=tuple(choices))


def test_dp_picks_the_obvious_optimum():
    items = [
        item("a", (1, 100), (2, 10)),
        item("b", (1, 50), (2, 45)),
    ]
    solution = solve_mckp_dp(items, capacity=3)
    assert solution.allocation == {"a": 2, "b": 1}
    assert solution.total_misses == 60


def test_dp_infeasible():
    items = [item("a", (4, 10))]
    with pytest.raises(OptimizationError):
        solve_mckp_dp(items, capacity=3)


def test_dp_prefers_spare_units_at_equal_misses():
    items = [item("a", (1, 10), (2, 10))]
    solution = solve_mckp_dp(items, capacity=4)
    assert solution.allocation["a"] == 1


def test_greedy_on_convex_curves_matches_dp():
    items = [
        item("a", (1, 100), (2, 60), (4, 30), (8, 25)),
        item("b", (1, 80), (2, 40), (4, 35), (8, 34)),
        item("c", (1, 10), (2, 9), (4, 9), (8, 9)),
    ]
    for capacity in (3, 6, 10, 24):
        dp = solve_mckp_dp(items, capacity)
        greedy = solve_mckp_greedy(items, capacity)
        assert greedy.total_units <= capacity
        assert greedy.total_misses <= dp.total_misses * 1.25 + 1e-9


def test_greedy_infeasible():
    with pytest.raises(OptimizationError):
        solve_mckp_greedy([item("a", (4, 1))], capacity=2)


def test_milp_matches_dp():
    items = [
        item("a", (1, 100), (2, 60), (4, 30)),
        item("b", (1, 80), (2, 40), (4, 12)),
        item("c", (2, 55), (4, 20), (8, 19)),
    ]
    for capacity in (5, 8, 16):
        dp = solve_mckp_dp(items, capacity)
        milp = solve_mckp_milp(items, capacity)
        assert milp.total_misses == pytest.approx(dp.total_misses)
        assert milp.total_units <= capacity


def test_milp_empty():
    assert solve_mckp_milp([], 10).total_misses == 0.0


def test_item_validation():
    with pytest.raises(OptimizationError):
        MckpItem("x", choices=())
    with pytest.raises(OptimizationError):
        MckpItem("x", choices=((2, 1.0), (1, 2.0)))
    with pytest.raises(OptimizationError):
        MckpItem("x", choices=((0, 1.0),))


def test_items_from_curves_samples_menu():
    curves = [MissCurve.from_pairs("a", [(1, 10), (4, 2)])]
    items = items_from_curves(curves, sizes=[1, 2, 4])
    assert items[0].choices == ((1, 10.0), (2, 10.0), (4, 2.0))


@settings(max_examples=40, deadline=None)
@given(
    n_items=st.integers(1, 4),
    capacity=st.integers(1, 20),
    data=st.data(),
)
def test_property_dp_equals_bruteforce(n_items, capacity, data):
    items = []
    for i in range(n_items):
        n_choices = data.draw(st.integers(1, 3))
        sizes = sorted(data.draw(
            st.lists(st.integers(1, 8), min_size=n_choices,
                     max_size=n_choices, unique=True)
        ))
        choices = tuple(
            (size, float(data.draw(st.integers(0, 100)))) for size in sizes
        )
        items.append(MckpItem(f"i{i}", choices))
    try:
        dp = solve_mckp_dp(items, capacity)
    except OptimizationError:
        with pytest.raises(OptimizationError):
            solve_mckp_bruteforce(items, capacity)
        return
    brute = solve_mckp_bruteforce(items, capacity)
    assert dp.total_misses == pytest.approx(brute.total_misses)
    assert dp.total_units <= capacity
