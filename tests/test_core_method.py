"""Tests for allocation policies, profiling, throughput/power and the
end-to-end method at test scale."""

from functools import partial

import pytest

from repro.apps import two_jpeg_canny_workload
from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig
from repro.core import (
    BufferPolicy,
    CompositionalMethod,
    EnergyModel,
    MethodConfig,
    PartitionPlan,
    ThroughputModel,
    assign_tasks_lpt,
    profile_miss_curves,
)
from repro.core.allocation import buffer_units
from repro.core.profiling import optimized_item_names
from repro.errors import OptimizationError
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


def small_config():
    return CakeConfig(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
    )


# -- buffer policies -----------------------------------------------------------


def test_buffer_units_all_hit_covers_rings():
    network = make_pipeline(token_bytes=2048, capacity_tokens=4)
    config = small_config()
    units = buffer_units(network, config.unit_bytes, BufferPolicy.ALL_HIT)
    assert units["fifo:link0"] == 4  # 8 KB ring / 2 KB units


def test_buffer_units_all_miss_minimal():
    network = make_pipeline(token_bytes=2048, capacity_tokens=4)
    units = buffer_units(network, small_config().unit_bytes,
                         BufferPolicy.ALL_MISS)
    assert all(v == 1 for k, v in units.items() if k.startswith("fifo:"))


def test_buffer_units_undersized_half():
    network = make_pipeline(token_bytes=2048, capacity_tokens=4)
    units = buffer_units(network, small_config().unit_bytes,
                         BufferPolicy.UNDERSIZED)
    assert units["fifo:link0"] == 2


# -- partition plan -----------------------------------------------------------


def test_plan_merge_and_rows():
    plan = PartitionPlan.from_parts(
        optimized={"task:a": 4, "appl.data": 2},
        buffers={"fifo:f": 1, "frame:g": 2},
        total_units=16,
    )
    assert plan.used_units == 9 and plan.spare_units == 7
    assert plan.task_rows() == [("a", 4)]
    assert plan.data_rows() == [("appl.data", 2)]
    assert sorted(plan.buffer_rows()) == [("fifo:f", 1), ("frame:g", 2)]
    assert plan.units_of("task:a") == 4
    assert plan.units_of("ghost") == 0


def test_plan_double_allocation_rejected():
    with pytest.raises(OptimizationError):
        PartitionPlan.from_parts(
            optimized={"task:a": 4}, buffers={"task:a": 1}, total_units=16
        )


def test_plan_overflow_rejected():
    with pytest.raises(OptimizationError):
        PartitionPlan.from_parts(
            optimized={"task:a": 20}, buffers={}, total_units=16
        )


# -- profiling ------------------------------------------------------------


def test_profile_produces_monotone_curves():
    builder = partial(make_pipeline, n_tokens=8, work_bytes=4096)
    profile = profile_miss_curves(builder, small_config(), sizes=[1, 2, 4])
    network = builder()
    for item in optimized_item_names(network):
        points = profile.curve(item).monotone_means()
        values = [m for _s, m in points]
        assert values == sorted(values, reverse=True)
    assert profile.instructions["stage0"] > 0


# -- throughput & power ----------------------------------------------------


def test_lpt_balances_two_cpus():
    times = {"a": 10.0, "b": 9.0, "c": 5.0, "d": 4.0}
    assignment = assign_tasks_lpt(times, n_cpus=2)
    loads = [0.0, 0.0]
    for name, cpu in assignment.items():
        loads[cpu] += times[name]
    assert abs(loads[0] - loads[1]) <= 1.0


def test_throughput_model_prefers_bigger_allocations():
    builder = partial(make_pipeline, n_tokens=8, work_bytes=4096)
    config = small_config()
    profile = profile_miss_curves(builder, config, sizes=[1, 4])
    model = ThroughputModel(config, profile)
    small = model.task_time("stage1", 1)
    big = model.task_time("stage1", 4)
    assert big <= small
    assignment = {name: 0 for name in profile.instructions}
    alloc = {f"task:{name}": 4 for name in profile.instructions}
    assert model.throughput(assignment, alloc) > 0
    times = model.processor_times(assignment, alloc)
    assert times[1] == 0.0


def test_energy_model_orders_configurations():
    from repro.cake.metrics import RunMetrics

    light = RunMetrics(elapsed_cycles=1000, dram_lines=10)
    heavy = RunMetrics(elapsed_cycles=1000, dram_lines=1000)
    model = EnergyModel()
    assert model.evaluate(heavy).total > model.evaluate(light).total
    assert model.improvement(heavy, light) > 0


# -- the end-to-end method ----------------------------------------------------


@pytest.fixture(scope="module")
def method_report():
    method = CompositionalMethod(
        partial(make_pipeline, n_stages=4, n_tokens=16, work_bytes=8192),
        small_config(),
        MethodConfig(sizes=[1, 2, 4, 8], solver="dp"),
    )
    return method.run()


def test_method_plan_fits(method_report):
    assert method_report.plan.used_units <= method_report.plan.total_units
    assert method_report.plan.predicted_misses is not None


def test_method_removes_interference(method_report):
    assert method_report.partitioned_metrics.l2_cross_evictions == 0
    assert method_report.shared_metrics.l2_cross_evictions >= 0


def test_method_is_compositional(method_report):
    # The paper's Figure-3 criterion, at its 2% bound.
    assert method_report.compositionality.max_relative_difference <= 0.02


def test_method_summary_mentions_key_numbers(method_report):
    text = method_report.summary()
    assert "L2 miss rate" in text and "compositionality" in text


def _report_with_misses(shared_misses, partitioned_misses):
    """A MethodReport shell with prescribed L2 miss totals."""
    from repro.cake.metrics import RunMetrics
    from repro.core import CompositionalityReport, ProfileResult
    from repro.core.method import MethodReport
    from repro.mem.cache import OwnerStats

    def metrics(misses):
        return RunMetrics(l2_by_owner={
            "task:a": OwnerStats(accesses=max(misses, 1), misses=misses)
        })

    return MethodReport(
        app_name="synthetic",
        profile=ProfileResult(),
        plan=PartitionPlan(units_by_owner={"task:a": 1}, total_units=4),
        solution=None,
        shared_metrics=metrics(shared_misses),
        partitioned_metrics=metrics(partitioned_misses),
        compositionality=CompositionalityReport(),
    )


def test_miss_reduction_factor_perfect_run_is_infinite():
    report = _report_with_misses(shared_misses=100, partitioned_misses=0)
    assert report.miss_reduction_factor == float("inf")
    # 0.0 would read as "no reduction"; the summary renders the infinity.
    assert "∞" in report.summary()


def test_miss_reduction_factor_degenerate_and_finite_cases():
    assert _report_with_misses(0, 0).miss_reduction_factor == 1.0
    assert _report_with_misses(100, 20).miss_reduction_factor == \
        pytest.approx(5.0)


def test_format_reduction_factor():
    from repro.core import format_reduction_factor

    assert format_reduction_factor(float("inf")) == "∞"
    assert format_reduction_factor(5.0) == "5.00x"


def test_method_solvers_agree():
    builder = partial(make_pipeline, n_stages=3, n_tokens=8)
    config = small_config()
    reports = {}
    for solver in ("dp", "milp"):
        method = CompositionalMethod(
            builder, config, MethodConfig(sizes=[1, 2, 4], solver=solver)
        )
        profile = method.profile()
        optimization = method.optimize(profile)
        # The plan embeds the solver's explicit allocation plus buffers.
        assert all(
            optimization.plan.units_by_owner[owner] == units
            for owner, units in optimization.solution.allocation.items()
        )
        reports[solver] = optimization.plan.predicted_misses
    assert reports["dp"] == pytest.approx(reports["milp"])


def test_optimize_returns_plan_and_solution_explicitly():
    method = CompositionalMethod(
        partial(make_pipeline, n_stages=3, n_tokens=8),
        small_config(),
        MethodConfig(sizes=[1, 2]),
    )
    optimization = method.optimize(method.profile())
    assert optimization.plan.predicted_misses == pytest.approx(
        optimization.solution.total_misses
    )
    # The old hidden side-channel is gone.
    assert not hasattr(method, "_last_solution")


def test_method_rejects_unknown_solver():
    with pytest.raises(OptimizationError):
        MethodConfig(solver="oracle")


@pytest.mark.parametrize("repeats", [0, -3])
def test_method_rejects_non_positive_repeats(repeats):
    with pytest.raises(OptimizationError):
        MethodConfig(profile_repeats=repeats)


@pytest.mark.parametrize(
    "sizes",
    [[], [0, 1], [-2, 4], [1, 2, 2], [4, 2, 8], [1.5, 2]],
)
def test_method_rejects_bad_sizes_menus(sizes):
    with pytest.raises(OptimizationError):
        MethodConfig(sizes=sizes)


def test_method_accepts_ascending_sizes():
    config = MethodConfig(sizes=[1, 3, 9], profile_repeats=2)
    assert list(config.sizes) == [1, 3, 9]
