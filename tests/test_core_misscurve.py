"""Tests for miss curves."""

import pytest

from repro.core.misscurve import MissCurve
from repro.errors import OptimizationError


def curve_from(pairs):
    return MissCurve.from_pairs("t", pairs)


def test_mean_of_repeated_samples():
    curve = MissCurve("t")
    curve.add_sample(4, 100)
    curve.add_sample(4, 200)
    assert curve.mean(4) == 150


def test_monotone_cleanup():
    curve = curve_from([(1, 100), (2, 120), (4, 50), (8, 60)])
    points = dict(curve.monotone_means())
    assert points[2] == 100  # lifted down to the running minimum
    assert points[8] == 50


def test_misses_at_interpolates_conservatively():
    curve = curve_from([(2, 100), (8, 20)])
    assert curve.misses_at(2) == 100
    assert curve.misses_at(4) == 100  # flat until the next sample
    assert curve.misses_at(8) == 20
    assert curve.misses_at(100) == 20  # flat beyond
    assert curve.misses_at(1) == 100  # conservative below


def test_marginal_gains():
    curve = curve_from([(1, 100), (2, 60), (4, 10)])
    gains = curve.marginal_gains()
    assert gains == [(1, 2, 40), (2, 4, 50)]


def test_knee():
    curve = curve_from([(1, 1000), (2, 500), (4, 100), (8, 98), (16, 97)])
    assert curve.knee(tolerance=0.02) == 4


def test_validation():
    curve = MissCurve("t")
    with pytest.raises(OptimizationError):
        curve.add_sample(0, 10)
    with pytest.raises(OptimizationError):
        curve.add_sample(1, -5)
    with pytest.raises(OptimizationError):
        curve.mean(4)
    with pytest.raises(OptimizationError):
        MissCurve("x").misses_at(1)
