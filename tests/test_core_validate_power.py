"""Tests for the compositionality validator and the energy model."""

import pytest

from repro.cake.metrics import RunMetrics
from repro.core import EnergyModel, MissCurve, PartitionPlan
from repro.core.validate import (
    CompositionalityReport,
    compare_expected_simulated,
)
from repro.core.profiling import ProfileResult
from repro.mem.cache import OwnerStats


def make_profile():
    profile = ProfileResult(sizes=[1, 2])
    profile.curves["task:a"] = MissCurve.from_pairs(
        "task:a", [(1, 100), (2, 40)]
    )
    profile.curves["task:b"] = MissCurve.from_pairs(
        "task:b", [(1, 60), (2, 50)]
    )
    return profile


def make_metrics(a_misses, b_misses):
    metrics = RunMetrics()
    metrics.l2_by_owner["task:a"] = OwnerStats(accesses=1000, misses=a_misses)
    metrics.l2_by_owner["task:b"] = OwnerStats(accesses=1000, misses=b_misses)
    return metrics


def test_perfect_match_is_compositional():
    plan = PartitionPlan.from_parts(
        {"task:a": 2, "task:b": 1}, {}, total_units=16
    )
    report = compare_expected_simulated(
        make_profile(), plan, make_metrics(40, 60), ["task:a", "task:b"]
    )
    assert report.max_relative_difference == 0.0
    assert report.is_compositional()


def test_deviation_detected():
    plan = PartitionPlan.from_parts(
        {"task:a": 2, "task:b": 1}, {}, total_units=16
    )
    metrics = make_metrics(40, 90)  # task:b misses 30 more than expected
    report = compare_expected_simulated(
        make_profile(), plan, metrics, ["task:a", "task:b"]
    )
    assert report.max_relative_difference == pytest.approx(30 / 130)
    assert not report.is_compositional(tolerance=0.02)
    name, expected, simulated = report.worst_item()
    assert name == "task:b" and expected == 60 and simulated == 90


def test_empty_report_is_trivially_compositional():
    report = CompositionalityReport()
    assert report.max_relative_difference == 0.0
    assert report.is_compositional()


def test_energy_breakdown_components():
    metrics = RunMetrics(elapsed_cycles=10_000, dram_lines=100)
    metrics.l2_by_owner["x"] = OwnerStats(accesses=5000)
    model = EnergyModel(l2_access_energy=1.0, dram_line_energy=20.0,
                        static_power_per_cycle=0.001)
    breakdown = model.evaluate(metrics)
    assert breakdown.l2_energy == 5000
    assert breakdown.dram_energy == 2000
    assert breakdown.static_energy == 10
    assert breakdown.total == 7010


def test_energy_improvement_zero_baseline():
    model = EnergyModel()
    empty = RunMetrics()
    assert model.improvement(empty, empty) == 0.0
