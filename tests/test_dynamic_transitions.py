"""Online transitions: the dynamic scenario engine end to end.

The contract under test is the paper's compositional invariant taken
online: tasks join and leave a *running* platform, only the changed
task set is re-optimized, and the three execution engines stay
bit-identical through every transition -- including the awkward spots
(a departure while FIFO-blocked, an arrival in the middle of another
task's quantum, a replan landing exactly on a whole-schedule segment
horizon).  Also covered here: the admission-control rejection reasons,
the first-fit unit ledger, the zero-reprofile warm-arrival guarantee,
the transitions axis of scenario identity, and the satellite
regressions (way-vs-set plan divergence; compiled-state quiescing on
every map mutation).
"""

import pytest

from repro.cake.config import CakeConfig
from repro.cake.platform import Platform
from repro.core.method import MethodConfig
from repro.core.mckp import items_from_curves, solve_mckp_dp
from repro.core.misscurve import MissCurve
from repro.core.allocation import optimize_way_assignment
from repro.core.profiling import profile_miss_curves, profiling_passes
from repro.exp.dynamic import DynamicScenario, _UnitLedger, merge_networks
from repro.exp.scenario import (
    Scenario,
    TransitionSpec,
    WorkloadSpec,
    run_metrics_to_payload,
)
from repro.exp.workloads import workload_builder
from repro.kpn.graph import FifoSpec, ProcessNetwork, TaskSpec
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode

ENGINES = ("reference", "fast", "compiled")

PIPELINE_KWARGS = {"n_stages": 4, "n_tokens": 16, "token_bytes": 1024,
                   "work_bytes": 8192, "capacity_tokens": 2}
LATE_KWARGS = {"n_stages": 2, "n_tokens": 8, "token_bytes": 512,
               "work_bytes": 4096, "capacity_tokens": 2}


def small_cake(n_cpus=2, **overrides) -> CakeConfig:
    return CakeConfig(
        n_cpus=n_cpus,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
        **overrides,
    )


METHOD = MethodConfig(sizes=[1, 2, 4, 8])


def _base_builder():
    return workload_builder("pipeline", **PIPELINE_KWARGS)


def _late_builder():
    return workload_builder("pipeline", **LATE_KWARGS)


def _lopsided_network(balanced: bool = False) -> ProcessNetwork:
    """A joiner whose consumer demands more tokens than ever arrive --
    it is guaranteed to be FIFO-blocked when its group departs.  The
    ``balanced`` twin (identical names, consumer matched to the
    producer) exists so the profile can be measured standalone."""

    def producer(ctx):
        for _ in range(4):
            yield ctx.compute(ctx.stream(ctx.heap, 0, 2048, write=True))
            yield ctx.write("out")

    def consumer(ctx):
        for _ in range(4 if balanced else 8):
            yield ctx.read("in")
            yield ctx.compute(ctx.stream(ctx.heap, 0, 2048))

    network = ProcessNetwork(
        "lopsided", rt_data_bytes=4096, rt_bss_bytes=4096
    )
    network.add_task(TaskSpec(
        name="prod", program=producer, heap_bytes=4096,
    ))
    network.add_task(TaskSpec(
        name="cons", program=consumer, heap_bytes=4096,
    ))
    network.add_fifo(FifoSpec(
        name="ch", producer="prod", producer_port="out",
        consumer="cons", consumer_port="in",
        token_bytes=256, capacity_tokens=2,
    ))
    return network


def _measure(builder):
    return profile_miss_curves(
        builder, small_cake(), sizes=METHOD.sizes,
        fifo_policy=METHOD.fifo_policy, repeats=METHOD.profile_repeats,
    )


@pytest.fixture(scope="module")
def profiles():
    """One profiling pass per network for the whole module -- every
    dynamic run below injects these, as the runner's cache layer does."""
    return {
        "base": _measure(_base_builder()),
        "late": _measure(_late_builder()),
        "lopsided": _measure(lambda: _lopsided_network(balanced=True)),
    }


def run_all_engines(transitions, join_builders, profile_map, cake=None):
    """Run one dynamic configuration on all three engines and assert the
    metrics, epoch records and transition outcomes are byte-identical."""
    results = {}
    for engine in ENGINES:
        dynamic = DynamicScenario(
            _base_builder(),
            cake=cake if cake is not None else small_cake(),
            method=METHOD,
            transitions=transitions,
            join_builders=join_builders,
            engine=engine,
        )
        result = dynamic.run(profiles=profile_map)
        results[engine] = (
            run_metrics_to_payload(result.metrics),
            result.epoch_payloads(),
            result.transition_payloads(),
        )
    assert results["fast"] == results["reference"]
    assert results["compiled"] == results["reference"]
    return results["reference"]


# -- spec validation and identity ---------------------------------------------


def test_transition_spec_validation():
    with pytest.raises(ValueError):
        TransitionSpec(at=10.0, action="teleport")
    with pytest.raises(ValueError):
        TransitionSpec(at=-1.0, action="mark")
    with pytest.raises(ValueError):
        TransitionSpec(at=0.0, action="join", group="g")  # no workload
    with pytest.raises(ValueError):
        TransitionSpec(
            at=0.0, action="join", workload=WorkloadSpec("pipeline")
        )  # no group
    with pytest.raises(ValueError):
        TransitionSpec(at=0.0, action="leave")  # neither group nor tasks


def test_transition_spec_roundtrip():
    spec = TransitionSpec(
        at=1234.0, action="join", group="g", budget=5e6,
        workload=WorkloadSpec("pipeline", PIPELINE_KWARGS),
    )
    assert TransitionSpec.from_dict(spec.to_dict()) == spec
    leave = TransitionSpec(at=99.0, action="leave", tasks=("a", "b"))
    assert TransitionSpec.from_dict(leave.to_dict()) == leave


def test_transitions_are_part_of_scenario_identity():
    static = Scenario(
        workload=WorkloadSpec("pipeline", PIPELINE_KWARGS),
        cake=small_cake(),
        method=METHOD,
    )
    dynamic = Scenario(
        workload=static.workload, cake=static.cake, method=static.method,
        transitions=(TransitionSpec(
            at=60_000.0, action="join", group="late",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
    )
    # A dynamic point is a different experiment...
    assert dynamic.scenario_id != static.scenario_id
    assert dynamic.is_dynamic and not static.is_dynamic
    # ... but profiling and baseline identities exclude transitions, so
    # its base measurements come straight from the static point's cache.
    assert dynamic.profile_key == static.profile_key
    assert dynamic.baseline_key == static.baseline_key
    restored = Scenario.from_dict(dynamic.to_dict())
    assert restored.scenario_id == dynamic.scenario_id
    assert restored.transitions == dynamic.transitions
    # Empty transitions serialise identically to the static form.
    assert "transitions" not in static.to_dict()


def test_join_requirement_matches_standalone_profile_key():
    """An arrival of a workload someone already profiled standalone must
    hit that cache entry: the join group's requirement *is* the
    standalone scenario of its workload."""
    late = WorkloadSpec("pipeline", LATE_KWARGS)
    dynamic = Scenario(
        workload=WorkloadSpec("pipeline", PIPELINE_KWARGS),
        cake=small_cake(), method=METHOD,
        transitions=(TransitionSpec(
            at=60_000.0, action="join", group="late", workload=late,
        ),),
    )
    standalone = Scenario(workload=late, cake=small_cake(), method=METHOD)
    requirements = dict(dynamic.profile_requirements())
    assert set(requirements) == {"", "late"}
    assert requirements["late"].profile_key == standalone.profile_key
    assert requirements[""].profile_key == dynamic.profile_key


# -- union network and unit ledger --------------------------------------------


def test_merge_networks_prefixes_and_sizes():
    base = _base_builder()()
    join = _late_builder()()
    merged = merge_networks(base, {"late": join})
    for name in base.tasks:
        assert name in merged.tasks
    for name in join.tasks:
        assert f"late.{name}" in merged.tasks
    for name, fifo in merged.fifos.items():
        if name.startswith("late."):
            assert fifo.producer.startswith("late.")
            assert fifo.consumer.startswith("late.")
    assert merged.rt_data_bytes == max(base.rt_data_bytes, join.rt_data_bytes)
    assert merged.appl_bss_bytes == max(
        base.appl_bss_bytes, join.appl_bss_bytes
    )


def test_unit_ledger_first_fit_and_coalescing():
    ledger = _UnitLedger()
    ledger.add(0, 10)
    assert ledger.allocate(4) == 0
    assert ledger.allocate(6) == 4
    assert ledger.allocate(1) is None
    ledger.add(4, 6)
    ledger.add(0, 4)
    assert ledger.fragments() == [(0, 10)]  # coalesced back to one


def test_unit_ledger_fragmentation_is_a_real_failure():
    ledger = _UnitLedger()
    ledger.add(0, 3)
    ledger.add(5, 3)
    assert ledger.free_units() == 6
    # 6 units free but no contiguous 4: a set partition is one range.
    assert ledger.allocate(4) is None
    assert ledger.allocate(3) == 0
    assert ledger.allocate(3) == 5


# -- satellite: the dedicated way optimizer ------------------------------------


def test_way_and_set_plans_diverge_at_column_granularity():
    """The way optimizer ranks owners by miss reduction at *column*
    granularity; the set plan's fine-grained unit counts are not its
    ranking (the regression the dedicated optimizer exists to fix)."""
    curves = [
        # Huge gain at 2 units, flat beyond: fine-grained winner.
        MissCurve.from_pairs(
            "task:a", [(1, 1000.0), (2, 10.0), (4, 10.0), (8, 10.0)]
        ),
        # Gains spread out to 8 units: coarse-grained winner.
        MissCurve.from_pairs(
            "task:b", [(1, 600.0), (2, 500.0), (4, 300.0), (8, 50.0)]
        ),
    ]
    set_solution = solve_mckp_dp(
        items_from_curves(curves, [1, 2, 4, 8]), 6
    )
    assert set_solution.allocation == {"task:a": 2, "task:b": 4}

    # 2 ways over 8 units -> one column holds 4 units' capacity.
    way_plan = optimize_way_assignment(curves, n_ways=2, total_units=8)
    assert set(way_plan.ways_by_owner) == {"task:a", "task:b"}
    assert len(way_plan.ways_by_owner["task:a"]) == 1
    assert len(way_plan.ways_by_owner["task:b"]) == 1
    # Divergence: the set plan sizes a at 2 of 8 units (a quarter), the
    # way plan cannot express that -- a gets a full column (half).
    way_units = {
        owner: len(ways) * 8 // 2
        for owner, ways in way_plan.ways_by_owner.items()
    }
    assert way_units != set_solution.allocation
    assert sum(
        len(w) for w in way_plan.ways_by_owner.values()
    ) <= way_plan.total_ways


# -- three-engine differentials through transitions ----------------------------


def test_join_mid_run_identical_across_engines(profiles):
    metrics, epochs, transitions = run_all_engines(
        (TransitionSpec(
            at=60_000.0, action="join", group="late",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        {"late": _late_builder()},
        {"": profiles["base"], "late": profiles["late"]},
    )
    assert len(transitions) == 1 and transitions[0]["admitted"]
    assert transitions[0]["reason"] == ""
    assert all(
        owner.partition(":")[2].startswith("late.")
        for owner in transitions[0]["granted_units"]
    )
    assert len(epochs) == 2
    assert epochs[0]["trigger"] == "join:late"
    assert epochs[1]["trigger"] == "end"
    # The joiners did not exist in epoch 0.
    assert epochs[0]["task_cycles"].get("late.stage0", 0) == 0
    assert epochs[1]["task_cycles"]["late.stage0"] > 0


def test_leave_while_fifo_blocked_across_engines(profiles):
    """The departing consumer is parked on a FIFO read when its group
    leaves: detach must unhook it from the waiting lists identically on
    every engine."""
    metrics, epochs, transitions = run_all_engines(
        (
            TransitionSpec(
                at=20_000.0, action="join", group="g",
                workload=WorkloadSpec("pipeline", LATE_KWARGS),
            ),
            TransitionSpec(at=400_000.0, action="leave", group="g"),
        ),
        {"g": lambda: _lopsided_network()},
        {"": profiles["base"], "g": profiles["lopsided"]},
    )
    join, leave = transitions
    assert join["admitted"] and leave["admitted"]
    assert leave["freed_units"] == sum(join["granted_units"].values())
    assert len(epochs) == 3
    # The blocked consumer made progress in the middle epoch only.
    assert epochs[1]["task_cycles"]["g.cons"] > 0


def test_arrival_during_another_tasks_quantum(profiles):
    """A quantum far larger than the replan offset guarantees the
    arrival lands mid-quantum: the preempted task's pre-pulled ops must
    hand back identically on every engine."""
    run_all_engines(
        (TransitionSpec(
            at=37_777.0, action="join", group="late",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        {"late": _late_builder()},
        {"": profiles["base"], "late": profiles["late"]},
        cake=small_cake(2, quantum_cycles=3_000),
    )


def test_replan_on_exact_segment_horizon(profiles):
    """Two replans at the same instant: the quiet horizon lands exactly
    on the transition time, and both fire there, in schedule order."""
    metrics, epochs, transitions = run_all_engines(
        (
            TransitionSpec(at=60_000.0, action="mark"),
            TransitionSpec(
                at=60_000.0, action="join", group="late",
                workload=WorkloadSpec("pipeline", LATE_KWARGS),
            ),
        ),
        {"late": _late_builder()},
        {"": profiles["base"], "late": profiles["late"]},
    )
    assert [t["action"] for t in transitions] == ["mark", "join"]
    assert transitions[1]["admitted"]
    # The epoch between the two same-time replans is empty.
    assert len(epochs) == 3
    assert epochs[1]["start"] == epochs[1]["end"] == 60_000.0
    assert all(v == 0 for v in epochs[1]["task_cycles"].values())


def test_join_at_time_zero(profiles):
    """An arrival at t=0 attaches before any op executes."""
    metrics, epochs, transitions = run_all_engines(
        (TransitionSpec(
            at=0.0, action="join", group="late",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        {"late": _late_builder()},
        {"": profiles["base"], "late": profiles["late"]},
    )
    assert transitions[0]["admitted"]
    assert epochs[0]["end"] == 0.0
    # The joiners ran: attach at t=0 precedes the whole schedule.
    assert epochs[-1]["task_cycles"]["late.stage0"] > 0


# -- admission control and warm arrivals ---------------------------------------


def test_warm_arrival_performs_zero_profiling_passes(profiles):
    before = profiling_passes()
    dynamic = DynamicScenario(
        _base_builder(), cake=small_cake(), method=METHOD,
        transitions=(TransitionSpec(
            at=60_000.0, action="join", group="late",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        join_builders={"late": _late_builder()},
    )
    result = dynamic.run(
        profiles={"": profiles["base"], "late": profiles["late"]}
    )
    assert profiling_passes() - before == 0
    assert result.transitions[0].admitted


def test_budget_rejection_records_reason_and_never_attaches(profiles):
    metrics, epochs, transitions = run_all_engines(
        (TransitionSpec(
            at=60_000.0, action="join", group="late", budget=1.0,
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        {"late": _late_builder()},
        {"": profiles["base"], "late": profiles["late"]},
    )
    outcome = transitions[0]
    assert not outcome["admitted"]
    assert outcome["reason"] == "budget"
    assert outcome["predicted_cycles"] > 1.0
    assert outcome["granted_units"] == {}
    # The rejected group never ran, on any engine, in any epoch.
    for epoch in epochs:
        for name, cycles in epoch["task_cycles"].items():
            if name.startswith("late."):
                assert cycles == 0


def test_capacity_rejection_when_arena_is_exhausted(profiles):
    """A joiner whose buffers alone exceed the free arena is rejected
    with reason ``capacity`` -- and the run still completes (the
    arrival reservation is released on rejection too)."""

    def fat_joiner() -> ProcessNetwork:
        def producer(ctx):
            yield ctx.write("out")

        def consumer(ctx):
            yield ctx.read("in")

        network = ProcessNetwork("fat", rt_data_bytes=4096,
                                 rt_bss_bytes=4096)
        network.add_task(TaskSpec(name="prod", program=producer))
        network.add_task(TaskSpec(name="cons", program=consumer))
        # 512 KB of ring against a 64 KB L2: all-hit sizing wants more
        # units than the whole cache has.
        network.add_fifo(FifoSpec(
            name="ch", producer="prod", producer_port="out",
            consumer="cons", consumer_port="in",
            token_bytes=4096, capacity_tokens=128,
        ))
        return network

    dynamic = DynamicScenario(
        _base_builder(), cake=small_cake(), method=METHOD,
        transitions=(TransitionSpec(
            at=60_000.0, action="join", group="fat",
            workload=WorkloadSpec("pipeline", LATE_KWARGS),
        ),),
        join_builders={"fat": fat_joiner},
    )
    result = dynamic.run(
        profiles={"": profiles["base"], "fat": profiles["lopsided"]}
    )
    outcome = result.transitions[0]
    assert not outcome.admitted
    assert outcome.reason == "capacity"


# -- satellite regression: map mutations quiesce the compiled tier -------------


def test_map_mutation_quiesces_compiled_state():
    """Every map-mutating path must sync the Python-side models and drop
    the C-resident state first: without the quiesce, stats read after a
    mutation would be stale and subsequent runs would diverge."""
    reference = Platform(
        _base_builder()(), small_cake(),
        mode=PartitionMode.SET_PARTITIONED, engine="reference",
    )
    reference.run()
    reference_accesses = reference.mem.l2_stats.total.accesses

    compiled = Platform(
        _base_builder()(), small_cake(),
        mode=PartitionMode.SET_PARTITIONED, engine="compiled",
    )
    compiled.run()
    # Mutate the map without any manual sync: the controller itself must
    # quiesce (sync + drop) before touching the translation tables.
    compiled.cache_controller.assign_units("task:newcomer", 20, 2)
    assert compiled.mem._compiled is None
    assert compiled.mem.l2_stats.total.accesses == reference_accesses

    compiled.cache_controller.release_units("task:newcomer")
    assert compiled.mem._compiled is None
