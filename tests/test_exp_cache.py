"""The persistent profile cache: differential identity, fault injection.

The contract under test is the one distributed memory systems live by:
identical keys yield identical payloads no matter where (or when) they
were computed, and a damaged entry is *always* a recompute, never a
crash or a changed result.

- **Differential suite** -- warm-cache vs cold-cache vs
  in-process-memoized runs of a 2x3 grid produce byte-identical store
  fingerprints, across ``workers=1`` / ``workers=4`` and across
  separate :class:`ExperimentRunner` instances (cross-session reuse).
- **Fault injection** -- truncated JSON, checksum mismatch, stale
  envelope version, and a concurrent-writer race all read as cache
  misses: the sweep recomputes, the fingerprint is unchanged, and the
  damaged entry is healed on the way out.
- **Acceptance gate** -- a repeated ``python -m repro.exp.smoke``
  against a warm cache performs zero profiling passes (fresh process,
  so the in-process memo cannot help) and reproduces the cold
  fingerprint.
"""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.core.profiling import profiling_passes, reset_profiling_passes
from repro.exp import (
    ExecutionBackend,
    ExperimentRunner,
    ProfileCache,
    Scenario,
    WorkloadSpec,
    clear_caches,
    resolve_cache,
    run_scenario,
    sweep,
)
from repro.exp.cache import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    KIND_BASELINE,
    KIND_PROFILE,
    default_cache_dir,
    main as cache_cli,
)
from repro.errors import ConfigurationError
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts with empty memo tables and a zeroed counter."""
    clear_caches()
    reset_profiling_passes()
    yield
    clear_caches()


def small_scenario(**method_kwargs):
    method_kwargs.setdefault("sizes", [1, 2])
    return Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 3, "n_tokens": 6, "work_bytes": 6 * 1024},
        ),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(**method_kwargs),
    )


def grid_2x3():
    """Two L2 capacities x three solvers: exactly one profile key."""
    return sweep(small_scenario(), l2_size_kb=[64, 128],
                 solver=["dp", "greedy", "milp"])


# -- basic cache behaviour -----------------------------------------------------


def test_put_get_round_trip_and_layout(tmp_path):
    cache = ProfileCache(tmp_path / "cache")
    payload = {"sizes": [1, 2], "values": [0.5, 0.25]}
    path = cache.put(KIND_PROFILE, "abcd1234", payload)
    assert path == tmp_path / "cache" / "profile" / "ab" / "abcd1234.json"
    assert cache.get(KIND_PROFILE, "abcd1234") == payload
    assert cache.get(KIND_PROFILE, "feedbeef") is None
    assert cache.get(KIND_BASELINE, "abcd1234") is None  # kinds are disjoint
    with pytest.raises(ConfigurationError):
        cache.get("plan", "abcd1234")


def test_stats_and_clear(tmp_path):
    cache = ProfileCache(tmp_path / "cache")
    cache.put(KIND_PROFILE, "aa11", {"x": 1})
    cache.put(KIND_BASELINE, "bb22", {"y": 2})
    cache.put(KIND_BASELINE, "cc33", {"z": 3})
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["kinds"][KIND_PROFILE]["entries"] == 1
    assert stats["kinds"][KIND_BASELINE]["entries"] == 2
    assert stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0  # idempotent on an empty root


def test_clear_sweeps_crashed_writer_litter(tmp_path):
    """A writer SIGKILLed between mkstemp and os.replace leaves a
    ``.<key>-XXXX.tmp`` file; clear must remove it (and stats must
    count its bytes) rather than leave the tree growing forever."""
    cache = ProfileCache(tmp_path / "cache")
    entry = cache.put(KIND_PROFILE, "aa11", {"x": 1})
    litter = entry.parent / ".aa11-dead.tmp"
    litter.write_text('{"half-written')
    assert cache.stats()["bytes"] > entry.stat().st_size  # litter counted
    assert cache.clear() == 2  # entry + litter
    assert not litter.exists()
    assert not (tmp_path / "cache" / KIND_PROFILE).exists()  # dirs pruned


def test_cli_stats_and_clear(tmp_path, capsys):
    root = tmp_path / "cli-cache"
    ProfileCache(root).put(KIND_PROFILE, "aa11", {"x": 1})
    assert cache_cli(["stats", "--dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert str(root) in out and "1 entries" in out
    assert cache_cli(["clear", "--dir", str(root)]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert ProfileCache(root).stats()["entries"] == 0


def test_default_dir_honours_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "over"))
    assert default_cache_dir() == tmp_path / "over"
    assert resolve_cache(True).root == tmp_path / "over"
    monkeypatch.delenv(CACHE_ENV_VAR)
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro" / "profiles"


def test_resolve_cache_forms(tmp_path):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    cache = ProfileCache(tmp_path)
    assert resolve_cache(cache) is cache
    assert resolve_cache(str(tmp_path / "p")).root == tmp_path / "p"
    with pytest.raises(ConfigurationError):
        resolve_cache(42)


# -- differential identity -----------------------------------------------------


def test_differential_fingerprints_across_caches_workers_and_runners(tmp_path):
    """The ISSUE's core differential: six execution regimes, one hash."""
    scenarios = grid_2x3()
    cache_dir = tmp_path / "cache"
    fingerprints = {}

    # (1) in-process memoized, workers=1.
    memo_runner = ExperimentRunner(workers=1)
    fingerprints["memo-w1"] = memo_runner.run(scenarios).fingerprint()
    # (2) a *second* runner instance against the warm memo tables.
    second_runner = ExperimentRunner(workers=1)
    fingerprints["memo-second-runner"] = \
        second_runner.run(scenarios).fingerprint()
    assert second_runner.last_stats["profiles_computed"] == 0
    assert second_runner.last_stats["profiles_cached"] == 1

    # (3) in-process memoized, workers=4 (pool).
    clear_caches()
    fingerprints["memo-w4"] = \
        ExperimentRunner(workers=4).run(scenarios).fingerprint()

    # (4) cold disk cache, workers=1.
    clear_caches()
    cold = ExperimentRunner(workers=1, cache=cache_dir)
    fingerprints["disk-cold-w1"] = cold.run(scenarios).fingerprint()
    assert cold.last_stats["profiles_computed"] == 1
    assert cold.last_stats["baselines_computed"] == 2

    # (5) warm disk cache, workers=4, fresh runner, cleared memos --
    # the cross-session shape: nothing in this "session" was measured.
    clear_caches()
    warm = ExperimentRunner(workers=4, cache=cache_dir)
    fingerprints["disk-warm-w4"] = warm.run(scenarios).fingerprint()
    assert warm.last_stats["profiles_computed"] == 0
    assert warm.last_stats["profiles_from_disk"] == 1
    assert warm.last_stats["baselines_computed"] == 0
    assert warm.last_stats["baselines_from_disk"] == 2

    # (6) warm disk cache, workers=1: provably zero profiling passes.
    clear_caches()
    passes_before = profiling_passes()
    fingerprints["disk-warm-w1"] = ExperimentRunner(
        workers=1, cache=cache_dir
    ).run(scenarios).fingerprint()
    assert profiling_passes() == passes_before

    assert len(set(fingerprints.values())) == 1, fingerprints


def test_memo_warm_runner_still_backfills_the_disk_cache(tmp_path):
    """Attaching a cache *after* the measurements were memoized must
    still persist them -- the cross-session promise cannot depend on
    which runner measured first."""
    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])
    ExperimentRunner(workers=1).run(scenarios)  # memo only, no disk
    cache = ProfileCache(tmp_path / "late-cache")
    ExperimentRunner(workers=1, cache=cache).run(scenarios)
    assert cache.stats()["entries"] == 2  # 1 profile + 1 baseline
    # A fresh "session" is now fully warm from disk.
    clear_caches()
    warm = ExperimentRunner(workers=1, cache=cache)
    warm.run(scenarios)
    assert warm.last_stats["profiles_computed"] == 0
    assert warm.last_stats["profiles_from_disk"] == 1


def test_clear_invalidates_process_verification_memo(tmp_path):
    """clear() must defeat the runner's verified-on-disk memo: a
    cached runner after a clear() re-persists even with warm memos."""
    cache = ProfileCache(tmp_path / "cache")
    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])
    ExperimentRunner(workers=1, cache=cache).run(scenarios)
    assert cache.stats()["entries"] == 2
    cache.clear()
    assert cache.stats()["entries"] == 0
    # Memo tables are still warm; the backfill must notice the clear.
    ExperimentRunner(workers=1, cache=cache).run(scenarios)
    assert cache.stats()["entries"] == 2


def test_backfill_replaces_a_stale_entry(tmp_path):
    """An invalid entry occupying the path must not block the
    memo-to-disk backfill: validity, not file existence, gates it."""
    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])
    cache = ProfileCache(tmp_path / "cache")
    ExperimentRunner(workers=1, cache=cache).run(scenarios)
    # Make every entry stale (as if measured by an older simulator).
    for path in _entry_paths(cache.root):
        envelope = json.loads(path.read_text())
        envelope["repro_version"] = "0.0.0"
        path.write_text(json.dumps(envelope))
    # Memo is still warm; a fresh cached runner must re-persist.
    fresh = ExperimentRunner(workers=1, cache=cache)
    fresh.run(scenarios)
    assert fresh.last_stats["profiles_computed"] == 0  # memo hit
    clear_caches()
    warm = ExperimentRunner(workers=1, cache=cache)
    warm.run(scenarios)
    assert warm.last_stats["profiles_computed"] == 0
    assert warm.last_stats["profiles_from_disk"] == 1  # backfill healed it


def test_unwritable_cache_degrades_to_uncached_computation(tmp_path):
    """A cache root that cannot be written (here: an existing regular
    file) must never fail the sweep -- results are simply uncached."""
    bogus_root = tmp_path / "not-a-directory"
    bogus_root.write_text("occupied")
    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])
    reference = ExperimentRunner(workers=1).run(scenarios).fingerprint()
    clear_caches()
    runner = ExperimentRunner(workers=1, cache=bogus_root)
    store = runner.run(scenarios)  # must not raise
    assert store.fingerprint() == reference
    assert runner.last_stats["profiles_computed"] == 1
    # run_scenario degrades the same way.
    clear_caches()
    outcome = run_scenario(small_scenario(), cache=bogus_root)
    assert outcome.report is not None
    assert bogus_root.read_text() == "occupied"  # untouched


class _CapturingBackend(ExecutionBackend):
    """A non-memory-sharing backend that records every task it sees."""

    name = "capturing"
    shares_memory = False

    def __init__(self):
        self.tasks = []

    def map(self, worker, tasks):
        for task in tasks:
            self.tasks.append(task)
            yield worker(task)

    def executes(self):
        return [t for t in self.tasks if "kind" not in t]


def test_inline_payloads_ship_only_when_not_verifiably_on_disk(tmp_path):
    """Workers that cannot see the memo get each measurement by cache
    reference when it is verifiably on disk, and inline otherwise --
    including when cache *writes* fail (e.g. unwritable root), so a
    spawn-style backend never recomputes per scenario."""
    from repro.exp import make_backend

    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])

    healthy = _CapturingBackend()
    ExperimentRunner(backend=make_backend(healthy),
                     cache=tmp_path / "cache").run(scenarios)
    assert healthy.executes()
    for task in healthy.executes():
        assert task["persisted"] and "profile" not in task
        assert "baseline" not in task  # resolved via cache reference

    clear_caches()
    bogus = tmp_path / "file"
    bogus.write_text("occupied")
    broken = _CapturingBackend()
    ExperimentRunner(backend=make_backend(broken),
                     cache=bogus).run(scenarios)
    for task in broken.executes():
        assert task["baseline"] is not None  # unpersistable -> inline
        if task["profile_key"] is not None:
            assert task["profile"] is not None

    clear_caches()
    uncached = _CapturingBackend()
    ExperimentRunner(backend=make_backend(uncached)).run(scenarios)
    for task in uncached.executes():
        assert not task["persisted"] and task["baseline"] is not None


def test_run_scenario_uses_and_fills_the_disk_cache(tmp_path):
    cache = ProfileCache(tmp_path / "cache")
    scenario = small_scenario()
    cold = run_scenario(scenario, cache=cache)
    assert cache.stats()["entries"] == 2  # one profile + one baseline
    clear_caches()
    passes_before = profiling_passes()
    warm = run_scenario(scenario, cache=cache)
    assert profiling_passes() == passes_before
    assert warm.record.canonical() == cold.record.canonical()


# -- fault injection -----------------------------------------------------------


def _warm_reference(cache_dir):
    """Cold-run the small grid through a cache; return its fingerprint."""
    scenarios = sweep(small_scenario(), solver=["dp", "greedy"])
    store = ExperimentRunner(workers=1, cache=cache_dir).run(scenarios)
    clear_caches()
    return scenarios, store.fingerprint()


def _entry_paths(cache_dir):
    return sorted(Path(cache_dir).glob("*/*/*.json"))


def _rerun_fingerprint(scenarios, cache_dir):
    clear_caches()
    runner = ExperimentRunner(workers=1, cache=cache_dir)
    return runner.run(scenarios).fingerprint(), runner


def _truncate(path):
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])  # mid-JSON truncation


def _binary_garbage(path):
    path.write_bytes(b"\xff\xfe\x00garbage")  # not even valid UTF-8


@pytest.mark.parametrize(
    "corrupt", [_truncate, _binary_garbage], ids=["truncated", "non-utf8"]
)
def test_truncated_entries_recompute_cleanly(tmp_path, corrupt):
    cache_dir = tmp_path / "cache"
    scenarios, reference = _warm_reference(cache_dir)
    for path in _entry_paths(cache_dir):
        corrupt(path)
    fingerprint, runner = _rerun_fingerprint(scenarios, cache_dir)
    assert fingerprint == reference
    assert runner.last_stats["profiles_computed"] == 1  # recomputed, no crash
    assert runner.cache.rejected_count > 0
    # The damaged entries were healed: a further run is fully warm.
    fingerprint, runner = _rerun_fingerprint(scenarios, cache_dir)
    assert fingerprint == reference
    assert runner.last_stats["profiles_computed"] == 0
    assert runner.cache.rejected_count == 0


def test_checksum_mismatch_recomputes_cleanly(tmp_path):
    cache_dir = tmp_path / "cache"
    scenarios, reference = _warm_reference(cache_dir)
    for path in _entry_paths(cache_dir):
        envelope = json.loads(path.read_text())
        envelope["payload"]["sizes"] = [999]  # bit-rot the payload
        path.write_text(json.dumps(envelope))
    fingerprint, runner = _rerun_fingerprint(scenarios, cache_dir)
    assert fingerprint == reference
    assert runner.last_stats["profiles_computed"] == 1
    assert runner.cache.rejected_count > 0


@pytest.mark.parametrize(
    "field,stale_value",
    [("cache_version", CACHE_VERSION - 1), ("repro_version", "0.0.0")],
    ids=["envelope-version", "simulator-version"],
)
def test_stale_version_recomputes_cleanly(tmp_path, field, stale_value):
    """A stale envelope layout *or* a measurement taken by a different
    simulator version reads as a miss -- warm caches must never serve
    numbers an older simulator produced."""
    cache_dir = tmp_path / "cache"
    scenarios, reference = _warm_reference(cache_dir)
    for path in _entry_paths(cache_dir):
        envelope = json.loads(path.read_text())
        envelope[field] = stale_value
        path.write_text(json.dumps(envelope))
    fingerprint, runner = _rerun_fingerprint(scenarios, cache_dir)
    assert fingerprint == reference
    assert runner.last_stats["profiles_computed"] == 1
    assert runner.cache.rejected_count > 0


def test_wrong_key_or_kind_reads_as_miss(tmp_path):
    cache = ProfileCache(tmp_path / "cache")
    path = cache.put(KIND_PROFILE, "aa11", {"x": 1})
    moved = cache.entry_path(KIND_PROFILE, "bb22")
    moved.parent.mkdir(parents=True, exist_ok=True)
    moved.write_text(path.read_text())  # entry filed under the wrong key
    assert cache.get(KIND_PROFILE, "bb22") is None
    assert cache.rejected_count == 1
    # Rejection never unlinks (it could race a healing writer); the
    # damaged file is simply overwritten by the next put.
    assert moved.exists()
    cache.put(KIND_PROFILE, "bb22", {"x": 2})
    assert cache.get(KIND_PROFILE, "bb22") == {"x": 2}


def _race_writer(root, key, payload, barrier, repeats):
    """Hammer one key from a separate process (fork target)."""
    cache = ProfileCache(root)
    barrier.wait()
    for _ in range(repeats):
        cache.put(KIND_PROFILE, key, payload)


def test_concurrent_writers_of_one_key_leave_an_intact_entry(tmp_path):
    """Two processes racing on the same key must never corrupt it.

    Content-addressing makes the race benign -- both writers carry the
    identical payload -- and atomic replace makes every intermediate
    state a complete file.
    """
    root = tmp_path / "cache"
    key = "deadbeefdeadbeef"
    payload = {"sizes": [1, 2, 4], "curves": {"task:a": [[1, 10.0]]}}
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    barrier = context.Barrier(2)
    writers = [
        context.Process(
            target=_race_writer, args=(str(root), key, payload, barrier, 50)
        )
        for _ in range(2)
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=60)
        assert writer.exitcode == 0
    reader = ProfileCache(root)
    assert reader.get(KIND_PROFILE, key) == payload
    assert reader.rejected_count == 0
    # No temp-file litter left behind by the atomic writes.
    assert _entry_paths(root) == [reader.entry_path(KIND_PROFILE, key)]
    assert list(root.glob("*/*/.*.tmp")) == []


# -- GC: LRU-by-mtime pruning to a size budget ---------------------------------


def _put_sized(cache, key, mtime, payload_bytes=200):
    """One entry with a pinned mtime (the LRU ordering key)."""
    path = cache.put(KIND_PROFILE, key, {"pad": "x" * payload_bytes})
    os.utime(path, (mtime, mtime))
    return path


def test_gc_prunes_least_recently_written_first(tmp_path):
    from repro.exp.cache import clear_generation

    cache = ProfileCache(tmp_path / "cache")
    old = _put_sized(cache, "aa01", mtime=1_000)
    mid = _put_sized(cache, "bb02", mtime=2_000)
    new = _put_sized(cache, "cc03", mtime=3_000)
    total = sum(p.stat().st_size for p in (old, mid, new))
    generation = clear_generation(cache.root)
    result = cache.gc(max_bytes=total - 1)  # one entry over budget
    assert result["removed"] == 1
    assert not old.exists() and mid.exists() and new.exists()
    # Evictions invalidate in-process "verified on disk" memos, like
    # clear() does -- a pruned key must be re-checked, not trusted.
    assert clear_generation(cache.root) == generation + 1
    # Within budget: nothing further to do (and no generation churn).
    assert cache.gc(max_bytes=total)["removed"] == 0
    assert clear_generation(cache.root) == generation + 1
    # Budget 0 empties the cache entirely.
    result = cache.gc(max_bytes=0)
    assert result["removed"] == 2
    assert result["kept"] == 0 and result["kept_bytes"] == 0


def test_gc_sweeps_only_stale_writer_litter(tmp_path):
    """Crashed-writer orphans go; a live writer's in-flight temp (young
    mtime, between mkstemp and the atomic replace) is spared."""
    cache = ProfileCache(tmp_path / "cache")
    entry = _put_sized(cache, "aa01", mtime=1_000)
    stale = entry.parent / ".aa01-dead.tmp"
    stale.write_text('{"half-written')
    os.utime(stale, (1_000, 1_000))
    live = entry.parent / ".bb02-live.tmp"
    live.write_text('{"in-flight')  # fresh mtime: presumed live
    result = cache.gc()  # no budget: litter only
    assert result["removed"] == 1
    assert not stale.exists() and live.exists() and entry.exists()
    # Entry pruning likewise never touches the live temp.
    cache.gc(max_bytes=0)
    assert live.exists() and not entry.exists()


def test_put_enforces_max_bytes(tmp_path):
    cache = ProfileCache(tmp_path / "cache", max_bytes=450)
    for index, key in enumerate(["aa01", "bb02", "cc03"]):
        _put_sized(cache, key, mtime=1_000 * (index + 1))
    kept = _entry_paths(tmp_path / "cache")
    assert 1 <= len(kept) <= 2  # pruned down to the budget on the way
    assert kept[-1].name == "cc03.json" or kept[0].name == "bb02.json"
    assert sum(p.stat().st_size for p in kept) <= 450
    with pytest.raises(ConfigurationError):
        ProfileCache(tmp_path / "cache", max_bytes=-1)
    with pytest.raises(ConfigurationError):
        ProfileCache(tmp_path / "cache").gc(max_bytes=-1)


def test_gc_deletion_is_atomic_under_a_concurrent_reader(tmp_path):
    """A reader racing gc either wins (opened before the unlink) or
    sees a clean miss -> recompute; never a partial entry.  Driven
    deterministically: the reader resolves between the stat pass and
    the unlink by patching Path.unlink."""
    root = tmp_path / "cache"
    cache = ProfileCache(root)
    payload = {"pad": "x" * 200}
    path = cache.put(KIND_PROFILE, "aa01", payload)
    os.utime(path, (1_000, 1_000))

    reads = []
    real_unlink = Path.unlink

    def racing_unlink(self, *args, **kwargs):
        # The reader gets in just before the delete... then the delete
        # lands, and a second reader sees a plain miss.
        reads.append(ProfileCache(root).get(KIND_PROFILE, "aa01"))
        real_unlink(self, *args, **kwargs)

    import unittest.mock as mock
    with mock.patch.object(Path, "unlink", racing_unlink):
        result = cache.gc(max_bytes=0)
    assert result["removed"] == 1
    assert reads == [payload]  # pre-delete reader saw the full entry
    late = ProfileCache(root)
    assert late.get(KIND_PROFILE, "aa01") is None  # miss, not an error
    assert late.rejected_count == 0  # a miss, never "corruption"


def test_gc_cli_subcommand(tmp_path, capsys):
    cache = ProfileCache(tmp_path / "cache")
    _put_sized(cache, "aa01", mtime=1_000)
    _put_sized(cache, "bb02", mtime=2_000)
    # Without a budget the CLI only sweeps litter: entries stay.
    assert cache_cli(["gc", "--dir", str(tmp_path / "cache")]) == 0
    assert "removed 0 files" in capsys.readouterr().out
    assert len(_entry_paths(tmp_path / "cache")) == 2
    # An explicit budget -- including 0 -- is honoured as-is.
    assert cache_cli(["gc", "--dir", str(tmp_path / "cache"),
                      "--max-bytes", "0"]) == 0
    assert "removed 2 files" in capsys.readouterr().out
    assert _entry_paths(tmp_path / "cache") == []


# -- slim baseline envelopes ---------------------------------------------------


def test_baseline_envelopes_drop_task_stats(tmp_path):
    """Baselines persist without per-task stats (nothing reads them);
    profiles and records are unaffected, and a v1 (fat) entry reads as
    a stale-version miss that heals on recompute."""
    from repro.exp.scenario import run_metrics_from_payload
    cache = ProfileCache(tmp_path / "cache")
    scenario = small_scenario()
    outcome = run_scenario(scenario, cache=cache)
    entry = cache.entry_path(KIND_BASELINE, scenario.baseline_key)
    envelope = json.loads(entry.read_text())
    assert envelope["cache_version"] == CACHE_VERSION
    assert "task_stats" not in envelope["payload"]
    # The slim payload still round-trips into a usable RunMetrics.
    metrics = run_metrics_from_payload(envelope["payload"])
    assert metrics.task_stats == {}
    assert metrics.l2_by_owner
    # A warm re-run from the slim baseline reproduces the record.
    clear_caches()
    again = run_scenario(scenario, cache=cache)
    assert again.record.canonical() == outcome.record.canonical()


# -- the acceptance gate -------------------------------------------------------


def _run_smoke(cache_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env[CACHE_ENV_VAR] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.exp.smoke", *extra],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=str(REPO_ROOT),
    )


def test_repeated_smoke_reuses_the_cache_across_processes(tmp_path):
    """Acceptance: a second ``python -m repro.exp.smoke`` in a *fresh
    process* performs zero profiling passes against the warm cache and
    reproduces the cold run's fingerprint (asserted inside the smoke,
    which compares warm/cold stores and pass counters)."""
    cache_dir = tmp_path / "cache"
    cold = _run_smoke(cache_dir)
    assert cold.returncode == 0, cold.stdout + cold.stderr
    assert "computed=1" in cold.stdout
    warm = _run_smoke(cache_dir, "--expect-warm")
    assert warm.returncode == 0, warm.stdout + warm.stderr
    assert "profiles computed=0" in warm.stdout


def test_cli_stats_json(tmp_path, capsys):
    root = tmp_path / "json-cache"
    ProfileCache(root).put(KIND_PROFILE, "aa11", {"x": 1})
    assert cache_cli(["stats", "--dir", str(root), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["root"] == str(root)
    assert stats["entries"] == 1 and stats["bytes"] > 0
    assert stats["kinds"][KIND_PROFILE]["entries"] == 1
