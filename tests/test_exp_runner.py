"""Experiment runner: memoization, determinism, partition modes.

The acceptance contract of the sweep layer lives here:

- same grid point twice -> one profiling pass, identical records
  (modulo timing),
- a 16-scenario grid run with ``workers=4`` produces a store identical
  (ignoring timing) to ``workers=1``,
- profiling executes at most once per unique profile key.
"""

import pytest

import repro.exp.runner as runner_module
from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentRunner,
    ResultStore,
    Scenario,
    WorkloadSpec,
    clear_caches,
    run_scenario,
    sweep,
)
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts with empty memo tables."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def profile_counter(monkeypatch):
    """Counts actual profiling passes in this process."""
    calls = []
    original = runner_module._compute_profile

    def counting(scenario):
        calls.append(scenario.profile_key)
        return original(scenario)

    monkeypatch.setattr(runner_module, "_compute_profile", counting)
    return calls


def small_cake(**kwargs):
    return CakeConfig(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
        **kwargs,
    )


def base_scenario():
    return Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 3, "n_tokens": 6, "work_bytes": 6 * 1024},
        ),
        cake=small_cake(),
        method=MethodConfig(sizes=[1, 2]),
    )


# -- memoization ---------------------------------------------------------------


def test_same_grid_point_twice_profiles_once(profile_counter):
    scenario = base_scenario()
    runner = ExperimentRunner(workers=1)
    store = runner.run([scenario, scenario])
    assert len(store) == 2
    assert len(profile_counter) == 1
    assert runner.last_stats["profiles_computed"] == 1
    # Byte-identical records modulo the timing block.
    first, second = store.records
    assert first.canonical() == second.canonical()
    assert first.to_json_line() != "" and first.scenario_id == second.scenario_id


def test_l2_capacity_sweep_profiles_once(profile_counter):
    scenarios = sweep(base_scenario(), l2_size_kb=[64, 128],
                      solver=["dp", "greedy"])
    runner = ExperimentRunner(workers=1)
    store = runner.run(scenarios)
    assert len(store) == 4
    # One profile key covers the whole capacity x solver grid.
    assert len(profile_counter) == 1
    assert runner.last_stats == {
        "scenarios": 4,
        "profiles_computed": 1, "profiles_cached": 0,
        "profiles_from_disk": 0,
        "baselines_computed": 2, "baselines_cached": 0,
        "baselines_from_disk": 0,
    }


def test_profile_cache_survives_across_runner_calls(profile_counter):
    scenario = base_scenario()
    ExperimentRunner(workers=1).run([scenario])
    assert len(profile_counter) == 1
    second = ExperimentRunner(workers=1)
    second.run([scenario])
    assert len(profile_counter) == 1  # still one pass, cache hit
    assert second.last_stats["profiles_cached"] == 1
    assert second.last_stats["baselines_cached"] == 1


def test_run_scenario_uses_the_same_caches(profile_counter):
    scenario = base_scenario()
    outcome = run_scenario(scenario)
    assert outcome.report is not None
    ExperimentRunner(workers=1).run([scenario])
    assert len(profile_counter) == 1
    # The inline record equals the runner's record (modulo timing).
    store = ExperimentRunner(workers=1).run([scenario])
    assert outcome.record.canonical() == store.records[0].canonical()


def test_repeated_runs_accumulate_in_the_runner_store(tmp_path):
    path = tmp_path / "sweeps.jsonl"
    path.write_text('{"stale": true}\n')  # a previous session's leftovers
    runner = ExperimentRunner(workers=1, store_path=str(path))
    first = runner.run([base_scenario()])
    assert len(first) == 1  # stale content truncated on first use
    second = runner.run(sweep(base_scenario(), solver=["greedy"]))
    assert second is first and len(second) == 2
    # Nothing was silently truncated between sweeps.
    assert len(ResultStore.load(path)) == 2


def test_distinct_profiling_inputs_profile_separately(profile_counter):
    scenarios = sweep(base_scenario(), n_cpus=[1, 2])
    ExperimentRunner(workers=1).run(scenarios)
    assert len(profile_counter) == 2


# -- determinism ---------------------------------------------------------------


def sixteen_scenario_grid():
    return sweep(
        base_scenario(),
        l2_size_kb=[64, 128],
        n_cpus=[1, 2],
        solver=["dp", "greedy"],
        seed=[20050307, 7],
    )


def test_workers_do_not_change_the_store(tmp_path, profile_counter):
    scenarios = sixteen_scenario_grid()
    assert len(scenarios) == 16

    serial = ExperimentRunner(
        workers=1, store_path=str(tmp_path / "serial.jsonl")
    ).run(scenarios)
    serial_profiles = len(profile_counter)
    # 2 cpus x 2 seeds vary profiling inputs; capacity/solver do not.
    assert serial_profiles == 4

    clear_caches()
    parallel_runner = ExperimentRunner(
        workers=4, store_path=str(tmp_path / "parallel.jsonl")
    )
    parallel = parallel_runner.run(scenarios)
    assert parallel_runner.last_stats["profiles_computed"] == 4

    assert serial.fingerprint() == parallel.fingerprint()
    assert serial.canonical() == parallel.canonical()
    # And the JSONL files round-trip to the same store.
    assert ResultStore.load(tmp_path / "serial.jsonl").fingerprint() == \
        ResultStore.load(tmp_path / "parallel.jsonl").fingerprint()


# -- partition modes -----------------------------------------------------------


def test_shared_mode_records_baseline_only(profile_counter):
    from dataclasses import replace

    scenario = replace(base_scenario(), partition_mode=PartitionMode.SHARED)
    store = ExperimentRunner(workers=1).run([scenario])
    record = store.records[0]
    assert record.mode == "shared"
    assert record.shared is not None
    assert record.partitioned is None and record.plan is None
    assert record.profile_key is None
    assert len(profile_counter) == 0  # no miss curves needed
    assert record.miss_reduction_factor is None


def test_way_mode_assigns_columns_to_top_tasks():
    from dataclasses import replace

    scenario = replace(
        base_scenario(), partition_mode=PartitionMode.WAY_PARTITIONED
    )
    record = ExperimentRunner(workers=1).run([scenario]).records[0]
    assignment = record.payload["way_assignment"]
    ways = scenario.cake.hierarchy.l2_geometry.ways
    assert assignment and len(assignment) <= ways
    assert all(owner.startswith("task:") for owner in assignment)
    assert record.partitioned is not None and record.plan is None


def test_set_mode_record_contents():
    record = ExperimentRunner(workers=1).run([base_scenario()]).records[0]
    assert record.mode == "set"
    assert record.partitioned["cross_evictions"] == 0
    assert record.plan and record.predicted_misses is not None
    assert record.compositionality_max_rel_diff is not None
    assert record.payload["axes"]["sizes"] == [1, 2]


def test_runner_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        ExperimentRunner(workers=0)


# -- execution backends --------------------------------------------------------


def test_make_backend_names_and_default():
    from repro.exp import (
        AsyncBackend,
        InlineBackend,
        ProcessPoolBackend,
        make_backend,
    )

    assert isinstance(make_backend(None, workers=1), InlineBackend)
    assert isinstance(make_backend(None, workers=3), ProcessPoolBackend)
    assert isinstance(make_backend("inline", workers=8), InlineBackend)
    pool = make_backend("pool", workers=3)
    assert isinstance(pool, ProcessPoolBackend) and pool.workers == 3
    concurrent = make_backend("async", workers=5)
    assert isinstance(concurrent, AsyncBackend) and concurrent.concurrency == 5
    assert make_backend(pool, workers=1) is pool
    with pytest.raises(ConfigurationError):
        make_backend("carrier-pigeon")
    with pytest.raises(ConfigurationError):
        AsyncBackend(concurrency=0)


def test_async_backend_matches_inline_fingerprint(tmp_path):
    from repro.exp import AsyncBackend

    scenarios = sweep(base_scenario(), l2_size_kb=[64, 128],
                      solver=["dp", "greedy"])
    serial = ExperimentRunner(workers=1).run(scenarios)
    clear_caches()
    concurrent = ExperimentRunner(
        backend=AsyncBackend(concurrency=4),
        store_path=str(tmp_path / "async.jsonl"),
    ).run(scenarios)
    assert concurrent.fingerprint() == serial.fingerprint()
    # Streamed JSONL preserves scenario order too.
    assert ResultStore.load(tmp_path / "async.jsonl").canonical() == \
        serial.canonical()


def test_backend_map_yields_results_in_task_order():
    from repro.exp import AsyncBackend, InlineBackend, ProcessPoolBackend

    tasks = [{"scenario": None, "index": i} for i in range(12)]

    def worker(task):
        return task["index"]

    assert list(InlineBackend().map(worker, tasks)) == list(range(12))
    assert list(AsyncBackend(concurrency=6).map(worker, tasks)) == \
        list(range(12))
    assert list(ProcessPoolBackend(workers=3).map(_index_worker, tasks)) == \
        list(range(12))
    assert list(ProcessPoolBackend(workers=3).map(_index_worker, [])) == []


def _index_worker(task):
    """Module-level so the process pool can pickle it."""
    return task["index"]


def test_async_backend_streams_results_before_a_failure():
    """A failing task must not discard completed predecessors: records
    stream in task order until the failure, like the lazy backends."""
    from repro.exp import AsyncBackend

    def worker(task):
        if task["index"] == 4:
            raise ValueError("boom")
        return task["index"]

    received = []
    with pytest.raises(ValueError, match="boom"):
        for result in AsyncBackend(concurrency=3).map(
            worker, [{"index": i} for i in range(6)]
        ):
            received.append(result)
    assert received == [0, 1, 2, 3]


def test_async_backend_is_lazy_until_iterated():
    """An unconsumed map() must do no work -- parity with the lazy
    inline/pool backends."""
    import gc

    from repro.exp import AsyncBackend

    calls = []

    def worker(task):
        calls.append(task["index"])
        return task["index"]

    results = AsyncBackend(concurrency=2).map(
        worker, [{"index": i} for i in range(3)]
    )
    assert calls == []  # nothing scheduled yet
    del results
    gc.collect()
    assert calls == []  # dropping it unconsumed runs nothing either
    assert list(AsyncBackend(concurrency=2).map(
        worker, [{"index": i} for i in range(3)]
    )) == [0, 1, 2]


def test_async_backend_runs_inside_a_running_event_loop():
    import asyncio

    from repro.exp import AsyncBackend

    async def driver():
        return list(AsyncBackend(concurrency=2).map(
            _index_worker, [{"index": i} for i in range(4)]
        ))

    assert asyncio.run(driver()) == [0, 1, 2, 3]


def test_async_backend_failure_does_not_poison_reuse():
    """An exception in one sweep leaves the backend fully reusable:
    the loop thread and executor are retired per map(), so the next
    sweep starts clean."""
    from repro.exp import AsyncBackend

    backend = AsyncBackend(concurrency=2)

    def broken(task):
        raise RuntimeError(f"task {task['index']} broke")

    with pytest.raises(RuntimeError, match="task 0 broke"):
        list(backend.map(broken, [{"index": i} for i in range(4)]))
    assert list(
        backend.map(_index_worker, [{"index": i} for i in range(4)])
    ) == [0, 1, 2, 3]


def test_async_backend_cancellation_mid_sweep():
    """Closing the stream mid-sweep cancels the unstarted tail (the
    concurrency gate never admits it) and leaves the backend usable."""
    import time as time_module

    from repro.exp import AsyncBackend

    backend = AsyncBackend(concurrency=1)
    started = []

    def slow(task):
        started.append(task["index"])
        time_module.sleep(0.05)
        return task["index"]

    stream = backend.map(slow, [{"index": i} for i in range(6)])
    assert next(stream) == 0
    stream.close()  # abandon the sweep after one result
    # With concurrency=1 only the task admitted while result 0 was
    # being consumed can have started; the far tail never ran.
    assert 0 in started and 5 not in started
    started.clear()
    assert list(
        backend.map(slow, [{"index": i} for i in range(3)])
    ) == [0, 1, 2]
    assert started == [0, 1, 2]


def test_failed_task_does_not_poison_subsequent_runs(monkeypatch):
    """A task failure surfaces to the caller, keeps the records that
    finished first, and leaves the runner good for the next sweep."""
    scenarios = sweep(base_scenario(), solver=["dp", "greedy"])
    real_execute = runner_module._execute_task

    def flaky_execute(task):
        scenario = Scenario.from_dict(task["scenario"])
        if scenario.method.solver == "greedy":
            raise ValueError("injected greedy failure")
        return real_execute(task)

    monkeypatch.setattr(runner_module, "_execute_task", flaky_execute)
    runner = ExperimentRunner(workers=1)
    partial = ResultStore()
    with pytest.raises(ValueError, match="injected greedy failure"):
        runner.run(scenarios, store=partial)
    # The dp record streamed before the greedy task failed.
    assert [r.axes["solver"] for r in partial] == ["dp"]

    monkeypatch.setattr(runner_module, "_execute_task", real_execute)
    recovered = runner.run(scenarios, store=ResultStore())
    assert len(recovered) == 2
    assert {r.axes["solver"] for r in recovered} == {"dp", "greedy"}
