"""Experiment runner: memoization, determinism, partition modes.

The acceptance contract of the sweep layer lives here:

- same grid point twice -> one profiling pass, identical records
  (modulo timing),
- a 16-scenario grid run with ``workers=4`` produces a store identical
  (ignoring timing) to ``workers=1``,
- profiling executes at most once per unique profile key.
"""

import pytest

import repro.exp.runner as runner_module
from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentRunner,
    ResultStore,
    Scenario,
    WorkloadSpec,
    clear_caches,
    run_scenario,
    sweep,
)
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts with empty memo tables."""
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def profile_counter(monkeypatch):
    """Counts actual profiling passes in this process."""
    calls = []
    original = runner_module._compute_profile

    def counting(scenario):
        calls.append(scenario.profile_key)
        return original(scenario)

    monkeypatch.setattr(runner_module, "_compute_profile", counting)
    return calls


def small_cake(**kwargs):
    return CakeConfig(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
        **kwargs,
    )


def base_scenario():
    return Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 3, "n_tokens": 6, "work_bytes": 6 * 1024},
        ),
        cake=small_cake(),
        method=MethodConfig(sizes=[1, 2]),
    )


# -- memoization ---------------------------------------------------------------


def test_same_grid_point_twice_profiles_once(profile_counter):
    scenario = base_scenario()
    runner = ExperimentRunner(workers=1)
    store = runner.run([scenario, scenario])
    assert len(store) == 2
    assert len(profile_counter) == 1
    assert runner.last_stats["profiles_computed"] == 1
    # Byte-identical records modulo the timing block.
    first, second = store.records
    assert first.canonical() == second.canonical()
    assert first.to_json_line() != "" and first.scenario_id == second.scenario_id


def test_l2_capacity_sweep_profiles_once(profile_counter):
    scenarios = sweep(base_scenario(), l2_size_kb=[64, 128],
                      solver=["dp", "greedy"])
    runner = ExperimentRunner(workers=1)
    store = runner.run(scenarios)
    assert len(store) == 4
    # One profile key covers the whole capacity x solver grid.
    assert len(profile_counter) == 1
    assert runner.last_stats == {
        "scenarios": 4,
        "profiles_computed": 1, "profiles_cached": 0,
        "baselines_computed": 2, "baselines_cached": 0,
    }


def test_profile_cache_survives_across_runner_calls(profile_counter):
    scenario = base_scenario()
    ExperimentRunner(workers=1).run([scenario])
    assert len(profile_counter) == 1
    second = ExperimentRunner(workers=1)
    second.run([scenario])
    assert len(profile_counter) == 1  # still one pass, cache hit
    assert second.last_stats["profiles_cached"] == 1
    assert second.last_stats["baselines_cached"] == 1


def test_run_scenario_uses_the_same_caches(profile_counter):
    scenario = base_scenario()
    outcome = run_scenario(scenario)
    assert outcome.report is not None
    ExperimentRunner(workers=1).run([scenario])
    assert len(profile_counter) == 1
    # The inline record equals the runner's record (modulo timing).
    store = ExperimentRunner(workers=1).run([scenario])
    assert outcome.record.canonical() == store.records[0].canonical()


def test_repeated_runs_accumulate_in_the_runner_store(tmp_path):
    path = tmp_path / "sweeps.jsonl"
    path.write_text('{"stale": true}\n')  # a previous session's leftovers
    runner = ExperimentRunner(workers=1, store_path=str(path))
    first = runner.run([base_scenario()])
    assert len(first) == 1  # stale content truncated on first use
    second = runner.run(sweep(base_scenario(), solver=["greedy"]))
    assert second is first and len(second) == 2
    # Nothing was silently truncated between sweeps.
    assert len(ResultStore.load(path)) == 2


def test_distinct_profiling_inputs_profile_separately(profile_counter):
    scenarios = sweep(base_scenario(), n_cpus=[1, 2])
    ExperimentRunner(workers=1).run(scenarios)
    assert len(profile_counter) == 2


# -- determinism ---------------------------------------------------------------


def sixteen_scenario_grid():
    return sweep(
        base_scenario(),
        l2_size_kb=[64, 128],
        n_cpus=[1, 2],
        solver=["dp", "greedy"],
        seed=[20050307, 7],
    )


def test_workers_do_not_change_the_store(tmp_path, profile_counter):
    scenarios = sixteen_scenario_grid()
    assert len(scenarios) == 16

    serial = ExperimentRunner(
        workers=1, store_path=str(tmp_path / "serial.jsonl")
    ).run(scenarios)
    serial_profiles = len(profile_counter)
    # 2 cpus x 2 seeds vary profiling inputs; capacity/solver do not.
    assert serial_profiles == 4

    clear_caches()
    parallel_runner = ExperimentRunner(
        workers=4, store_path=str(tmp_path / "parallel.jsonl")
    )
    parallel = parallel_runner.run(scenarios)
    assert parallel_runner.last_stats["profiles_computed"] == 4

    assert serial.fingerprint() == parallel.fingerprint()
    assert serial.canonical() == parallel.canonical()
    # And the JSONL files round-trip to the same store.
    assert ResultStore.load(tmp_path / "serial.jsonl").fingerprint() == \
        ResultStore.load(tmp_path / "parallel.jsonl").fingerprint()


# -- partition modes -----------------------------------------------------------


def test_shared_mode_records_baseline_only(profile_counter):
    from dataclasses import replace

    scenario = replace(base_scenario(), partition_mode=PartitionMode.SHARED)
    store = ExperimentRunner(workers=1).run([scenario])
    record = store.records[0]
    assert record.mode == "shared"
    assert record.shared is not None
    assert record.partitioned is None and record.plan is None
    assert record.profile_key is None
    assert len(profile_counter) == 0  # no miss curves needed
    assert record.miss_reduction_factor is None


def test_way_mode_assigns_columns_to_top_tasks():
    from dataclasses import replace

    scenario = replace(
        base_scenario(), partition_mode=PartitionMode.WAY_PARTITIONED
    )
    record = ExperimentRunner(workers=1).run([scenario]).records[0]
    assignment = record.payload["way_assignment"]
    ways = scenario.cake.hierarchy.l2_geometry.ways
    assert assignment and len(assignment) <= ways
    assert all(owner.startswith("task:") for owner in assignment)
    assert record.partitioned is not None and record.plan is None


def test_set_mode_record_contents():
    record = ExperimentRunner(workers=1).run([base_scenario()]).records[0]
    assert record.mode == "set"
    assert record.partitioned["cross_evictions"] == 0
    assert record.plan and record.predicted_misses is not None
    assert record.compositionality_max_rel_diff is not None
    assert record.payload["axes"]["sizes"] == [1, 2]


def test_runner_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        ExperimentRunner(workers=0)
