"""Scenario specs: registry, serialisation, content hashes, grids."""

import pytest

from repro.cake import CakeConfig
from repro.core import BufferPolicy, MethodConfig
from repro.errors import ConfigurationError
from repro.exp import (
    Grid,
    Scenario,
    WorkloadSpec,
    register_workload,
    registered_workloads,
    sweep,
    workload_builder,
)
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode


def small_cake():
    return CakeConfig(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
    )


def base_scenario(**method_kwargs):
    return Scenario(
        workload=WorkloadSpec("pipeline", {"n_stages": 3, "n_tokens": 8}),
        cake=small_cake(),
        method=MethodConfig(sizes=[1, 2], **method_kwargs),
    )


# -- workload registry ---------------------------------------------------------


def test_builtin_workloads_registered():
    names = registered_workloads()
    assert {"two_jpeg_canny", "mpeg2", "pipeline"} <= set(names)


def test_workload_builder_applies_kwargs():
    builder = workload_builder("pipeline", n_stages=4, n_tokens=2)
    network = builder()
    assert len(network.tasks) == 4


def test_unknown_workload_rejected():
    with pytest.raises(ConfigurationError):
        workload_builder("frame_interpolator")
    with pytest.raises(ConfigurationError):
        WorkloadSpec("frame_interpolator").build()


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError):
        register_workload("pipeline", lambda: None)


# -- scenario identity ---------------------------------------------------------


def test_scenario_id_is_stable():
    assert base_scenario().scenario_id == base_scenario().scenario_id
    # The hash is content-derived, so it is stable across sessions too;
    # a change here means every stored scenario_id silently rotted.
    assert len(base_scenario().scenario_id) == 16


def test_scenario_id_covers_every_knob_but_the_tag():
    from dataclasses import replace

    base = base_scenario()
    assert replace(base, tag="label").scenario_id == base.scenario_id
    different = [
        replace(base, workload=WorkloadSpec("pipeline", {"n_stages": 4})),
        base.with_method(solver="greedy"),
        base.with_method(fifo_policy=BufferPolicy.ALL_MISS),
        base.with_cake(n_cpus=4),
        replace(base, cake=base.cake.with_l2_size(128 * 1024)),
        replace(base, partition_mode=PartitionMode.SHARED),
        replace(base, seed=7),
    ]
    ids = {scenario.scenario_id for scenario in different}
    assert base.scenario_id not in ids
    assert len(ids) == len(different)


def test_scenario_roundtrips_through_dict():
    base = base_scenario()
    clone = Scenario.from_dict(base.to_dict())
    assert clone.scenario_id == base.scenario_id
    assert clone.profile_key == base.profile_key
    assert clone.effective_cake == base.effective_cake
    assert clone.to_dict() == base.to_dict()


def test_seed_override_folds_into_cake():
    from dataclasses import replace

    base = base_scenario()
    seeded = replace(base, seed=99)
    assert seeded.effective_cake.seed == 99
    assert seeded.scenario_id != base.scenario_id
    # Same seed spelled two ways is the same scenario.
    explicit = replace(base, cake=replace(base.cake, seed=99))
    assert explicit.scenario_id == seeded.scenario_id


# -- profile key ---------------------------------------------------------------


def test_profile_key_shared_across_l2_capacity_and_solver():
    from dataclasses import replace

    base = base_scenario()
    assert base.profile_key == \
        replace(base, cake=base.cake.with_l2_size(128 * 1024)).profile_key
    assert base.profile_key == base.with_method(solver="milp").profile_key
    assert base.profile_key == \
        replace(base, partition_mode=PartitionMode.WAY_PARTITIONED).profile_key


def test_profile_key_tracks_profiling_inputs():
    from dataclasses import replace

    base = base_scenario()
    assert base.with_method(sizes=[1, 4]).profile_key != base.profile_key
    assert base.with_method(profile_repeats=2).profile_key != base.profile_key
    assert base.with_method(
        fifo_policy=BufferPolicy.ALL_MISS
    ).profile_key != base.profile_key
    assert base.with_cake(n_cpus=4).profile_key != base.profile_key
    assert replace(base, seed=7).profile_key != base.profile_key
    # Associativity changes unit_bytes, so it must re-profile.
    assert replace(
        base, cake=base.cake.with_l2_ways(8)
    ).profile_key != base.profile_key


def test_default_sizes_menu_resolved_per_l2_capacity():
    from dataclasses import replace

    auto = Scenario(
        workload=WorkloadSpec("pipeline"), cake=small_cake(),
        method=MethodConfig(),
    )
    assert auto.resolved_sizes == [1, 2, 4, 8]  # 32 units // 4
    bigger = replace(auto, cake=auto.cake.with_l2_size(128 * 1024))
    assert bigger.resolved_sizes == [1, 2, 4, 8, 16]
    # Different resolved menus -> different profiling work.
    assert auto.profile_key != bigger.profile_key


# -- grids ---------------------------------------------------------------------


def test_sweep_expands_cartesian_product_in_order():
    scenarios = sweep(
        base_scenario(),
        l2_size_kb=[64, 128],
        solver=["dp", "greedy"],
    )
    assert len(scenarios) == 4
    sizes = [s.cake.hierarchy.l2_geometry.size_bytes // 1024 for s in scenarios]
    solvers = [s.method.solver for s in scenarios]
    assert sizes == [64, 64, 128, 128]  # last axis varies fastest
    assert solvers == ["dp", "greedy", "dp", "greedy"]


def test_grid_points_report_axis_assignments():
    grid = Grid(base_scenario()).axis("n_cpus", [1, 2]).axis("seed", [1, 2])
    assert grid.axis_names == ["n_cpus", "seed"]
    assert len(grid) == 4
    points = list(grid.points())
    assert points[0][0] == {"n_cpus": 1, "seed": 1}
    assert points[-1][0] == {"n_cpus": 2, "seed": 2}
    assert points[-1][1].effective_cake.n_cpus == 2


def test_grid_workload_axis_accepts_names_and_specs():
    scenarios = sweep(
        base_scenario(),
        workload=[
            "pipeline",
            ("pipeline", {"n_stages": 5}),
            WorkloadSpec("mpeg2", {"scale": "test"}),
        ],
    )
    assert [s.workload.name for s in scenarios] == \
        ["pipeline", "pipeline", "mpeg2"]
    assert scenarios[1].workload.kwargs == {"n_stages": 5}


def test_grid_rejects_unknown_axis_and_empty_values():
    with pytest.raises(ConfigurationError):
        sweep(base_scenario(), l3_size=[1])
    with pytest.raises(ConfigurationError):
        Grid(base_scenario()).axis("solver", [])


def test_grid_custom_axis_apply():
    from dataclasses import replace

    def double_quantum(scenario, value):
        return scenario.with_cake(quantum_cycles=value)

    grid = Grid(base_scenario()).axis(
        "quantum", [10_000, 20_000], apply=double_quantum
    )
    scenarios = grid.scenarios()
    assert [s.cake.quantum_cycles for s in scenarios] == [10_000, 20_000]


def test_mode_axis_accepts_enum_and_string():
    scenarios = sweep(
        base_scenario(), mode=["shared", PartitionMode.SET_PARTITIONED]
    )
    assert scenarios[0].partition_mode is PartitionMode.SHARED
    assert scenarios[1].partition_mode is PartitionMode.SET_PARTITIONED
    assert not scenarios[0].needs_profile
    assert scenarios[1].needs_profile


def test_describe_mentions_the_key_axes():
    text = base_scenario().describe()
    assert "pipeline" in text and "l2=64KB" in text and "solver=dp" in text


# -- property-based identity ---------------------------------------------------
#
# The content hashes are load-bearing for the persistent profile cache
# (identical keys must mean identical work), so their invariants get
# randomized coverage: hypothesis when it is installed, seeded-random
# loops otherwise -- both drive the same ``_check_*`` properties
# through a ``random.Random``-compatible source.

import random  # noqa: E402

from repro.exp import AXES  # noqa: E402

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs no hypothesis
    HAVE_HYPOTHESIS = False

#: (axis name, candidate values) -- all combinations keep the default
#: 512 KB / 64 B-line cake geometrically valid.
AXIS_DOMAIN = [
    ("l2_size_kb", [128, 256, 512]),
    ("l2_ways", [2, 4, 8]),
    ("n_cpus", [1, 2, 4]),
    ("solver", ["dp", "greedy", "milp"]),
    ("sizes", [[1, 2], [1, 2, 4], [2, 4, 8]]),
    ("seed", [1, 7, 20050307]),
    ("fifo_policy", ["all-hit", "all-miss"]),
    ("scheduling", ["static", "migrate"]),
]


def _apply_axes(scenario, choices):
    for name, value in choices:
        scenario = AXES[name](scenario, value)
    return scenario


def _check_axis_order_independence(rng):
    """Distinct axes commute: any application order, one scenario_id."""
    choices = [
        (name, rng.choice(values))
        for name, values in AXIS_DOMAIN
        if rng.random() < 0.7
    ]
    base = Scenario(
        workload=WorkloadSpec("pipeline", {"n_stages": 3, "n_tokens": 8}),
        method=MethodConfig(sizes=[1, 2]),
    )
    forward = _apply_axes(base, choices)
    shuffled = _apply_axes(base, rng.sample(choices, len(choices)))
    assert forward.scenario_id == shuffled.scenario_id
    assert forward.profile_key == shuffled.profile_key
    assert forward.baseline_key == shuffled.baseline_key
    # And the identity survives the JSON round-trip.
    clone = Scenario.from_dict(forward.to_dict())
    assert clone.scenario_id == forward.scenario_id
    assert clone.profile_key == forward.profile_key


def _check_l2_sets_round_trip(rng):
    cake = CakeConfig()
    original_sets = cake.hierarchy.l2_geometry.sets
    sets = rng.choice([256, 512, 1024, 2048, 4096])
    resized = cake.with_l2_sets(sets)
    assert resized.hierarchy.l2_geometry.sets == sets
    assert resized.hierarchy.l2_geometry.ways == \
        cake.hierarchy.l2_geometry.ways
    assert resized.with_l2_sets(original_sets) == cake
    scenario = Scenario(workload=WorkloadSpec("pipeline"), cake=cake,
                        method=MethodConfig(sizes=[1, 2]))
    from dataclasses import replace

    restored = replace(scenario, cake=resized.with_l2_sets(original_sets))
    assert restored.scenario_id == scenario.scenario_id


def _check_l2_ways_round_trip(rng):
    cake = CakeConfig()
    original_ways = cake.hierarchy.l2_geometry.ways
    ways = rng.choice([2, 4, 8, 16])
    rewayed = cake.with_l2_ways(ways)
    assert rewayed.hierarchy.l2_geometry.ways == ways
    # Capacity is preserved: sets shrink as ways grow.
    assert rewayed.hierarchy.l2_geometry.size_bytes == \
        cake.hierarchy.l2_geometry.size_bytes
    assert rewayed.with_l2_ways(original_ways) == cake


def _check_capacity_and_solver_share_profile_key(rng):
    """The invariant the cache's cross-sweep reuse rests on."""
    from dataclasses import replace

    base = base_scenario()
    variant = base
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(["size", "sets", "solver", "mode"])
        if kind == "size":
            variant = replace(
                variant,
                cake=variant.cake.with_l2_size(
                    rng.choice([64, 128, 256]) * 1024
                ),
            )
        elif kind == "sets":
            variant = replace(
                variant,
                cake=variant.cake.with_l2_sets(
                    rng.choice([128, 256, 512, 1024])
                ),
            )
        elif kind == "solver":
            variant = variant.with_method(
                solver=rng.choice(["dp", "greedy", "milp"])
            )
        else:
            variant = replace(
                variant,
                partition_mode=rng.choice(
                    [PartitionMode.SET_PARTITIONED,
                     PartitionMode.WAY_PARTITIONED]
                ),
            )
    assert variant.profile_key == base.profile_key


_PROPERTIES = [
    _check_axis_order_independence,
    _check_l2_sets_round_trip,
    _check_l2_ways_round_trip,
    _check_capacity_and_solver_share_profile_key,
]

if HAVE_HYPOTHESIS:

    @pytest.mark.parametrize("prop", _PROPERTIES, ids=lambda p: p.__name__)
    @settings(max_examples=25, deadline=None)
    @given(rnd=st.randoms(use_true_random=False))
    def test_identity_properties(prop, rnd):
        prop(rnd)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("prop", _PROPERTIES, ids=lambda p: p.__name__)
    def test_identity_properties(prop):
        for case in range(25):
            prop(random.Random(f"20050307-{case}-{prop.__name__}"))
