"""Distributed sweep service: queue semantics, wire protocol, parity.

The acceptance contract of the service layer:

- the :class:`WorkQueue` leases with deadlines, retries with bounded
  exponential backoff, dedupes content-identical submissions and keeps
  the first result per task (all pinned with a fake clock),
- the HTTP face round-trips the whole protocol and fails bad traffic
  with useful statuses,
- the end-to-end differential gate: one grid run via (a) inline,
  (b) process pool, (c) server + 2 workers produces byte-identical
  store fingerprints; killing a worker mid-sweep (the lease-expiry
  path) still converges with no lost or duplicated records,
- a warm shared cache means a fresh server + fleet performs zero
  profiling passes.
"""

import json
import threading
import time

import pytest

from repro.core.profiling import profiling_passes
from repro.errors import ConfigurationError, ServiceError
from repro.exp import (
    ExperimentRunner,
    RemoteBackend,
    Scenario,
    ServiceClient,
    SweepServer,
    WorkloadSpec,
    clear_caches,
    make_backend,
    run_worker,
    sweep,
)
from repro.exp.service.cli import main as service_main
from repro.exp.service.queue import WorkQueue, task_identity
from repro.exp.service.wire import parse_server_url, request
from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def base_scenario():
    return Scenario(
        workload=WorkloadSpec(
            "pipeline",
            {"n_stages": 3, "n_tokens": 6, "work_bytes": 6 * 1024},
        ),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(sizes=[1, 2]),
    )


def smoke_grid():
    return sweep(base_scenario(), l2_size_kb=[64, 128],
                 solver=["dp", "greedy"])


# -- WorkQueue unit contracts (fake clock) -------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_queue_dedupes_and_leases_fifo():
    queue = WorkQueue(lease_ttl=10.0)
    first = queue.submit("execute", {"x": 1})
    second = queue.submit("execute", {"x": 2})
    again = queue.submit("execute", {"x": 1})
    assert again == first == task_identity("execute", {"x": 1})
    assert queue.counters["submitted"] == 2
    assert queue.counters["deduped"] == 1

    lease_a = queue.lease("w1")
    lease_b = queue.lease("w2")
    assert lease_a["task"] == {"x": 1} and lease_a["attempt"] == 1
    assert lease_b["task"] == {"x": 2}
    assert queue.lease("w3") is None  # nothing left

    assert queue.complete(first, {"answer": 1}, worker="w1")
    assert queue.get_result(first) == {
        "state": "done", "attempts": 0, "result": {"answer": 1},
    }
    # Idempotent re-submission of a finished task: same id, result
    # immediately collectable, nothing re-queued.
    assert queue.submit("execute", {"x": 1}) == first
    assert queue.lease("w1") is None
    assert queue.get_result("no-such-task") == {"state": "unknown"}


def test_queue_lease_expiry_requeues_with_backoff():
    clock = FakeClock()
    queue = WorkQueue(
        lease_ttl=1.0, max_attempts=3, backoff_base=0.5, clock=clock
    )
    task_id = queue.submit("measure", {"kind": "profile"})
    queue.lease("doomed")
    assert queue.expire() == 0  # within the deadline

    clock.now += 1.5
    assert queue.expire() == 1
    assert queue.counters["expired_leases"] == 1
    assert queue.counters["retries"] == 1
    # Backing off: not leasable until now + backoff_base.
    assert queue.lease("w2") is None
    clock.now += 0.6
    retry = queue.lease("w2")
    assert retry["task_id"] == task_id and retry["attempt"] == 2

    # Heartbeats extend the deadline, so a slow-but-alive worker keeps
    # its lease across many TTLs.
    clock.now += 0.8
    assert queue.heartbeat("w2", retry["lease_id"]) is True
    clock.now += 0.8
    assert queue.expire() == 0
    # A heartbeat on a lost lease says so.
    assert queue.heartbeat("w2", "L999") is False


def test_queue_bounded_attempts_then_terminal_failure():
    clock = FakeClock()
    queue = WorkQueue(
        lease_ttl=1.0, max_attempts=2, backoff_base=0.1, clock=clock
    )
    task_id = queue.submit("execute", {"x": 1})
    queue.lease("w1")
    assert queue.fail(task_id, "boom 1", worker="w1") is True  # retried
    clock.now += 1.0
    assert queue.lease("w1")["attempt"] == 2
    assert queue.fail(task_id, "boom 2", worker="w1") is False  # spent
    result = queue.get_result(task_id)
    assert result["state"] == "failed" and "boom 2" in result["error"]
    assert queue.counters["failed_tasks"] == 1

    # A fresh submission revives a terminally failed task.
    assert queue.submit("execute", {"x": 1}) == task_id
    revived = queue.lease("w1")
    assert revived is not None and revived["attempt"] == 1


def test_queue_first_result_wins_on_expired_lease_race():
    clock = FakeClock()
    queue = WorkQueue(lease_ttl=1.0, backoff_base=0.0, clock=clock)
    task_id = queue.submit("execute", {"x": 1})
    queue.lease("presumed-dead")
    clock.now += 2.0
    queue.expire()
    queue.lease("healthy")
    assert queue.complete(task_id, {"from": "healthy"}, worker="healthy")
    # The presumed-dead worker finishes anyway: dropped, counted.
    assert not queue.complete(task_id, {"from": "dead"}, worker="dead")
    assert queue.get_result(task_id)["result"] == {"from": "healthy"}
    assert queue.counters["duplicate_results"] == 1
    assert queue.counters["completed"] == 1


def test_queue_drain_stops_leasing():
    queue = WorkQueue(lease_ttl=10.0)
    task_id = queue.submit("execute", {"x": 1})
    queue.drain()
    assert queue.lease("w1") is None
    assert queue.draining and queue.status()["draining"]
    # Results of in-flight work are still collectable after drain.
    assert queue.complete(task_id, {"late": True})
    assert queue.get_result(task_id)["state"] == "done"


def test_queue_result_budget_evicts_oldest_done():
    queue = WorkQueue(lease_ttl=10.0, result_budget=2)
    ids = [queue.submit("execute", {"x": i}) for i in range(3)]
    for task_id in ids:
        queue.lease("w")
        queue.complete(task_id, {"x": task_id})
    queue.submit("execute", {"x": 99})  # triggers eviction
    assert queue.get_result(ids[0])["state"] == "unknown"
    assert queue.get_result(ids[2])["state"] == "done"


def test_queue_validates_configuration():
    with pytest.raises(ServiceError):
        WorkQueue(lease_ttl=0.0)
    with pytest.raises(ServiceError):
        WorkQueue(max_attempts=0)


# -- the HTTP face -------------------------------------------------------------


@pytest.fixture
def server():
    with SweepServer(port=0, lease_ttl=5.0) as live:
        yield live


def test_http_protocol_roundtrip(server):
    client = ServiceClient(server.url)
    client.wait_healthy(timeout=5.0)
    ids = client.submit([{"fn": "execute", "task": {"x": 1}}])

    leased = client.lease("w1")["task"]
    assert leased["task_id"] == ids[0] and leased["fn"] == "execute"
    assert client.heartbeat("w1", leased["lease_id"])["lease_valid"]
    client.complete(
        ids[0], {"answer": 42}, worker="w1",
        stats={"profiling_passes": 3, "wall_s": 0.25},
    )
    assert client.wait_result(ids[0], timeout=5.0) == {"answer": 42}

    status = client.status()
    assert status["queue"]["done"] == 1
    assert status["workers"]["w1"]["completed"] == 1
    assert status["counters"]["profiling_passes"] == 3
    assert status["cache"] is None  # no cache_dir seen yet


def test_http_failure_path_retries_then_fails(server):
    client = ServiceClient(server.url)
    ids = client.submit([{"fn": "execute", "task": {"x": 2}}])
    for attempt in range(1, 4):
        # Wait out the retry backoff (base 0.5s, real clock).
        deadline = time.monotonic() + 10.0
        while True:
            leased = client.lease("w1")["task"]
            if leased is not None:
                break
            assert time.monotonic() < deadline, "task never re-leased"
            time.sleep(0.05)
        assert leased["attempt"] == attempt
        retry = client.fail(ids[0], f"attempt {attempt} broke", worker="w1")
        assert retry is (attempt < 3)
    with pytest.raises(ServiceError, match="attempt 3 broke"):
        client.wait_result(ids[0], timeout=5.0)


def test_http_bad_traffic_gets_useful_statuses(server):
    host, port = parse_server_url(server.url)
    with pytest.raises(ServiceError, match="404"):
        request(host, port, "GET", "/no-such-endpoint")
    with pytest.raises(ServiceError, match="405"):
        request(host, port, "GET", "/submit")  # wrong method
    with pytest.raises(ServiceError, match="400"):
        request(host, port, "POST", "/submit", {"tasks": "not-a-list"})
    with pytest.raises(ServiceError, match="400"):
        request(host, port, "POST", "/lease", {"no": "worker"})
    # Raw non-JSON body -> 400, not a wedged connection.
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=5.0)
    try:
        conn.request("POST", "/lease", body="this is not json",
                     headers={"Content-Length": "16"})
        assert conn.getresponse().status == 400
    finally:
        conn.close()


def test_cli_status_json_and_drain(server, capsys):
    client = ServiceClient(server.url)
    client.submit([{"fn": "execute", "task": {"x": 3}}])
    assert service_main(
        ["status", "--server", server.url, "--json", "--wait", "5"]
    ) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["queue"]["pending"] == 1 and not status["draining"]

    assert service_main(["drain", "--server", server.url]) == 0
    assert client.lease("w")["draining"] is True
    # A pulling worker exits promptly on the drain notice.
    assert run_worker(url=server.url, worker_id="w2",
                      poll_interval=0.01) == 0


# -- backend construction ------------------------------------------------------


def test_make_backend_remote_and_helpful_unknown_error(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_SERVER", "http://127.0.0.1:19999")
    backend = make_backend("remote", workers=1)
    assert isinstance(backend, RemoteBackend)
    assert backend.concurrency >= 16  # fleet-friendly floor
    assert make_backend("remote", workers=40).concurrency == 40

    with pytest.raises(ConfigurationError) as excinfo:
        make_backend("smoke-signals")
    message = str(excinfo.value)
    for name in ("inline", "pool", "async", "remote", "auto"):
        assert name in message


def test_remote_backend_requires_a_server_url(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_SERVER", raising=False)
    with pytest.raises(ServiceError, match="REPRO_SWEEP_SERVER"):
        RemoteBackend()


def test_remote_backend_rejects_non_protocol_workers(server):
    backend = RemoteBackend(server.url)
    with pytest.raises(ConfigurationError, match="JSON task protocol"):
        list(backend.map(lambda task: task, [{"x": 1}]))


# -- end-to-end differential gate ----------------------------------------------


def _start_workers(url, count, stop):
    threads = []
    for index in range(count):
        thread = threading.Thread(
            target=run_worker,
            kwargs=dict(url=url, worker_id=f"w{index}",
                        poll_interval=0.02, stop=stop),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


def test_three_way_fingerprint_parity_and_warm_fleet(tmp_path):
    scenarios = smoke_grid()
    cache_dir = str(tmp_path / "cache")

    inline = ExperimentRunner(workers=1).run(scenarios)
    clear_caches()
    pooled = ExperimentRunner(workers=2).run(scenarios)
    assert pooled.fingerprint() == inline.fingerprint()
    clear_caches()

    # (c) server + 2 workers, cold shared cache.
    with SweepServer(port=0, lease_ttl=10.0) as first_server:
        stop = threading.Event()
        workers = _start_workers(first_server.url, 2, stop)
        runner = ExperimentRunner(
            backend=RemoteBackend(first_server.url, poll_interval=0.02),
            cache=cache_dir,
            store_path=str(tmp_path / "remote.jsonl"),
        )
        remote = runner.run(scenarios)
        assert remote.fingerprint() == inline.fingerprint()
        assert remote.canonical() == inline.canonical()
        assert len(remote) == 4
        assert runner.last_stats["profiles_computed"] == 1

        client = ServiceClient(first_server.url)
        status = client.status()
        assert status["counters"]["profiling_passes"] == 1
        assert status["counters"]["failed_tasks"] == 0
        assert status["cache"]["root"] == cache_dir
        assert status["cache"]["entries"] >= 3  # 1 profile + 2 baselines

        # Re-submitting the same grid to the same server dedupes on
        # content identity: results come straight from the done set.
        clear_caches()
        resubmit_runner = ExperimentRunner(
            backend=RemoteBackend(first_server.url, poll_interval=0.02),
            cache=cache_dir,
        )
        resubmitted = resubmit_runner.run(scenarios)
        assert resubmitted.fingerprint() == inline.fingerprint()
        assert client.status()["counters"]["deduped"] >= 4
        stop.set()
        for thread in workers:
            thread.join(timeout=10.0)

    # A *fresh* server and fleet against the warm cache: tasks really
    # re-execute, but resolve everything from disk -- zero profiling
    # passes anywhere (workers run in-process, so the ground-truth
    # counter sees their work too).
    clear_caches()
    passes_before = profiling_passes()
    with SweepServer(port=0, lease_ttl=10.0) as second_server:
        stop = threading.Event()
        workers = _start_workers(second_server.url, 2, stop)
        warm_runner = ExperimentRunner(
            backend=RemoteBackend(second_server.url, poll_interval=0.02),
            cache=cache_dir,
        )
        warm = warm_runner.run(scenarios)
        stop.set()
        for thread in workers:
            thread.join(timeout=10.0)
        warm_status = ServiceClient(second_server.url).status()
    assert warm.fingerprint() == inline.fingerprint()
    assert profiling_passes() == passes_before
    assert warm_runner.last_stats["profiles_computed"] == 0
    assert warm_runner.last_stats["profiles_from_disk"] == 1
    assert warm_status["counters"]["profiling_passes"] == 0


def test_worker_death_lease_expiry_converges(tmp_path):
    """Kill a worker mid-sweep: its leased task expires, requeues, and
    the surviving worker converges to the exact inline store."""
    scenarios = smoke_grid()
    inline = ExperimentRunner(workers=1).run(scenarios)
    clear_caches()

    with SweepServer(port=0, lease_ttl=0.5, backoff_base=0.05) as server:
        client = ServiceClient(server.url)
        victim = {}

        def crasher():
            # A worker that leases exactly one task and dies without
            # completing, heartbeating or failing it.
            while not victim:
                reply = client.lease("crasher")
                if reply["task"] is not None:
                    victim.update(reply["task"])
                    return
                time.sleep(0.005)

        crash_thread = threading.Thread(target=crasher, daemon=True)
        crash_thread.start()
        stop = threading.Event()

        def healthy_after_the_crash():
            crash_thread.join()
            _start_workers(server.url, 1, stop)

        threading.Thread(target=healthy_after_the_crash,
                         daemon=True).start()

        runner = ExperimentRunner(
            backend=RemoteBackend(
                server.url, poll_interval=0.02, task_timeout=120.0
            ),
            cache=str(tmp_path / "cache"),
        )
        store = runner.run(scenarios)
        stop.set()
        status = client.status()

    assert victim, "the crashing worker never leased a task"
    assert status["counters"]["expired_leases"] >= 1
    assert status["counters"]["retries"] >= 1
    assert status["counters"]["failed_tasks"] == 0
    # No lost and no duplicated records, and bit-identical results.
    assert len(store) == 4
    assert store.fingerprint() == inline.fingerprint()
    assert store.canonical() == inline.canonical()


def test_remote_task_failure_surfaces_after_bounded_retries(server):
    """A task that fails on every attempt errors the sweep instead of
    hanging, and carries the worker's error detail."""
    backend = RemoteBackend(server.url, poll_interval=0.02,
                            task_timeout=30.0)
    stop = threading.Event()

    def broken_worker():
        client = ServiceClient(server.url)
        while not stop.is_set():
            reply = client.lease("broken")
            leased = reply.get("task")
            if leased is None:
                time.sleep(0.01)
                continue
            client.fail(leased["task_id"],
                        "ValueError: injected task failure",
                        worker="broken")

    thread = threading.Thread(target=broken_worker, daemon=True)
    thread.start()
    from repro.exp.runner import _execute_task

    try:
        with pytest.raises(ServiceError, match="injected task failure"):
            list(backend.map(_execute_task, [{"scenario": {}}]))
    finally:
        stop.set()
        thread.join(timeout=5.0)
