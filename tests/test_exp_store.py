"""Result store: schema round-trip, queries, fingerprints, reports."""

import json

import pytest

from repro.analysis import report_from_store
from repro.cake import CakeConfig
from repro.core import MethodConfig
from repro.errors import ConfigurationError
from repro.exp import ResultStore, Scenario, ScenarioRecord, WorkloadSpec
from repro.exp.runner import _base_record
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig


def make_record(solver="dp", shared_misses=100, part_misses=20, tag=""):
    """A synthetic record in the stable schema (no simulation needed)."""
    scenario = Scenario(
        workload=WorkloadSpec("pipeline", {"n_stages": 3}),
        cake=CakeConfig(
            n_cpus=2,
            hierarchy=HierarchyConfig(
                l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
                l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
            ),
        ),
        method=MethodConfig(sizes=[1, 2], solver=solver),
        tag=tag,
    )
    payload = _base_record(scenario)
    payload["metrics"]["shared"] = {
        "accesses": 1000, "misses": shared_misses,
        "miss_rate": shared_misses / 1000, "mean_cpi": 1.4,
        "instructions": 5000, "elapsed_cycles": 9000.0,
        "cross_evictions": 42, "dram_lines": 200,
        "misses_by_owner": {"task:stage0": shared_misses},
    }
    payload["metrics"]["partitioned"] = {
        "accesses": 1000, "misses": part_misses,
        "miss_rate": part_misses / 1000, "mean_cpi": 1.1,
        "instructions": 5000, "elapsed_cycles": 8000.0,
        "cross_evictions": 0, "dram_lines": 60,
        "misses_by_owner": {"task:stage0": part_misses},
    }
    payload["plan"] = {
        "units_by_owner": {"task:stage0": 4}, "total_units": 32,
        "predicted_misses": float(part_misses),
    }
    payload["compositionality"] = {
        "max_relative_difference": 0.01, "total_simulated": part_misses,
    }
    payload["timing"] = {"wall_s": 1.5, "created_unix": 1_000_000.0}
    return payload


def test_store_appends_and_streams_jsonl(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path=path)
    store.append(make_record(solver="dp"))
    store.append(make_record(solver="greedy"))
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # records stream as they arrive
    assert json.loads(lines[0])["schema"] == 1


def test_store_roundtrips_through_load(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path=path)
    store.append(make_record(solver="dp"))
    store.append(make_record(solver="greedy", part_misses=10))
    loaded = ResultStore.load(path)
    assert len(loaded) == 2
    assert loaded.canonical() == store.canonical()
    assert loaded.fingerprint() == store.fingerprint()
    assert [r.payload for r in loaded] == [r.payload for r in store]


def test_store_append_mode_extends_existing_file(tmp_path):
    path = tmp_path / "results.jsonl"
    ResultStore(path=path).append(make_record())
    appended = ResultStore(path=path, append=True)
    assert len(appended) == 1
    appended.append(make_record(solver="greedy"))
    assert len(ResultStore.load(path)) == 2
    # Default (no append) truncates.
    fresh = ResultStore(path=path)
    assert len(fresh) == 0 and path.read_text() == ""


def test_fingerprint_ignores_timing_only(tmp_path):
    a, b = make_record(), make_record()
    b["timing"] = {"wall_s": 99.0, "created_unix": 2_000_000.0}
    store_a, store_b = ResultStore(), ResultStore()
    store_a.append(a)
    store_b.append(b)
    assert store_a.fingerprint() == store_b.fingerprint()
    c = make_record(part_misses=21)
    store_c = ResultStore()
    store_c.append(c)
    assert store_c.fingerprint() != store_a.fingerprint()


def test_record_rejects_unknown_schema():
    payload = make_record()
    payload["schema"] = 99
    with pytest.raises(ConfigurationError):
        ScenarioRecord(payload)


def test_record_derived_metrics():
    record = ScenarioRecord(make_record(shared_misses=100, part_misses=20))
    assert record.miss_reduction_factor == pytest.approx(5.0)
    assert record.cpi_improvement == pytest.approx((1.4 - 1.1) / 1.4)
    assert record.shared_miss_rate == pytest.approx(0.1)
    assert record.plan == {"task:stage0": 4}
    perfect = ScenarioRecord(make_record(part_misses=0))
    assert perfect.miss_reduction_factor == float("inf")


def test_record_scenario_roundtrip():
    record = ScenarioRecord(make_record(solver="greedy"))
    scenario = record.scenario
    assert scenario.method.solver == "greedy"
    assert scenario.scenario_id == record.scenario_id


def test_filter_by_axes_and_predicate():
    store = ResultStore()
    store.append(make_record(solver="dp"))
    store.append(make_record(solver="greedy"))
    store.append(make_record(solver="greedy", part_misses=50))
    assert len(store.filter(solver="dp")) == 1
    assert len(store.filter(solver="greedy")) == 2
    assert len(store.filter(solver="milp")) == 0
    good = store.filter(lambda r: r.miss_reduction_factor > 3)
    assert len(good) == 2


def test_to_table_default_and_custom_columns():
    store = ResultStore()
    store.append(make_record())
    header, rows = store.to_table()
    assert "workload" in header and "miss_reduction_factor" in header
    assert len(rows) == 1
    header, rows = store.to_table(("solver", "partitioned_misses"))
    assert rows == [["dp", 20]]


def test_filter_by_identity_uses_the_index():
    store = ResultStore()
    store.append(make_record(solver="dp"))
    store.append(make_record(solver="greedy"))
    target = store.records[0]
    hits = store.filter(scenario_id=target.scenario_id)
    assert hits.records == [target]
    assert store.filter(scenario_id="0123456789abcdef").records == []
    # profile_key narrows the same way, and composes with axes.
    keyed = store.filter(profile_key=target.profile_key, solver="dp")
    assert keyed.records == [target]
    assert store.filter(profile_key=target.profile_key,
                        solver="milp").records == []


_MISSING = object()


def test_filter_index_matches_linear_scan_on_5k_records():
    """Regression for the indexed fast path: identical results, order
    included, as the brute-force scan over a 5000-record store."""
    import copy

    template = make_record()
    store = ResultStore()
    for i in range(5000):
        payload = copy.deepcopy(template)
        payload["scenario_id"] = f"sid{i % 500:04d}"
        # Every 10th record is shared-mode (no profiling identity).
        payload["profile_key"] = None if i % 10 == 0 else f"pk{i % 40:03d}"
        payload["axes"]["solver"] = "dp" if i % 2 == 0 else "greedy"
        payload["axes"]["seed"] = i % 7
        store.append(payload)

    def linear(scenario_id=_MISSING, profile_key=_MISSING, **axes):
        result = []
        for record in store.records:
            if scenario_id is not _MISSING and \
                    record.scenario_id != scenario_id:
                continue
            if profile_key is not _MISSING and \
                    record.profile_key != profile_key:
                continue
            if any(record.axes.get(k) != v for k, v in axes.items()):
                continue
            result.append(record)
        return result

    queries = [
        {"scenario_id": "sid0000"},
        {"scenario_id": "sid0499"},
        {"scenario_id": "sid0123", "solver": "greedy"},
        {"scenario_id": "no-such-id"},
        {"profile_key": "pk000"},
        {"profile_key": "pk039", "seed": 4},
        {"profile_key": None},  # the shared-mode records
        {"scenario_id": "sid0004", "profile_key": "pk004"},
        {"scenario_id": "sid0004", "profile_key": "pk017"},  # disjoint
    ]
    for query in queries:
        assert store.filter(**query).records == linear(**query), query

    # The index extends over records appended after it was first used.
    late = copy.deepcopy(template)
    late["scenario_id"] = "sid-late"
    store.append(late)
    assert [r.scenario_id for r in store.filter(scenario_id="sid-late")] \
        == ["sid-late"]


def test_report_from_store_renders_axes_and_metrics():
    store = ResultStore()
    store.append(make_record(solver="dp"))
    store.append(make_record(solver="greedy", part_misses=0))
    text = report_from_store(store, title="unit sweep")
    assert "unit sweep (2 scenarios)" in text
    assert "dp" in text and "greedy" in text
    assert "∞" in text  # the perfect record renders as infinity
    assert "worst compositionality" in text


def _append_records(path, worker_index, count, barrier):
    """One appender process: its own ResultStore on the shared file."""
    store = ResultStore(path=path, append=True)
    barrier.wait()  # maximise interleaving
    for i in range(count):
        store.append(make_record(shared_misses=worker_index * 1000 + i))


def test_concurrent_appenders_interleave_whole_lines(tmp_path):
    """Four processes appending to one store file concurrently: every
    record survives intact (the O_APPEND single-write mirror never
    tears or overwrites a line)."""
    import multiprocessing

    path = tmp_path / "concurrent.jsonl"
    ResultStore(path=path)  # create the shared file once
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(4)
    processes = [
        ctx.Process(
            target=_append_records, args=(str(path), w, 25, barrier)
        )
        for w in range(4)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0

    # Load would raise on any torn line; the counter check catches a
    # lost (overwritten) record.
    loaded = ResultStore.load(path)
    assert len(loaded) == 100
    assert sorted(r.shared["misses"] for r in loaded) == sorted(
        w * 1000 + i for w in range(4) for i in range(25)
    )
