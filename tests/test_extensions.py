"""Tests for the §4.2 extension experiments: splitting a task's
instructions/data/bss into their own partitions, and deliberately
sharing a partition between owners."""

import pytest

from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.errors import PartitionError
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import OWNER_SHARED, PartitionMode, SetPartitionMap


def small_config():
    return CakeConfig(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
    )


def make_platform():
    network = make_pipeline(n_stages=3, n_tokens=12, work_bytes=8192)
    return Platform(network, small_config(),
                    mode=PartitionMode.SET_PARTITIONED)


# -- partition map aliasing ----------------------------------------------------


def test_alias_maps_into_target_partition():
    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=8)
    pmap.alias(owner=2, target=1)
    for line in range(100):
        assert pmap.map_index(2, line) == pmap.map_index(1, line)


def test_alias_validation():
    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=8)
    with pytest.raises(PartitionError):
        pmap.alias(owner=2, target=9)  # target has no partition
    with pytest.raises(PartitionError):
        pmap.alias(owner=OWNER_SHARED, target=1)
    pmap.assign(owner=3, base=8, n_sets=8)
    with pytest.raises(PartitionError):
        pmap.alias(owner=3, target=1)  # already exclusive


def test_alias_removed_with_target():
    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=8)
    pmap.alias(owner=2, target=1)
    pmap.remove(owner=1)
    # Both fall back to conventional indexing.
    assert pmap.map_index(2, 100) == 100 & 63


# -- split task regions ---------------------------------------------------------


def test_split_task_regions_creates_owners():
    platform = make_platform()
    names = platform.cache_controller.split_task_regions(
        "stage1", parts=("code", "data")
    )
    assert names == ["task:stage1:code", "task:stage1:data"]
    code_region = platform.layout.task_regions["stage1"]["code"]
    owner = platform.mem.resolver.intervals.lookup(code_region.base)
    assert platform.registry.name_of(owner) == "task:stage1:code"


def test_split_task_regions_unknown_part():
    platform = make_platform()
    with pytest.raises(PartitionError):
        platform.cache_controller.split_task_regions("stage1", parts=("rom",))


def test_split_code_partition_isolates_instruction_traffic():
    platform = make_platform()
    controller = platform.cache_controller
    controller.split_task_regions("stage1", parts=("code",))
    units = {"task:stage1:code": 2}
    for task in platform.network.tasks:
        units[f"task:{task}"] = 2
    for fifo in platform.network.fifos:
        units[f"fifo:{fifo}"] = 2
    controller.program_set_partitions(units)
    metrics = platform.run()
    code_stats = metrics.l2_by_owner.get("task:stage1:code")
    assert code_stats is not None and code_stats.accesses > 0
    assert metrics.l2_cross_evictions == 0


def test_shared_partition_between_twin_tasks():
    platform = make_platform()
    controller = platform.cache_controller
    units = {"task:stage0": 4, "task:stage2": 4}
    for fifo in platform.network.fifos:
        units[f"fifo:{fifo}"] = 2
    controller.program_set_partitions(units)
    # stage1 rides on stage0's partition.
    controller.share_partition("task:stage1", "task:stage0")
    metrics = platform.run()
    # Interference may exist between the sharing pair...
    pair = {platform.registry.id_of("task:stage0"),
            platform.registry.id_of("task:stage1")}
    outside = 0
    for (evictor, victim), count in \
            platform.mem.l2_stats.eviction_matrix.items():
        if evictor == victim:
            continue
        if evictor in pair and victim in pair:
            continue  # allowed: they opted into sharing
        # Pool owners may interfere among themselves; partitioned
        # owners must stay clean.
        if victim in pair or evictor in pair:
            outside += count
    assert outside == 0
