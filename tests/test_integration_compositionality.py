"""System-level integration tests of the paper's central claims,
exercised at test scale.

These encode the *qualitative* properties the paper establishes:
isolation (no inter-task evictions under partitioning), insensitivity
to allocation order (§4.1), and per-task miss counts that do not depend
on co-runners (compositionality).
"""

from functools import partial

import pytest

from repro.apps import two_jpeg_canny_workload
from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode


def small_config(**kwargs):
    defaults = dict(
        n_cpus=2,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
    )
    defaults.update(kwargs)
    return CakeConfig(**defaults)


def full_allocation(platform):
    """Every owner partitioned: tasks 2 units, buffers ring/window-sized."""
    units = {}
    unit_bytes = platform.config.unit_bytes
    for task in platform.network.tasks:
        units[f"task:{task}"] = 2
    for name, fifo in platform.network.fifos.items():
        units[f"fifo:{name}"] = max(1, -(-fifo.buffer_bytes // unit_bytes))
    for name, frame in platform.network.frames.items():
        units[f"frame:{name}"] = max(1, -(-frame.window_bytes // unit_bytes))
    for region in ("appl.data", "appl.bss", "rt.data", "rt.bss"):
        units[region] = 1
    return units


def run_partitioned(network, config=None, malloc_order=None):
    platform = Platform(
        network, config or small_config(),
        mode=PartitionMode.SET_PARTITIONED, malloc_order=malloc_order,
    )
    platform.cache_controller.program_set_partitions(
        full_allocation(platform)
    )
    return platform.run()


def test_partitioning_eliminates_all_interference():
    config = small_config(
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=1024, ways=4, line_size=64),
        ),
    )
    metrics = run_partitioned(two_jpeg_canny_workload(scale="test"), config)
    assert metrics.l2_cross_evictions == 0


def test_shared_cache_has_interference():
    platform = Platform(
        two_jpeg_canny_workload(scale="test", frames=2), small_config()
    )
    metrics = platform.run()
    assert metrics.l2_cross_evictions > 0


def test_malloc_order_changes_shared_but_not_partitioned():
    """§4.1: address placement affects a shared cache; partitions do not
    care because the translation ignores region placement."""
    def build():
        return make_pipeline(n_stages=3, n_tokens=16, work_bytes=8192)

    default_order = None
    from repro.rtos.shmalloc import _default_order
    reversed_order = list(reversed(_default_order(build())))

    config = small_config()
    shared = []
    partitioned = []
    for order in (default_order, reversed_order):
        platform = Platform(build(), config, malloc_order=order,
                            placement="bump")
        shared.append(platform.run().l2_misses)
        partitioned.append(
            Platform(build(), config, mode=PartitionMode.SET_PARTITIONED,
                     malloc_order=order, placement="bump")
        )
    results = []
    for platform in partitioned:
        platform.cache_controller.program_set_partitions(
            full_allocation(platform)
        )
        results.append(platform.run().l2_misses)
    assert shared[0] != shared[1]
    assert results[0] == results[1]


def test_per_task_misses_independent_of_corunners():
    """The compositionality property itself: a task's partitioned miss
    count does not change when unrelated co-runners change behaviour."""
    def build(extra_work):
        network = make_pipeline(n_stages=4, n_tokens=12, work_bytes=4096)
        network.tasks["stage1"].params["work_bytes"] = extra_work
        return network

    results = []
    for extra in (1024, 16384):
        platform = Platform(
            build(extra), small_config(), mode=PartitionMode.SET_PARTITIONED
        )
        platform.cache_controller.program_set_partitions(
            full_allocation(platform)
        )
        metrics = platform.run()
        results.append(metrics.l2_by_owner["task:stage3"].misses)
    assert results[0] == results[1]


def test_way_partitioning_granularity_limit():
    """Column caching cannot isolate more owners than there are ways --
    with 15 tasks on a 4-way cache most owners must share columns."""
    network = two_jpeg_canny_workload(scale="test")
    platform = Platform(
        network, small_config(),
        mode=PartitionMode.WAY_PARTITIONED,
    )
    # Only 4 owners can get exclusive ways; give one way each to the
    # four largest tasks, everyone else keeps all-way allocation.
    names = list(network.tasks)[:4]
    ways = {f"task:{name}": (i,) for i, name in enumerate(names)}
    platform.cache_controller.program_way_partitions(ways)
    metrics = platform.run()
    # The un-isolated majority still interferes.
    assert metrics.l2_cross_evictions > 0


def test_shared_pool_confines_unpartitioned_owners():
    network = make_pipeline(n_stages=3, n_tokens=8)
    platform = Platform(
        network, small_config(), mode=PartitionMode.SET_PARTITIONED
    )
    # Partition only one task; everything else falls in the pool.
    platform.cache_controller.program_set_partitions({"task:stage0": 2})
    metrics = platform.run()
    owner = platform.registry.id_of("task:stage0")
    for (evictor, victim) in platform.mem.l2_stats.eviction_matrix:
        if victim == owner:
            assert evictor == owner, "pool owner evicted a partitioned line"
