"""Tests for the process-network description and FIFO channels."""

import networkx as nx
import pytest

from repro.errors import NetworkError
from repro.kpn import (
    Compute,
    Delay,
    FifoChannel,
    FifoSpec,
    FrameBufferSpec,
    ProcessNetwork,
    ReadToken,
    TaskContext,
    TaskSpec,
    WriteToken,
)
from repro.kpn.fifo import ADMIN_BLOCK_BYTES
from repro.mem.address import Region, RegionKind


def dummy_program(ctx):
    yield ctx.delay(1)


def simple_network():
    network = ProcessNetwork("net")
    network.add_task(TaskSpec("a", dummy_program))
    network.add_task(TaskSpec("b", dummy_program))
    network.add_fifo(FifoSpec("f", "a", "out", "b", "in",
                              token_bytes=64, capacity_tokens=4))
    return network


def test_network_validates_ok():
    simple_network().validate()


def test_duplicate_names_rejected():
    network = simple_network()
    with pytest.raises(NetworkError):
        network.add_task(TaskSpec("a", dummy_program))
    with pytest.raises(NetworkError):
        network.add_fifo(FifoSpec("f", "a", "o2", "b", "i2", 64, 4))
    network.add_frame_buffer(FrameBufferSpec("fr", 1024))
    with pytest.raises(NetworkError):
        network.add_frame_buffer(FrameBufferSpec("fr", 1024))


def test_unknown_endpoint_rejected():
    network = ProcessNetwork("net")
    network.add_task(TaskSpec("a", dummy_program))
    network.add_fifo(FifoSpec("f", "a", "out", "ghost", "in", 64, 4))
    with pytest.raises(NetworkError):
        network.validate()


def test_port_bound_twice_rejected():
    network = simple_network()
    network.add_fifo(FifoSpec("f2", "a", "out", "b", "in2", 64, 4))
    with pytest.raises(NetworkError):
        network.validate()


def test_self_loop_rejected():
    network = ProcessNetwork("net")
    network.add_task(TaskSpec("a", dummy_program))
    network.add_fifo(FifoSpec("f", "a", "out", "a", "in", 64, 4))
    with pytest.raises(NetworkError):
        network.validate()


def test_task_graph_structure():
    graph = simple_network().task_graph()
    assert isinstance(graph, nx.DiGraph)
    assert set(graph.nodes) == {"a", "b"}
    assert graph.edges["a", "b"]["fifo"] == "f"


def test_ports_of():
    network = simple_network()
    assert set(network.ports_of("a")) == {"out"}
    assert set(network.ports_of("b")) == {"in"}


def test_frame_window_clamped_to_size():
    frame = FrameBufferSpec("fr", size_bytes=1024, window_bytes=4096)
    assert frame.window_bytes == 1024


def test_spec_validation():
    with pytest.raises(NetworkError):
        TaskSpec("t", dummy_program, code_bytes=0)
    with pytest.raises(NetworkError):
        FifoSpec("f", "a", "o", "b", "i", token_bytes=0, capacity_tokens=1)
    with pytest.raises(NetworkError):
        ReadToken("p", tokens=0)
    with pytest.raises(NetworkError):
        WriteToken("p", tokens=-1)
    with pytest.raises(NetworkError):
        Delay(cycles=-1)


# -- FIFO channel runtime ----------------------------------------------------


def make_channel(capacity=4, token=64):
    spec = FifoSpec("f", "a", "out", "b", "in", token_bytes=token,
                    capacity_tokens=capacity)
    buffer_region = Region("fifo.f", base=0x4000, size=spec.buffer_bytes,
                           kind=RegionKind.FIFO)
    admin_region = Region("rt.data", base=0x8000, size=4096,
                          kind=RegionKind.DATA)
    return FifoChannel(spec, buffer_region, admin_region, admin_offset=64)


def test_fifo_read_write_state_machine():
    fifo = make_channel()
    assert fifo.can_write(4) and not fifo.can_read(1)
    fifo.commit_write(3)
    assert fifo.tokens == 3
    assert fifo.can_read(3) and not fifo.can_read(4)
    fifo.commit_read(2)
    assert fifo.tokens == 1
    assert fifo.stats.tokens_produced == 3
    assert fifo.stats.tokens_consumed == 2
    assert fifo.stats.max_occupancy == 3


def test_fifo_overflow_underflow_rejected():
    fifo = make_channel(capacity=2)
    with pytest.raises(NetworkError):
        fifo.commit_read(1)
    fifo.commit_write(2)
    with pytest.raises(NetworkError):
        fifo.commit_write(1)
    with pytest.raises(NetworkError):
        fifo.write_batch(1)
    with pytest.raises(NetworkError):
        make_channel().read_batch(1)


def test_fifo_batches_touch_payload_and_admin():
    fifo = make_channel(capacity=4, token=64)
    fifo.commit_write(1)
    batch = fifo.read_batch(1)
    payload = (batch.addrs >= 0x4000) & (batch.addrs < 0x4000 + 256)
    admin = (batch.addrs >= 0x8000 + 64) & (
        batch.addrs < 0x8000 + 64 + ADMIN_BLOCK_BYTES
    )
    assert payload.sum() == 64 // 4
    assert admin.sum() == 6
    assert (payload | admin).all()


def test_fifo_ring_pointer_wraps():
    fifo = make_channel(capacity=4, token=64)
    for _ in range(6):
        fifo.commit_write(1)
        fifo.commit_read(1)
    assert fifo.read_ptr == fifo.write_ptr
    assert fifo.read_ptr < fifo.buffer_region.size


def test_fifo_write_batch_is_stores():
    fifo = make_channel()
    batch = fifo.write_batch(1)
    payload_mask = (batch.addrs >= 0x4000) & (batch.addrs < 0x8000)
    assert payload_mask.any()
    assert batch.writes[payload_mask].all()


# -- TaskContext ------------------------------------------------------------


def make_context():
    regions = {
        name: Region(f"t.{name}", base=0x1000 * (i + 1), size=2048,
                     kind=RegionKind.HEAP)
        for i, name in enumerate(("code", "data", "bss", "stack", "heap"))
    }
    shared = {"appl.data": Region("appl.data", base=0x20000, size=1024,
                                  kind=RegionKind.DATA)}
    frames = {"fr": Region("frame.fr", base=0x30000, size=4096,
                           kind=RegionKind.FRAME)}
    import numpy as np
    return TaskContext("t", {}, np.random.default_rng(0), regions, shared,
                       frames)


def test_context_region_accessors():
    ctx = make_context()
    assert ctx.code.name == "t.code"
    assert ctx.heap.name == "t.heap"
    assert ctx.shared("appl.data").base == 0x20000
    assert ctx.frame("fr").size == 4096
    with pytest.raises(NetworkError):
        ctx.shared("nope")
    with pytest.raises(NetworkError):
        ctx.frame("nope")


def test_context_ports_and_ops():
    ctx = make_context()
    fifo = make_channel()
    ctx.bind_port("out", fifo)
    assert ctx.port("out") is fifo
    with pytest.raises(NetworkError):
        ctx.bind_port("out", fifo)
    with pytest.raises(NetworkError):
        ctx.port("ghost")
    op = ctx.compute(ctx.stream(ctx.heap, 0, 64), ctx.fetch(10))
    assert isinstance(op, Compute)
    assert op.batch.n_accesses > 0
    assert isinstance(ctx.read("out"), ReadToken)
    assert isinstance(ctx.write("out", 2), WriteToken)
    assert isinstance(ctx.delay(5), Delay)
