"""Tests for regions, address spaces and memory maps."""

import pytest

from repro.errors import AddressError, MemoryModelError
from repro.mem.address import AddressSpace, MemoryMap, Region, RegionKind


def test_region_contains_and_offset():
    region = Region("r", base=0x1000, size=256, kind=RegionKind.DATA)
    assert region.contains(0x1000)
    assert region.contains(0x10FF)
    assert not region.contains(0x1100)
    assert region.offset(0x1010) == 0x10
    with pytest.raises(AddressError):
        region.offset(0x2000)


def test_region_validation():
    with pytest.raises(MemoryModelError):
        Region("bad", base=0, size=0, kind=RegionKind.DATA)
    with pytest.raises(MemoryModelError):
        Region("bad", base=-1, size=4, kind=RegionKind.DATA)


def test_bump_allocation_is_aligned_and_disjoint():
    space = AddressSpace(base=0, alignment=64)
    a = space.allocate("a", 100, RegionKind.CODE)
    b = space.allocate("b", 100, RegionKind.DATA)
    assert a.base % 64 == 0 and b.base % 64 == 0
    assert b.base >= a.end


def test_duplicate_region_name_rejected():
    space = AddressSpace()
    space.allocate("a", 64, RegionKind.CODE)
    with pytest.raises(MemoryModelError):
        space.allocate("a", 64, RegionKind.CODE)


def test_bad_alignment_rejected():
    with pytest.raises(MemoryModelError):
        AddressSpace(alignment=48)
    space = AddressSpace()
    with pytest.raises(MemoryModelError):
        space.allocate("x", 64, RegionKind.CODE, alignment=3)


def test_lookup_by_name():
    space = AddressSpace()
    region = space.allocate("heap", 128, RegionKind.HEAP, owner_name="t")
    assert space.region("heap") is region
    assert "heap" in space
    with pytest.raises(AddressError):
        space.region("nope")


def test_memory_map_find():
    space = AddressSpace(base=0)
    a = space.allocate("a", 64, RegionKind.CODE)
    b = space.allocate("b", 64, RegionKind.DATA)
    memory_map = MemoryMap(space)
    assert memory_map.find(a.base) is a
    assert memory_map.find(b.base + 10) is b
    with pytest.raises(AddressError):
        memory_map.find(b.end + 1024)
    assert memory_map.find_or_none(b.end + 1024) is None


def test_memory_map_regions_of_kind_and_footprint():
    space = AddressSpace()
    space.allocate("f1", 64, RegionKind.FIFO)
    space.allocate("c", 64, RegionKind.CODE)
    space.allocate("f2", 64, RegionKind.FIFO)
    memory_map = MemoryMap(space)
    names = [r.name for r in memory_map.regions_of_kind(RegionKind.FIFO)]
    assert names == ["f1", "f2"]
    assert memory_map.footprint() == 192


def test_scatter_is_deterministic_and_disjoint():
    def build(seed):
        space = AddressSpace(base=0, placement="scatter", seed=seed,
                             arena=1 << 22)
        for i in range(20):
            space.allocate(f"r{i}", 3000, RegionKind.DATA)
        return [r.base for r in space.regions]

    bases1 = build(1)
    bases2 = build(1)
    bases3 = build(2)
    assert bases1 == bases2
    assert bases1 != bases3
    spans = sorted((b, b + 3000) for b in bases1)
    for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
        assert e1 <= b2


def test_scatter_bases_are_page_aligned():
    space = AddressSpace(base=0, placement="scatter", seed=9)
    region = space.allocate("x", 100, RegionKind.DATA)
    assert region.base % AddressSpace.PAGE == 0


def test_scatter_arena_exhaustion():
    space = AddressSpace(base=0, placement="scatter", seed=1, arena=8192)
    space.allocate("a", 8000, RegionKind.DATA)
    with pytest.raises(MemoryModelError):
        space.allocate("b", 8000, RegionKind.DATA)


def test_shared_buffer_kind_classification():
    assert RegionKind.FIFO.is_shared_buffer()
    assert RegionKind.FRAME.is_shared_buffer()
    assert not RegionKind.HEAP.is_shared_buffer()
